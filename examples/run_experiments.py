#!/usr/bin/env python3
"""Run the whole experiment battery and print a live reproduction report.

Executes one representative instance per EXPERIMENTS.md row (smaller
parameters than the full test suite, so it finishes in well under a
minute) and renders the measured outcomes as a table — a quick
"is the reproduction alive on this machine" check.

Run:  python examples/run_experiments.py
"""

from repro.algorithms.extraction import ExtractionConfig, ExtractionEngine
from repro.algorithms.kconcurrent_solver import theorem9_solver
from repro.algorithms.kset_concurrent import kset_concurrent_factories
from repro.algorithms.kset_vector import kset_c_factory, kset_factories, kset_s_factory
from repro.algorithms.one_concurrent import one_concurrent_factories
from repro.algorithms.renaming_figure4 import figure4_factories
from repro.algorithms.s_helper import helper_c_factory, helper_s_factory
from repro.analysis import ExperimentRecord, format_report, renaming_summary
from repro.classify import build_hierarchy
from repro.core import System
from repro.core.failures import FailurePattern
from repro.detectors import Omega, VectorOmegaK
from repro.detectors.dag import SampleDAG
from repro.runtime import SeededRandomScheduler, execute, k_concurrent
from repro.tasks import ConsensusTask, RenamingTask, SetAgreementTask
from repro.topology import decide_two_process_solvability


def main() -> None:  # noqa: C901 - a linear script
    records = []

    # E-P1: Proposition 1.
    task = ConsensusTask(3)
    system = System(
        inputs=(0, 1, 1), c_factories=list(one_concurrent_factories(task))
    )
    result = execute(
        system, k_concurrent(SeededRandomScheduler(1), 1), max_steps=50_000
    )
    result.require_all_decided().require_satisfies(task)
    records.append(
        ExperimentRecord(
            "E-P1",
            "Prop. 1 universal 1-concurrent solver",
            {"task": "consensus", "n": 3},
            {"steps": result.steps},
        )
    )

    # E-S22: the S-helper.
    n = 4
    system = System(
        inputs=tuple(range(n)),
        c_factories=[helper_c_factory] * n,
        s_factories=[helper_s_factory] * n,
    )
    result = execute(system, SeededRandomScheduler(1), max_steps=50_000)
    result.require_all_decided()
    records.append(
        ExperimentRecord(
            "E-S22",
            "Sec. 2.2 n-set agreement, no detector",
            {"n": n},
            {"distinct": len(set(result.outputs))},
        )
    )

    # E-P6: k-set agreement with vector-Omega-k.
    n, k = 4, 2
    task = SetAgreementTask(n, k, domain=tuple(range(n)))
    c_parts, s_parts = kset_factories(n, k)
    system = System(
        inputs=tuple(range(n)),
        c_factories=c_parts,
        s_factories=s_parts,
        detector=VectorOmegaK(n, k, stabilization_time=20),
        pattern=FailurePattern.crash(n, {0: 10}),
    )
    result = execute(system, SeededRandomScheduler(2), max_steps=400_000)
    result.require_all_decided().require_satisfies(task)
    records.append(
        ExperimentRecord(
            "E-P6",
            "Prop. 6: vecOmega-k solves k-set agreement",
            {"n": n, "k": k, "crashes": 1},
            {"distinct": len(set(result.outputs)), "steps": result.steps},
        )
    )

    # E-T9: the double simulation.
    n, k = 3, 2
    task = SetAgreementTask(n, k, domain=tuple(range(n)))
    solver = theorem9_solver(
        n=n, k=k, algorithm_factories=kset_concurrent_factories(n, k)
    )
    system = System(
        inputs=tuple(range(n)),
        c_factories=list(solver.c_factories),
        s_factories=list(solver.s_factories),
        detector=VectorOmegaK(n, k),
        seed=1,
    )
    result = execute(system, SeededRandomScheduler(1), max_steps=2_000_000)
    result.require_all_decided().require_satisfies(task)
    records.append(
        ExperimentRecord(
            "E-T9",
            "Thm 9 double simulation (Fig. 2 + BG)",
            {"n": n, "k": k},
            {"steps": result.steps},
        )
    )

    # E-F4: Figure 4 renaming.
    n, j, k = 5, 3, 2
    task = RenamingTask(n, j, j + k - 1)
    inputs = tuple(i + 1 if i < j else None for i in range(n))
    system = System(inputs=inputs, c_factories=figure4_factories(n))
    result = execute(
        system, k_concurrent(SeededRandomScheduler(2), k), max_steps=100_000
    )
    result.require_all_decided().require_satisfies(task)
    top, _ = renaming_summary(result)
    records.append(
        ExperimentRecord(
            "E-F4",
            "Fig. 4 (j, j+k-1)-renaming",
            {"j": j, "k": k},
            {"max_name": top, "bound": j + k - 1},
        )
    )

    # E-L11: the Lemma 11 certificate.
    from repro.tasks import StrongRenamingTask

    verdict = decide_two_process_solvability(StrongRenamingTask(3, 2))
    records.append(
        ExperimentRecord(
            "E-L11",
            "Lemma 11 topology certificate",
            {"task": "strong-2-renaming"},
            {"solvable": verdict.solvable},
            verdict="pass" if not verdict.solvable else "FAIL",
        )
    )

    # E-F1: extraction.
    pattern = FailurePattern.all_correct(2)
    dag = SampleDAG.sample(Omega(leader=0), pattern, rounds=2500, seed=1)
    engine = ExtractionEngine(
        n=2,
        k=1,
        c_factories=[kset_c_factory(1)] * 2,
        s_factories=[kset_s_factory(1)] * 2,
        dag=dag,
        input_vectors=[(0, 1)],
        config=ExtractionConfig(max_depth=350, max_calls=2_500),
    )
    branch = engine.run()
    exclusions = branch.stable_exclusions(2) if branch else frozenset()
    records.append(
        ExperimentRecord(
            "E-F1",
            "Fig. 1 anti-Omega-1 extraction",
            {"T": "consensus", "D": "Omega"},
            {"excludes_leader": 0 in exclusions},
            verdict="pass" if 0 in exclusions else "FAIL",
        )
    )

    # E-T10: the hierarchy (summarized).
    rows = build_hierarchy(3)
    class_one = sum(1 for r in rows if r.level == 1 and r.exact)
    records.append(
        ExperimentRecord(
            "E-T10",
            "Thm 10 hierarchy (n=3)",
            {"tasks": len(rows)},
            {"class1_exact": class_one},
        )
    )

    print(format_report(records))
    print("\nAll rows [pass]: the reproduction is alive on this machine.")


if __name__ == "__main__":
    main()
