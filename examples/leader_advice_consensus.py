#!/usr/bin/env python3
"""Consensus with an eventual-leader oracle, under crashes and late
advice.

Scenario: five replicas must agree on a configuration epoch.  The
synchronization side queries Omega (= anti-Omega-1, the weakest detector
for consensus); the oracle is noisy until it stabilizes, and some
S-processes crash along the way.  Computation processes never wait on
each other — each decides in finitely many of its own steps once the
advice stabilizes (wait-freedom with advice).

Run:  python examples/leader_advice_consensus.py
"""

from repro.algorithms.kset_vector import kset_factories
from repro.core import System
from repro.core.failures import FailurePattern
from repro.detectors import Omega
from repro.runtime import SeededRandomScheduler, execute
from repro.tasks import SetAgreementTask


def run_epoch_agreement(pattern, stabilization, seed):
    n = 5
    proposals = (3, 1, 4, 1, 5)  # each replica's preferred epoch
    c_factories, s_factories = kset_factories(n, 1)
    system = System(
        inputs=proposals,
        c_factories=c_factories,
        s_factories=s_factories,
        detector=Omega(stabilization_time=stabilization),
        pattern=pattern,
        seed=seed,
    )
    return execute(system, SeededRandomScheduler(seed), max_steps=400_000)


def main() -> None:
    n = 5
    task = SetAgreementTask(n, 1, domain=(1, 3, 4, 5))
    scenarios = [
        ("failure-free, instant advice", FailurePattern.all_correct(n), 0),
        ("failure-free, late advice", FailurePattern.all_correct(n), 120),
        (
            "two S-crashes, late advice",
            FailurePattern.crash(n, {0: 10, 3: 40}),
            150,
        ),
        (
            "crash majority of S-processes",
            FailurePattern.crash(n, {0: 5, 1: 5, 2: 5, 3: 5}),
            80,
        ),
    ]
    print(f"{'scenario':36} {'epoch':>6} {'steps':>8}  decisions")
    for name, pattern, stabilization in scenarios:
        result = run_epoch_agreement(pattern, stabilization, seed=11)
        result.require_all_decided().require_satisfies(task)
        epoch = result.outputs[0]
        print(f"{name:36} {epoch:>6} {result.steps:>8}  {result.outputs}")
    print(
        "\nEvery replica decided the same proposed epoch in every "
        "scenario —\nagreement and validity held while crashes and "
        "pre-stabilization noise only\ndelayed (never corrupted) the runs."
    )


if __name__ == "__main__":
    main()
