#!/usr/bin/env python3
"""Quickstart: solve a task wait-free with failure-detector advice.

The external-failure-detection (EFD) model of *Wait-Freedom with Advice*
(PODC 2012) splits a system into computation processes (which must
output in finitely many of their own steps) and synchronization
processes (which may crash and may query a failure detector).  This
script solves 2-set agreement among four computation processes using
vector-Omega-2 advice — the weakest detector for any class-2 task
(Theorem 10) — through the paper's full Theorem 9 double simulation.

Run:  python examples/quickstart.py
"""

from repro import solve_task, solve_task_restricted
from repro.detectors import VectorOmegaK
from repro.tasks import SetAgreementTask


def main() -> None:
    task = SetAgreementTask(n=4, k=2)
    print(f"task: {task.name} over {task.n} C-processes")

    print("\n-- with advice (vector-Omega-2, Theorem 9 machinery) --")
    result = solve_task(task, detector=VectorOmegaK(n=4, k=2), seed=7)
    print(f"inputs : {result.inputs}")
    print(f"outputs: {result.outputs}")
    distinct = {v for v in result.outputs if v is not None}
    print(f"distinct decisions: {sorted(distinct)} (k = {task.k})")
    print(f"steps: {result.steps}")

    print("\n-- without advice (restricted algorithm, 2-concurrent run) --")
    result = solve_task_restricted(task, concurrency=2, seed=7)
    print(f"outputs: {result.outputs}")
    print(
        "Same task, no detector: correct because the run was gated to "
        "2-concurrency\n(the task's class; Proposition 1 / Section 2.2)."
    )


if __name__ == "__main__":
    main()
