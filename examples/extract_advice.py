#!/usr/bin/env python3
"""Watch Figure 1 extract anti-Omega-1 from a consensus solution.

Theorem 8: any failure detector solving a task that is not
(k+1)-concurrently solvable can be used to emulate anti-Omega-k.  Here
the task is consensus (class 1: not 2-concurrently solvable, which the
topology checker certifies first), the detector is Omega, and the
corridor-DFS exploration of A_sim finds a never-deciding 2-concurrent
branch; the S-processes the branch permanently stops outputting are the
emulated detector's "safe" processes — and they include the correct
leader, exactly as anti-Omega-1 requires.

Run:  python examples/extract_advice.py
"""

from repro.algorithms.extraction import ExtractionConfig, ExtractionEngine
from repro.algorithms.kset_vector import kset_c_factory, kset_s_factory
from repro.core.failures import FailurePattern
from repro.detectors import Omega
from repro.detectors.dag import SampleDAG
from repro.tasks import ConsensusTask
from repro.topology import decide_two_process_solvability


def main() -> None:
    n, k = 2, 1
    leader = 0
    pattern = FailurePattern.all_correct(n)

    print("step 1 — certify the premise (T not 2-concurrently solvable):")
    verdict = decide_two_process_solvability(ConsensusTask(2))
    print(f"  consensus 2-process solvable? {verdict.solvable}")
    print(f"  obstruction: {verdict.obstruction}\n")

    print(f"step 2 — record a DAG of Omega samples (leader q{leader + 1}):")
    dag = SampleDAG.sample(Omega(leader=leader), pattern, rounds=3000, seed=1)
    print(f"  {len(dag)} samples recorded\n")

    print("step 3 — corridor DFS over (k+1)-concurrent runs of A_sim:")
    engine = ExtractionEngine(
        n=n,
        k=k,
        c_factories=[kset_c_factory(k)] * n,
        s_factories=[kset_s_factory(k)] * n,
        dag=dag,
        input_vectors=[(0, 1)],
        config=ExtractionConfig(max_depth=400, max_calls=3000),
    )
    branch = engine.run()
    print(f"  explore() calls: {engine._calls}")
    print(f"  non-deciding branches found: {len(engine.nondeciding)}")
    assert branch is not None
    exclusions = branch.stable_exclusions(n)
    print(f"  first non-deciding branch depth: {branch.depth}")
    print(
        "  S-processes eventually never output along it: "
        f"{sorted('q' + str(q + 1) for q in exclusions)}"
    )
    print(
        f"\nThe excluded process is q{leader + 1} — the correct leader "
        "whose starvation is\nthe only way to stall consensus: the "
        "emulated history satisfies anti-Omega-1."
    )


if __name__ == "__main__":
    main()
