#!/usr/bin/env python3
"""A slot-assignment service built on the paper's renaming results.

Scenario: up to ``j`` workers out of a large fleet attach to a shard and
each needs a distinct small slot id (for striping writes).  The target
slot range is the service's real cost, so we chart the paper's
trade-off (Section 5):

* with no synchronization advice, gating attachment to k-at-a-time
  gives slots in ``1 .. j+k-1`` (Figure 4 / Theorem 15);
* with anti-Omega-k-strength advice, the same bound holds wait-free for
  the workers (Theorem 16 via the Theorem 9 machinery);
* tight slots (``1 .. j``, strong renaming) need full consensus power —
  Omega advice (Corollary 13).

Run:  python examples/renaming_service.py
"""

from repro import solve_task, solve_task_restricted
from repro.analysis import renaming_summary
from repro.detectors import Omega, VectorOmegaK
from repro.tasks import RenamingTask, StrongRenamingTask


def main() -> None:
    n, j = 6, 4  # fleet slice of 6 potential workers, at most 4 attach
    fleet_names = (17, 4, 42, 8, 23, 99)  # original (large) namespace
    workers = tuple(
        fleet_names[index] if index < j else None for index in range(n)
    )
    print(f"fleet of {n}, {j} workers attaching with names "
          f"{[w for w in workers if w]}\n")

    print(f"{'mode':44} {'slots used':>10} {'max slot':>9}")
    for k in (1, 2, 4):
        task = RenamingTask(n, j, j + k - 1, namespace=fleet_names)
        result = solve_task_restricted(
            task, inputs=workers, concurrency=k, seed=3
        )
        top, distinct = renaming_summary(result)
        assert distinct
        mode = f"no advice, {k}-at-a-time gate (Fig. 4)"
        print(f"{mode:44} {'1..' + str(task.l):>10} {top:>9}")

    k = 2
    task = RenamingTask(n, j, j + k - 1, namespace=fleet_names)
    result = solve_task(
        task, inputs=workers, detector=VectorOmegaK(n, k), seed=3
    )
    top, distinct = renaming_summary(result)
    assert distinct
    mode = f"vecOmega-{k} advice, wait-free (Thm 16)"
    print(f"{mode:44} {'1..' + str(task.l):>10} {top:>9}")

    strong = StrongRenamingTask(n, j, namespace=fleet_names)
    result = solve_task(strong, inputs=workers, detector=Omega(), seed=3)
    top, distinct = renaming_summary(result)
    assert distinct
    mode = "Omega advice, tight slots (Cor. 13)"
    print(f"{mode:44} {'1..' + str(strong.l):>10} {top:>9}")

    print(
        "\nShape matches the paper: weaker advice widens the slot range "
        "(j+k-1);\ntight slots (strong renaming) are exactly as hard as "
        "consensus."
    )


if __name__ == "__main__":
    main()
