#!/usr/bin/env python3
"""Regenerate the paper's headline result: the task hierarchy.

Theorem 10: every task belongs to class ``k`` — the largest concurrency
level at which it is solvable — and the weakest failure detector for it
is anti-Omega-k.  This script classifies the paper's task battery
(consensus, k-set agreement, strong and loose renaming, weak symmetry
breaking) with labeled evidence: machine-validated run sweeps for the
upper bounds, exact dimension-1 topology certificates for the class-1
lower bounds, literature citations above dimension 1, and "open" where
the paper itself leaves the question open (footnote 4 / [8]).

Run:  python examples/classify_tasks.py
"""

from repro.classify import build_hierarchy, format_hierarchy


def main() -> None:
    print("Task hierarchy for n = 4 C-processes (Theorem 10)\n")
    rows = build_hierarchy(4)
    print(format_hierarchy(rows))
    class_one = [r.task_name for r in rows if r.level == 1 and r.exact]
    print(
        f"\nAll of {class_one} are equivalent: each needs exactly "
        "Omega-strength advice\n(consensus == strong renaming, the "
        "paper's Section 5 punchline)."
    )


if __name__ == "__main__":
    main()
