"""Fault injectors: perturb a run mid-flight, strictly inside the model.

Three injection surfaces, one per universal quantifier in the paper's
safety claims:

* **Failure patterns** — derived crash families.  Every derived pattern
  is a legal :class:`~repro.core.failures.FailurePattern`: crashes are
  permanent by construction and at least one S-process stays correct
  (the constructor enforces both), so injected crashes never leave the
  EFD model.
* **Detector histories** — :class:`PerturbedDetector` wraps any detector,
  sweeping its ``stabilization_time`` and adding extra pre-stabilization
  noise by shuffling the history's own prefix cells.  Because the noise
  is sampled from values the detector itself emitted, it stays within
  the detector's output range; because only times before the (possibly
  raised) stabilization point are touched, the eventual clause is
  preserved.  The campaign runner re-validates every perturbed history
  against the detector's ``check_history`` oracle before the run.
* **Schedules** — :class:`~repro.runtime.scheduler.Scheduler` wrappers
  (burst starvation, decided-process shadowing, priority inversion)
  that only ever pick from the executor's schedulable candidates, so
  every mutated schedule is an admissible interleaving.
"""

from __future__ import annotations

import copy
import random
from typing import Any, Sequence

from ..core.failures import FailurePattern
from ..core.history import History
from ..detectors.base import FailureDetector
from ..errors import SpecificationError
from ..runtime.scheduler import (
    RoundRobinScheduler,
    Scheduler,
    SchedulerView,
)

# -- crash injectors ----------------------------------------------------


def crash_storm(
    n: int, *, at: int = 5, survivors: int = 1, rng: random.Random
) -> FailurePattern:
    """All but ``survivors`` S-processes crash simultaneously at ``at``."""
    if not 1 <= survivors <= n:
        raise SpecificationError(f"need 1 <= survivors <= {n}")
    doomed = rng.sample(range(n), n - survivors)
    return FailurePattern.crash(n, {i: at for i in doomed})


def crash_cascade(
    n: int,
    *,
    start: int = 2,
    gap: int = 7,
    survivors: int = 1,
    rng: random.Random,
) -> FailurePattern:
    """A staggered cascade: one crash every ``gap`` steps from ``start``."""
    if not 1 <= survivors <= n:
        raise SpecificationError(f"need 1 <= survivors <= {n}")
    doomed = rng.sample(range(n), n - survivors)
    return FailurePattern.crash(
        n, {i: start + pos * gap for pos, i in enumerate(doomed)}
    )


def last_survivor(
    n: int, *, horizon: int = 30, rng: random.Random
) -> FailurePattern:
    """Every S-process but one crashes at a random time below ``horizon``;
    the survivor is chosen by the rng."""
    survivor = rng.randrange(n)
    return FailurePattern.crash(
        n,
        {
            i: rng.randrange(horizon)
            for i in range(n)
            if i != survivor
        },
    )


def storm_suite(
    n: int, *, count: int, seed: int = 0
) -> list[FailurePattern]:
    """A seeded, mixed batch of derived patterns for campaign sweeps.

    Cycles through the failure-free pattern, sparse single crashes,
    storms, cascades, and last-survivor patterns until ``count`` patterns
    are produced.  Deterministic per (n, count, seed).
    """
    rng = random.Random(seed)
    out: list[FailurePattern] = []
    makers = [
        lambda: FailurePattern.all_correct(n),
        lambda: FailurePattern.crash(
            n, {rng.randrange(n): rng.randrange(20)}
        ),
        lambda: crash_storm(n, at=rng.randrange(1, 15), rng=rng),
        lambda: crash_cascade(
            n, start=rng.randrange(1, 8), gap=rng.randrange(3, 12), rng=rng
        ),
        lambda: last_survivor(n, horizon=25, rng=rng),
    ]
    while len(out) < count:
        out.append(makers[len(out) % len(makers)]())
    return out


# -- detector-history perturbation -------------------------------------


class ShuffledPrefixHistory:
    """History wrapper that permutes cells before ``noise_until``.

    ``value(q, t)`` for ``t < noise_until`` returns the base history's
    value at a seeded pseudo-random time below ``noise_until`` — extra
    adversarial churn assembled entirely from outputs the detector was
    already willing to emit, hence always within range.  From
    ``noise_until`` on, the base history is untouched.
    """

    def __init__(
        self, base: History, *, noise_until: int, base_seed: int
    ) -> None:
        self.base = base
        self.noise_until = noise_until
        self._base_seed = base_seed

    def value(self, s_index: int, time: int) -> Any:
        if time >= self.noise_until:
            return self.base.value(s_index, time)
        cell = random.Random(
            (self._base_seed * 1_000_003 + s_index) * 1_000_003 + time
        )
        return self.base.value(s_index, cell.randrange(self.noise_until))


class PerturbedDetector(FailureDetector):
    """Wraps a detector with swept stabilization time and extra noise.

    Args:
        base: the detector to perturb.  A shallow copy is taken, so the
            original is never mutated.
        stabilization_time: overrides the base detector's stabilization
            time (the campaign sweep axis); ``None`` keeps the base's.
        noise_until: shuffle history cells before this time (defaults to
            the effective stabilization time, i.e. maximal legal noise).

    ``check_history`` delegates to the base detector, so a perturbation
    that would step outside the base's specification is *rejected by the
    oracle*, not silently accepted — the campaign runner validates every
    built history before executing the cell.
    """

    def __init__(
        self,
        base: FailureDetector,
        *,
        stabilization_time: int | None = None,
        noise_until: int | None = None,
    ) -> None:
        self.base = copy.copy(base)
        if stabilization_time is not None:
            if not hasattr(self.base, "stabilization_time"):
                raise SpecificationError(
                    f"{base.name} has no stabilization time to sweep"
                )
            self.base.stabilization_time = stabilization_time
        base_stab = getattr(self.base, "stabilization_time", 0)
        self.noise_until = base_stab if noise_until is None else noise_until
        if self.noise_until < 0:
            raise SpecificationError("noise_until must be non-negative")
        self.name = f"chaos({self.base.name})"

    @property
    def stabilization_time(self) -> int:
        """Effective stabilization point of the perturbed histories."""
        return max(getattr(self.base, "stabilization_time", 0), self.noise_until)

    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        history = self.base.build_history(pattern, rng)
        if self.noise_until <= 0:
            return history
        return ShuffledPrefixHistory(
            history,
            noise_until=self.noise_until,
            base_seed=rng.randrange(2**31),
        )

    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        return self.base.check_history(
            pattern,
            history,
            horizon=horizon,
            stabilized_from=stabilized_from,
        )


# -- scheduler mutators ------------------------------------------------


def _narrowed(view: SchedulerView, keep) -> SchedulerView:
    candidates = tuple(pid for pid in view.candidates if keep(pid))
    if not candidates:  # never starve the whole system
        candidates = view.candidates
    return SchedulerView(
        time=view.time,
        candidates=candidates,
        started=view.started,
        decided=view.decided,
        participants=view.participants,
    )


class BurstStarvationScheduler(Scheduler):
    """Starves a seeded-random victim subset for ``burst`` out of every
    ``period`` steps, re-drawing the victims each window.

    Unlike :class:`~repro.runtime.scheduler.AdversarialScheduler`'s fixed
    victim set, the rotating choice exercises *every* process's slow-path
    over a long run while each individual burst is finite, so fairness
    holds in the limit.
    """

    def __init__(
        self,
        inner: Scheduler | None = None,
        *,
        period: int = 40,
        burst: int = 15,
        seed: int = 0,
    ) -> None:
        if not 0 < burst < period:
            raise SpecificationError("need 0 < burst < period")
        self.period = period
        self.burst = burst
        self._rng = random.Random(seed)
        self._inner = inner or RoundRobinScheduler()
        self._turn = 0
        self._victims: frozenset = frozenset()

    def next(self, view: SchedulerView):
        self._require(view)
        phase = self._turn % self.period
        self._turn += 1
        if phase == 0:
            pool = sorted(view.candidates)
            size = self._rng.randrange(1, max(2, len(pool)))
            self._victims = frozenset(self._rng.sample(pool, size))
        if phase < self.burst:
            view = _narrowed(view, lambda pid: pid not in self._victims)
        return self._inner.next(view)


class DecidedShadowScheduler(Scheduler):
    """Shadows the surviving started C-processes right after a decision.

    Each time the decided set grows, the C-processes that had already
    started but not decided are excluded for the next ``shadow`` steps —
    the moment one process completes, its undecided contemporaries lose
    their helpers.  This targets helping/adoption protocols whose safety
    argument leans on the state a deciding process leaves behind.
    """

    def __init__(
        self, inner: Scheduler | None = None, *, shadow: int = 12
    ) -> None:
        if shadow < 1:
            raise SpecificationError("shadow must be positive")
        self.shadow = shadow
        self._inner = inner or RoundRobinScheduler()
        self._seen_decided: frozenset = frozenset()
        self._shadowed: frozenset = frozenset()
        self._shadow_left = 0

    def next(self, view: SchedulerView):
        self._require(view)
        if view.decided != self._seen_decided:
            self._shadowed = frozenset(
                pid
                for pid in view.candidates
                if pid.is_computation
                and pid.index in view.started
                and pid.index not in view.decided
            )
            self._shadow_left = self.shadow
            self._seen_decided = view.decided
        if self._shadow_left > 0:
            self._shadow_left -= 1
            view = _narrowed(view, lambda pid: pid not in self._shadowed)
        return self._inner.next(view)


class PriorityInversionScheduler(Scheduler):
    """Inverts the natural scheduling order most of the time.

    Picks the *last* candidate in process order (highest-index S-process
    first territory) on every step except each ``relief``-th, which
    falls back to round-robin so starvation stays finite.
    """

    def __init__(self, *, relief: int = 7) -> None:
        if relief < 2:
            raise SpecificationError("relief must be at least 2")
        self.relief = relief
        self._turn = 0
        self._fallback = RoundRobinScheduler()

    def next(self, view: SchedulerView):
        self._require(view)
        self._turn += 1
        if self._turn % self.relief == 0:
            return self._fallback.next(view)
        return max(view.candidates)
