"""Spec registry: JSON-able descriptions of every campaign ingredient.

Campaign cells and repro bundles must survive a round-trip through JSON
and rebuild *exactly* the same run, so tasks, detectors, schedulers, and
algorithms are named by small declarative dicts rather than held as live
objects.  This module is the single decoding point for those dicts; the
chaos CLI, the campaign runner, and bundle replay all go through it.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..core.failures import FailurePattern
from ..core.process import ProcessId, c_process, s_process
from ..core.system import System
from ..core.task import Task
from ..detectors import (
    AntiOmegaK,
    EventuallyPerfectDetector,
    Omega,
    PerfectDetector,
    TrivialDetector,
    VectorOmegaK,
)
from ..errors import SpecificationError
from ..runtime.scheduler import (
    AdversarialScheduler,
    ExplicitScheduler,
    RoundRobinScheduler,
    Scheduler,
    SeededRandomScheduler,
)
from ..tasks import ConsensusTask, SetAgreementTask, StrongRenamingTask
from .injectors import (
    BurstStarvationScheduler,
    DecidedShadowScheduler,
    PerturbedDetector,
    PriorityInversionScheduler,
)
from .specimens import (
    allocating_factories,
    eager_consensus_factories,
    spinning_factories,
)


def parse_pid(name: str) -> ProcessId:
    """Decode the paper's 1-based ``p<i>``/``q<i>`` names."""
    if len(name) < 2 or name[0] not in "pq" or not name[1:].isdigit():
        raise SpecificationError(f"not a process name: {name!r}")
    index = int(name[1:]) - 1
    return c_process(index) if name[0] == "p" else s_process(index)


def build_task(spec: Mapping[str, Any]) -> Task:
    family = spec.get("family")
    n = int(spec.get("n", 3))
    if family == "consensus":
        return ConsensusTask(n)
    if family == "set-agreement":
        return SetAgreementTask(n, int(spec["k"]))
    if family == "strong-renaming":
        return StrongRenamingTask(n, int(spec.get("j", n - 1)))
    raise SpecificationError(f"unknown task family: {family!r}")


def build_detector(spec: Mapping[str, Any], n: int):
    """Decode a detector spec; ``n`` is the system's S-process count."""
    family = spec.get("family")
    stab = int(spec.get("stabilization_time", 0))
    if family in (None, "none"):
        return None
    if family == "trivial":
        return TrivialDetector()
    if family == "perfect":
        return PerfectDetector()
    if family == "eventually-perfect":
        return EventuallyPerfectDetector(stabilization_time=stab)
    if family == "omega":
        return Omega(stabilization_time=stab, leader=spec.get("leader"))
    if family == "vector-omega":
        return VectorOmegaK(n, int(spec["k"]), stabilization_time=stab)
    if family == "anti-omega":
        return AntiOmegaK(n, int(spec["k"]), stabilization_time=stab)
    if family == "perturbed":
        base = build_detector(spec["base"], n)
        return PerturbedDetector(
            base,
            stabilization_time=spec.get("stabilization_time"),
            noise_until=spec.get("noise_until"),
        )
    raise SpecificationError(f"unknown detector family: {family!r}")


def build_scheduler(spec: Mapping[str, Any]) -> Scheduler:
    kind = spec.get("kind", "seeded")
    if kind == "round-robin":
        return RoundRobinScheduler()
    if kind == "seeded":
        return SeededRandomScheduler(int(spec.get("seed", 0)))
    if kind == "adversarial":
        return AdversarialScheduler(
            [parse_pid(name) for name in spec["victims"]],
            period=int(spec.get("period", 17)),
        )
    if kind == "burst":
        return BurstStarvationScheduler(
            period=int(spec.get("period", 40)),
            burst=int(spec.get("burst", 15)),
            seed=int(spec.get("seed", 0)),
        )
    if kind == "shadow":
        return DecidedShadowScheduler(shadow=int(spec.get("shadow", 12)))
    if kind == "inversion":
        return PriorityInversionScheduler(
            relief=int(spec.get("relief", 7))
        )
    if kind == "explicit":
        return ExplicitScheduler(
            [parse_pid(name) for name in spec["sequence"]],
            strict=bool(spec.get("strict", True)),
        )
    raise SpecificationError(f"unknown scheduler kind: {kind!r}")


def build_pattern(
    crash_times: Sequence[int | None] | None, n: int
) -> FailurePattern:
    if not crash_times:
        return FailurePattern.all_correct(n)
    if len(crash_times) != n:
        raise SpecificationError(
            f"pattern over {len(crash_times)} S-processes, system has {n}"
        )
    return FailurePattern(
        n, tuple(None if t is None else int(t) for t in crash_times)
    )


def build_system(
    *,
    task: Task,
    algorithm: str,
    detector: Any,
    inputs: Sequence[Any] | None,
    pattern: FailurePattern,
    seed: int,
) -> System:
    """Assemble the executable system for one campaign cell."""
    from ..algorithms.dispatch import (
        build_solver_system,
        default_inputs,
    )
    from ..algorithms.one_concurrent import one_concurrent_factories

    inputs = (
        default_inputs(task) if inputs is None else tuple(inputs)
    )
    if algorithm == "auto":
        if detector is None:
            raise SpecificationError(
                "algorithm 'auto' needs a detector (Theorem 9 solver)"
            )
        return build_solver_system(
            task,
            detector=detector,
            inputs=inputs,
            pattern=pattern,
            seed=seed,
        )
    if algorithm == "one-concurrent":
        # Restricted Proposition 1 solver, deliberately run *without* a
        # concurrency gate: correct 1-concurrently, a natural violation
        # source beyond that — a realistic chaos workload.
        return System(
            inputs=inputs,
            c_factories=list(one_concurrent_factories(task)),
            pattern=pattern,
            seed=seed,
        )
    if algorithm == "eager-consensus":
        c_factories, s_factories = eager_consensus_factories(task.n)
        return System(
            inputs=inputs,
            c_factories=c_factories,
            s_factories=s_factories,
            detector=detector,
            pattern=pattern,
            seed=seed,
        )
    if algorithm == "specimen-spin":
        # Planted liveness hazard: unbounded local computation that only
        # the resilience layer's deadline watchdog can stop.
        return System(
            inputs=inputs,
            c_factories=spinning_factories(task.n),
            pattern=pattern,
            seed=seed,
        )
    if algorithm == "specimen-hog":
        # Planted allocator: retains memory each step until the RSS
        # watchdog kills the worker.
        return System(
            inputs=inputs,
            c_factories=allocating_factories(task.n),
            pattern=pattern,
            seed=seed,
        )
    raise SpecificationError(f"unknown algorithm key: {algorithm!r}")
