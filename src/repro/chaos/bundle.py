"""Replayable failure bundles: a violation you can hand to someone.

A bundle is a single JSON document holding everything that determined a
failing run — task, algorithm, inputs, crash times, detector spec and
seed, and the explicit schedule — plus the outcome it is expected to
reproduce.  ``python -m repro chaos replay <bundle.json>`` rebuilds the
cell through the spec registry and re-executes it; because the schedule
is explicit and every other ingredient is seeded, the replay is
deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..errors import ChaosError
from ..resilience import atomic_write_text
from .campaign import CellRecord, CellSpec, run_cell
from .shrink import ShrinkResult

BUNDLE_FORMAT = "repro-chaos-bundle"
BUNDLE_VERSION = 1


def bundle_from_shrink(
    shrunk: ShrinkResult, *, campaign: str = "", note: str = ""
) -> dict[str, Any]:
    """Assemble the JSON document for a shrunk witness."""
    return {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "campaign": campaign,
        "note": note,
        "cell": shrunk.cell.to_json(),
        "strict_traces": shrunk.strict_traces,
        "kernel": shrunk.kernel,
        "expected": {
            "outcome": shrunk.outcome,
            "detail": shrunk.detail,
        },
        "shrink": {
            "trials": shrunk.trials,
            "original_schedule_len": shrunk.original_schedule_len,
            "final_schedule_len": shrunk.final_schedule_len,
        },
    }


def save_bundle(path: str | Path, bundle: Mapping[str, Any]) -> Path:
    # Atomic: a bundle interrupted mid-write (the exact moment chaos
    # tooling exists for) must never leave a torn JSON document behind.
    return atomic_write_text(path, json.dumps(bundle, indent=2) + "\n")


def load_bundle(path: str | Path) -> dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if data.get("format") != BUNDLE_FORMAT:
        raise ChaosError(f"{path}: not a {BUNDLE_FORMAT} document")
    if data.get("version") != BUNDLE_VERSION:
        raise ChaosError(
            f"{path}: unsupported bundle version {data.get('version')!r}"
        )
    return data


@dataclass
class ReplayResult:
    """Outcome of re-executing a bundle."""

    record: CellRecord
    expected_outcome: str
    expected_detail: str

    @property
    def reproduced(self) -> bool:
        return self.record.outcome == self.expected_outcome

    def summary(self) -> str:
        verdict = "REPRODUCED" if self.reproduced else "DIVERGED"
        lines = [
            f"replay: {verdict}",
            f"  expected: {self.expected_outcome}",
            f"  observed: {self.record.outcome} "
            f"({self.record.steps} steps)",
        ]
        if self.record.detail:
            lines.append(f"  detail  : {self.record.detail}")
        return "\n".join(lines)


def replay_bundle(source: str | Path | Mapping[str, Any]) -> ReplayResult:
    """Re-execute a bundle deterministically and compare outcomes."""
    bundle = (
        dict(source)
        if isinstance(source, Mapping)
        else load_bundle(source)
    )
    cell = CellSpec.from_json(bundle["cell"])
    expected = bundle.get("expected", {})
    # Replays apply the same per-run trace analysis and run the same
    # execution kernel the witness was shrunk under (older bundles
    # predate the keys: plain interpreted replay).
    record = run_cell(
        cell,
        strict_traces=bool(bundle.get("strict_traces", False)),
        kernel=bundle.get("kernel", "interp"),
    )
    return ReplayResult(
        record=record,
        expected_outcome=expected.get("outcome", ""),
        expected_detail=expected.get("detail", ""),
    )
