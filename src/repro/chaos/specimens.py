"""Fault specimens: intentionally buggy algorithms the engine must catch.

A fault-injection engine is only trustworthy if it demonstrably finds
planted bugs.  The specimens here are *deliberately* outside the paper's
correctness envelope; campaigns over them must produce safety
violations, and the shrinking/replay pipeline is acceptance-tested on
the witnesses they yield.  They are not registered with the protocol
linter's algorithm schemas — they are test ammunition, not algorithms.
"""

from __future__ import annotations

from ..core.process import ProcessContext
from ..core.system import input_register
from ..runtime import ops

#: Registers where the eager-consensus S-processes publish their advice.
EAGER_LEAD_PREFIX = "eager/lead/"


def eager_consensus_factories(n: int):
    """Decide-before-stabilization consensus (broken on purpose).

    Each S-process ``q_i`` queries its Omega module exactly **once**, on
    its first step, and publishes the answer to ``eager/lead/<i>``.  Each
    C-process ``p_i`` waits for its own S-process's advice, adopts the
    input of the named leader (falling back to its own input when the
    leader's input register is empty), and decides immediately.

    The bug: a single pre-stabilization query is trusted forever.  Before
    Omega stabilizes, different S-processes may name different leaders,
    so C-processes adopt different proposed values and split consensus.
    With ``stabilization_time=0`` the algorithm is correct — the
    violation exists *only* in the noisy window, which is exactly the
    region chaos campaigns sweep.

    Validity is preserved (every decided value is some participant's
    input), so the planted bug is a pure agreement violation.

    Returns ``(c_factories, s_factories)`` for a ``System`` of ``n``
    C- and ``n`` S-processes with an Omega-family detector.
    """

    def s_factory(i: int):
        def automaton(ctx: ProcessContext):
            leader = yield ops.QueryFD()
            yield ops.Write(f"{EAGER_LEAD_PREFIX}{i}", leader)
            while True:
                yield ops.Nop()

        return automaton

    def c_factory(i: int):
        def automaton(ctx: ProcessContext):
            while True:
                leader = yield ops.Read(f"{EAGER_LEAD_PREFIX}{i}")
                if leader is not None:
                    break
            adopted = yield ops.Read(input_register(leader))
            if adopted is None:
                adopted = ctx.input_value
            yield ops.Decide(adopted)

        return automaton

    return (
        [c_factory(i) for i in range(n)],
        [s_factory(i) for i in range(n)],
    )


def spinning_factories(n: int):
    """Unbounded *local* computation (broken on purpose).

    C-process ``p1`` performs one legal step, then falls into an
    infinite local loop while computing its next operation — the
    executor's resume of the generator never returns.  No step budget or
    cooperative check can interrupt it; only the resilience layer's
    wall-clock watchdog (which kills the worker process from a separate
    thread) detects it.  Campaign cells over this specimen must triage
    as ``timeout``.
    """

    def c_factory(i: int):
        def automaton(ctx: ProcessContext):
            yield ops.Nop()
            if i == 0:
                while True:  # unbounded local computation
                    pass
            while True:
                yield ops.Nop()

        return automaton

    return [c_factory(i) for i in range(n)]


def allocating_factories(n: int, *, chunk_mb: int = 8):
    """Unbounded memory growth (broken on purpose).

    Every step of every C-process allocates and *retains* ``chunk_mb``
    MiB, so the worker's resident set climbs by ``n * chunk_mb`` MiB per
    scheduling round until the RSS watchdog kills it.  Campaign cells
    over this specimen under a memory budget must triage as ``oom``.
    """

    def c_factory(i: int):
        def automaton(ctx: ProcessContext):
            hoard = []
            while True:
                hoard.append(bytearray(chunk_mb << 20))
                yield ops.Nop()

        return automaton

    return [c_factory(i) for i in range(n)]
