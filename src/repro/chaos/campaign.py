"""Campaign runner: sweep the fault cross-product, triage every cell.

A :class:`CampaignSpec` declares axes — workloads (task + detector +
algorithm), failure patterns (explicit or injector-derived), schedulers,
detector seeds, and stabilization times — and :func:`run_campaign`
executes their cross-product.  Each cell runs traced, its detector
history is validated against the ``check_history`` oracle *before* the
run, and the outcome is classified; a failing cell is recorded and the
campaign continues, so one bad interleaving never hides the rest of the
space.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..analysis.verify import verify_run
from ..core.run import RunResult
from ..errors import (
    LivenessViolation,
    SafetyViolation,
    TraceHazard,
)
from ..runtime import execute
from ..runtime.scheduler import Scheduler
from .injectors import storm_suite
from .registry import (
    build_detector,
    build_pattern,
    build_scheduler,
    build_system,
    build_task,
)

OUTCOME_OK = "ok"
OUTCOME_SAFETY = "safety_violation"
OUTCOME_HAZARD = "trace_hazard"
OUTCOME_BUDGET = "budget_exhausted"
OUTCOME_DEADLOCK = "deadlock"
OUTCOME_SCHEDULE = "schedule_exhausted"
OUTCOME_INVALID_HISTORY = "invalid_history"
OUTCOME_ERROR = "error"

#: Extra times past stabilization over which histories are validated.
HISTORY_VALIDATION_SLACK = 16


@dataclass(frozen=True)
class CellSpec:
    """One fully-determined point of a campaign: a replayable run.

    Every field is JSON-serializable (see :meth:`to_json`), which is
    what makes shrunk cells portable as repro bundles.
    """

    task: Mapping[str, Any]
    detector: Mapping[str, Any]
    algorithm: str = "auto"
    pattern: tuple = ()
    scheduler: Mapping[str, Any] = field(
        default_factory=lambda: {"kind": "seeded", "seed": 0}
    )
    seed: int = 0
    inputs: tuple | None = None
    max_steps: int = 120_000

    def to_json(self) -> dict[str, Any]:
        return {
            "task": dict(self.task),
            "detector": dict(self.detector),
            "algorithm": self.algorithm,
            "pattern": list(self.pattern),
            "scheduler": dict(self.scheduler),
            "seed": self.seed,
            "inputs": None if self.inputs is None else list(self.inputs),
            "max_steps": self.max_steps,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CellSpec":
        return cls(
            task=dict(data["task"]),
            detector=dict(data["detector"]),
            algorithm=data.get("algorithm", "auto"),
            pattern=tuple(data.get("pattern") or ()),
            scheduler=dict(
                data.get("scheduler") or {"kind": "seeded", "seed": 0}
            ),
            seed=int(data.get("seed", 0)),
            inputs=(
                None
                if data.get("inputs") is None
                else tuple(data["inputs"])
            ),
            max_steps=int(data.get("max_steps", 120_000)),
        )

    def label(self) -> str:
        det = self.detector.get("family", "none")
        stab = self.detector.get("stabilization_time", 0)
        crashes = sum(1 for t in self.pattern if t is not None)
        return (
            f"{self.task.get('family')}(n={self.task.get('n')})"
            f"/{self.algorithm}/{det}@{stab}"
            f"/crashes={crashes}/{self.scheduler.get('kind')}"
            f"/seed={self.seed}"
        )


@dataclass
class CellRecord:
    """Triage result of one executed cell."""

    cell: CellSpec
    outcome: str
    detail: str = ""
    steps: int = 0
    result: RunResult | None = None

    def format_row(self) -> str:
        return f"{self.outcome:18} {self.steps:>7}  {self.cell.label()}"


@dataclass
class CampaignReport:
    """Structured outcome of a whole campaign."""

    name: str
    records: list[CellRecord]

    @property
    def counts(self) -> Counter:
        return Counter(record.outcome for record in self.records)

    @property
    def violations(self) -> list[CellRecord]:
        return [r for r in self.records if r.outcome == OUTCOME_SAFETY]

    @property
    def ok(self) -> bool:
        """No safety violations, no engine errors, no invalid histories."""
        bad = {OUTCOME_SAFETY, OUTCOME_ERROR, OUTCOME_INVALID_HISTORY}
        return not any(r.outcome in bad for r in self.records)

    def render(self) -> str:
        from ..analysis.reporting import format_campaign

        return format_campaign(self)


@dataclass(frozen=True)
class Workload:
    """A (task, detector family, algorithm) triple to sweep."""

    task: Mapping[str, Any]
    detector: Mapping[str, Any]
    algorithm: str = "auto"


@dataclass
class CampaignSpec:
    """Declarative cross-product of fault axes.

    Attributes:
        name: campaign identifier (shows up in reports and bundles).
        workloads: the (task, detector, algorithm) triples to stress.
        patterns: either explicit crash-time tuples or an int, in which
            case that many patterns are derived per workload via
            :func:`~repro.chaos.injectors.storm_suite`.
        schedulers: scheduler specs (see the registry's kinds).
        seeds: detector-history seeds.
        stabilization_times: swept onto each workload's detector spec.
        max_steps: per-cell liveness budget.
        pattern_seed: determinism seed for derived patterns.
        strict_traces: also classify trace hazards (lint trace rules).
        workers: default process-pool width for :func:`run_campaign`
            (1 = in-process serial execution).  Parallel runs produce
            reports byte-identical to serial ones: every cell carries
            its own seeds, so its run is independent of which worker
            executes it, and records are collected in cell order.
    """

    name: str
    workloads: Sequence[Workload]
    patterns: Sequence[Sequence[int | None]] | int = 4
    schedulers: Sequence[Mapping[str, Any]] = (
        {"kind": "round-robin"},
        {"kind": "seeded", "seed": 1},
    )
    seeds: Sequence[int] = (0, 1)
    stabilization_times: Sequence[int] = (0, 10)
    max_steps: int = 120_000
    pattern_seed: int = 0
    strict_traces: bool = False
    workers: int = 1

    def _patterns_for(self, n: int) -> list[tuple]:
        if isinstance(self.patterns, int):
            return [
                tuple(p.crash_times)
                for p in storm_suite(
                    n, count=self.patterns, seed=self.pattern_seed
                )
            ]
        return [tuple(p) for p in self.patterns]

    def cells(self) -> Iterator[CellSpec]:
        for workload in self.workloads:
            n = int(workload.task.get("n", 3))
            for pattern, scheduler, seed, stab in itertools.product(
                self._patterns_for(n),
                self.schedulers,
                self.seeds,
                self.stabilization_times,
            ):
                detector = dict(workload.detector)
                if detector.get("family") not in (None, "none", "trivial",
                                                  "perfect"):
                    detector["stabilization_time"] = stab
                elif stab != self.stabilization_times[0]:
                    continue  # nothing to sweep for this detector
                yield CellSpec(
                    task=dict(workload.task),
                    detector=detector,
                    algorithm=workload.algorithm,
                    pattern=pattern,
                    scheduler=dict(scheduler),
                    seed=seed,
                    max_steps=self.max_steps,
                )


def classify_result(
    result: RunResult, task, *, strict_traces: bool = False
) -> tuple[str, str]:
    """Map a finished run to (outcome, human detail)."""
    try:
        verify_run(result, task, strict=strict_traces)
        return OUTCOME_OK, ""
    except LivenessViolation as exc:
        by_reason = {
            "budget": OUTCOME_BUDGET,
            "halted": OUTCOME_DEADLOCK,
            "schedule_exhausted": OUTCOME_SCHEDULE,
        }
        return by_reason.get(result.reason, OUTCOME_DEADLOCK), str(exc)
    except SafetyViolation as exc:
        return OUTCOME_SAFETY, str(exc)
    except TraceHazard as exc:
        return OUTCOME_HAZARD, str(exc)


def run_cell(
    cell: CellSpec,
    *,
    scheduler: Scheduler | None = None,
    strict_traces: bool = False,
) -> CellRecord:
    """Execute one cell: build, validate the history, run, classify.

    ``scheduler`` overrides the cell's declared scheduler (the shrinker
    uses this to substitute recording and explicit schedulers).
    """
    task = build_task(cell.task)
    pattern = build_pattern(cell.pattern, task.n)
    system = build_system(
        task=task,
        algorithm=cell.algorithm,
        detector=build_detector(cell.detector, task.n),
        inputs=cell.inputs,
        pattern=pattern,
        seed=cell.seed,
    )
    # Validate the history the run will actually see (the solver may
    # substitute an equivalent-strength detector form).
    detector = system.detector
    if detector is not None:
        stab = getattr(detector, "stabilization_time", 0)
        if not detector.check_history(
            system.pattern,
            system.history,
            horizon=stab + HISTORY_VALIDATION_SLACK,
            stabilized_from=stab,
        ):
            return CellRecord(
                cell,
                OUTCOME_INVALID_HISTORY,
                detail=(
                    f"{detector.name} rejected its own (perturbed) "
                    f"history at stabilization {stab}"
                ),
            )
    result = execute(
        system,
        scheduler if scheduler is not None
        else build_scheduler(cell.scheduler),
        max_steps=cell.max_steps,
        trace=True,
    )
    outcome, detail = classify_result(
        result, task, strict_traces=strict_traces
    )
    if outcome == OUTCOME_BUDGET and result.budget_digest:
        detail = result.budget_digest
    return CellRecord(
        cell, outcome, detail=detail, steps=result.steps, result=result
    )


def _run_cell_guarded(args: tuple[CellSpec, bool]) -> CellRecord:
    """Module-level (picklable) cell runner shared by the serial and
    process-pool paths; a raising cell degrades to an ``"error"``
    record instead of aborting the sweep."""
    cell, strict_traces = args
    try:
        return run_cell(cell, strict_traces=strict_traces)
    except Exception as exc:  # noqa: BLE001 - triage, don't abort
        return CellRecord(
            cell, OUTCOME_ERROR, detail=f"{type(exc).__name__}: {exc}"
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    limit: int | None = None,
    on_cell: Callable[[CellRecord], None] | None = None,
    workers: int | None = None,
) -> CampaignReport:
    """Run (up to ``limit`` cells of) a campaign to a structured report.

    Degrades gracefully: a cell that raises is recorded with outcome
    ``"error"`` and the sweep continues.

    ``workers`` (default: ``spec.workers``) > 1 fans the cells out over
    a process pool.  Cells are fully determined by their spec — every
    source of randomness is an explicit per-cell seed — and records are
    collected in cell order, so the resulting report (including
    :meth:`CampaignReport.render`) is byte-identical to a serial run.
    """
    if workers is None:
        workers = spec.workers
    cells = spec.cells()
    if limit is not None:
        cells = itertools.islice(cells, limit)
    jobs = [(cell, spec.strict_traces) for cell in cells]
    records: list[CellRecord] = []
    if workers > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = pool.map(_run_cell_guarded, jobs, chunksize=chunksize)
            for record in outcomes:
                records.append(record)
                if on_cell is not None:
                    on_cell(record)
    else:
        for job in jobs:
            record = _run_cell_guarded(job)
            records.append(record)
            if on_cell is not None:
                on_cell(record)
    return CampaignReport(spec.name, records)


# -- stock campaigns ----------------------------------------------------


def smoke_campaign(*, seed: int = 0) -> CampaignSpec:
    """Small fixed-seed campaign for CI: must report zero violations."""
    return CampaignSpec(
        name="smoke",
        workloads=[
            Workload(
                task={"family": "consensus", "n": 3},
                detector={"family": "omega"},
            ),
            Workload(
                task={"family": "set-agreement", "n": 3, "k": 2},
                detector={"family": "vector-omega", "k": 2},
            ),
        ],
        patterns=2,
        schedulers=(
            {"kind": "round-robin"},
            {"kind": "seeded", "seed": seed + 1},
            {"kind": "burst", "period": 30, "burst": 10, "seed": seed},
        ),
        seeds=(seed, seed + 1),
        stabilization_times=(8,),
        max_steps=80_000,
        pattern_seed=seed,
    )


def standard_campaign(*, seed: int = 0) -> CampaignSpec:
    """The acceptance campaign: consensus+Omega and k-set-agreement+
    vecOmega-k swept over derived patterns, mutated schedulers, seeds,
    and stabilization times — 200 cells."""
    return CampaignSpec(
        name="standard",
        workloads=[
            Workload(
                task={"family": "consensus", "n": 3},
                detector={"family": "omega"},
            ),
            Workload(
                task={"family": "set-agreement", "n": 3, "k": 2},
                detector={"family": "vector-omega", "k": 2},
            ),
        ],
        patterns=5,
        schedulers=(
            {"kind": "round-robin"},
            {"kind": "seeded", "seed": seed + 1},
            {"kind": "burst", "period": 40, "burst": 15, "seed": seed},
            {"kind": "shadow", "shadow": 12},
            {"kind": "inversion", "relief": 7},
        ),
        seeds=(seed, seed + 1),
        stabilization_times=(0, 12),
        max_steps=150_000,
        pattern_seed=seed,
    )


def specimen_campaign(*, seed: int = 0) -> CampaignSpec:
    """Campaign over the decide-before-stabilization specimen: expected
    to *produce* safety violations (that is the point)."""
    return CampaignSpec(
        name="specimen:eager-consensus",
        workloads=[
            Workload(
                task={"family": "consensus", "n": 3},
                detector={"family": "omega"},
                algorithm="eager-consensus",
            ),
        ],
        patterns=3,
        schedulers=(
            {"kind": "round-robin"},
            {"kind": "seeded", "seed": seed + 1},
        ),
        seeds=tuple(range(seed, seed + 6)),
        stabilization_times=(0, 24),
        max_steps=5_000,
        pattern_seed=seed,
    )
