"""Campaign runner: sweep the fault cross-product, triage every cell.

A :class:`CampaignSpec` declares axes — workloads (task + detector +
algorithm), failure patterns (explicit or injector-derived), schedulers,
detector seeds, and stabilization times — and :func:`run_campaign`
executes their cross-product.  Each cell runs traced, its detector
history is validated against the ``check_history`` oracle *before* the
run, and the outcome is classified; a failing cell is recorded and the
campaign continues, so one bad interleaving never hides the rest of the
space.

Fan-out goes through the resilience layer
(:mod:`repro.resilience.supervisor`): workers run under per-cell
wall-clock/RSS budgets, a crashed worker costs only its in-flight cell
(retried with deterministic backoff, quarantined after the retry budget
with a triaged outcome — ``timeout`` / ``oom`` / ``worker_crash`` /
``flaky``), and progress can be journaled append-only so an interrupted
campaign resumes exactly (`run_campaign(resume=...)`).  Because every
cell is fully determined by its spec, a resumed, retried, or parallel
campaign renders a report byte-identical to an uninterrupted serial one.
"""

from __future__ import annotations

import itertools
import os
import signal
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..analysis.verify import verify_run
from ..core.run import RunResult
from ..errors import (
    CampaignInterrupted,
    LivenessViolation,
    ResilienceError,
    SafetyViolation,
    TraceHazard,
)
from ..resilience import (
    CampaignJournal,
    CellBudget,
    JobResult,
    RetryPolicy,
    SupervisedPool,
    campaign_fingerprint,
    recover_control_state,
    scan_journal,
)
from ..runtime import execute
from ..runtime.scheduler import Scheduler
from .injectors import storm_suite
from .registry import (
    build_detector,
    build_pattern,
    build_scheduler,
    build_system,
    build_task,
)

OUTCOME_OK = "ok"
OUTCOME_SAFETY = "safety_violation"
OUTCOME_HAZARD = "trace_hazard"
OUTCOME_BUDGET = "budget_exhausted"
OUTCOME_DEADLOCK = "deadlock"
OUTCOME_SCHEDULE = "schedule_exhausted"
OUTCOME_INVALID_HISTORY = "invalid_history"
OUTCOME_ERROR = "error"
#: Quarantine outcomes: the *cell run* never finished — its worker was
#: stopped by a budget watchdog or died — and retries were exhausted.
OUTCOME_TIMEOUT = "timeout"
OUTCOME_OOM = "oom"
OUTCOME_WORKER_CRASH = "worker_crash"
OUTCOME_FLAKY = "flaky"
#: Fabric quarantine: the cell was leased out past the redispatch
#: budget without any worker ever delivering a result (one-way
#: partition, blackholed workers) — lost coverage, surfaced instead of
#: hanging the campaign.
OUTCOME_PARTITION = "partition"

QUARANTINE_OUTCOMES = frozenset(
    {
        OUTCOME_TIMEOUT,
        OUTCOME_OOM,
        OUTCOME_WORKER_CRASH,
        OUTCOME_FLAKY,
        OUTCOME_PARTITION,
    }
)

#: ``run_campaign`` dispatch backends (see its docstring).
BACKENDS = ("auto", "inproc", "pool", "fabric")

#: ``run_campaign`` execution kernels: the interpreted executor, or the
#: compiled kernel (:mod:`repro.kernel`) with per-automaton fallback.
KERNELS = ("interp", "compiled")

#: Extra times past stabilization over which histories are validated.
HISTORY_VALIDATION_SLACK = 16


@dataclass(frozen=True)
class CellSpec:
    """One fully-determined point of a campaign: a replayable run.

    Every field is JSON-serializable (see :meth:`to_json`), which is
    what makes shrunk cells portable as repro bundles.
    """

    task: Mapping[str, Any]
    detector: Mapping[str, Any]
    algorithm: str = "auto"
    pattern: tuple = ()
    scheduler: Mapping[str, Any] = field(
        default_factory=lambda: {"kind": "seeded", "seed": 0}
    )
    seed: int = 0
    inputs: tuple | None = None
    max_steps: int = 120_000

    def to_json(self) -> dict[str, Any]:
        return {
            "task": dict(self.task),
            "detector": dict(self.detector),
            "algorithm": self.algorithm,
            "pattern": list(self.pattern),
            "scheduler": dict(self.scheduler),
            "seed": self.seed,
            "inputs": None if self.inputs is None else list(self.inputs),
            "max_steps": self.max_steps,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CellSpec":
        return cls(
            task=dict(data["task"]),
            detector=dict(data["detector"]),
            algorithm=data.get("algorithm", "auto"),
            pattern=tuple(data.get("pattern") or ()),
            scheduler=dict(
                data.get("scheduler") or {"kind": "seeded", "seed": 0}
            ),
            seed=int(data.get("seed", 0)),
            inputs=(
                None
                if data.get("inputs") is None
                else tuple(data["inputs"])
            ),
            max_steps=int(data.get("max_steps", 120_000)),
        )

    def label(self) -> str:
        det = self.detector.get("family", "none")
        stab = self.detector.get("stabilization_time", 0)
        crashes = sum(1 for t in self.pattern if t is not None)
        return (
            f"{self.task.get('family')}(n={self.task.get('n')})"
            f"/{self.algorithm}/{det}@{stab}"
            f"/crashes={crashes}/{self.scheduler.get('kind')}"
            f"/seed={self.seed}"
        )


@dataclass
class CellRecord:
    """Triage result of one executed cell.

    ``attempts`` counts executions including supervised retries; it is
    deliberately absent from :meth:`format_row` so that a cell that was
    lost to a worker crash and re-run renders identically to one that
    succeeded first try (retried runs are deterministic re-executions).
    ``result`` is ``None`` for journal-replayed and quarantined cells.
    """

    cell: CellSpec
    outcome: str
    detail: str = ""
    steps: int = 0
    result: RunResult | None = None
    attempts: int = 1

    def format_row(self) -> str:
        return f"{self.outcome:18} {self.steps:>7}  {self.cell.label()}"


@dataclass
class CampaignReport:
    """Structured outcome of a whole campaign.

    ``fabric`` carries the coordinator's
    :class:`~repro.resilience.fabric.FabricStats` when the run used the
    fabric backend — the evidence of absorbed faults lives there
    because, by design, it must not be visible in the rendered report.
    """

    name: str
    records: list[CellRecord]
    fabric: Any = None

    @property
    def counts(self) -> Counter:
        return Counter(record.outcome for record in self.records)

    @property
    def violations(self) -> list[CellRecord]:
        return [r for r in self.records if r.outcome == OUTCOME_SAFETY]

    @property
    def quarantined(self) -> list[CellRecord]:
        """Cells whose run never finished (budget kill / worker crash)
        and whose retries were exhausted — lost coverage, not verdicts."""
        return [
            r for r in self.records if r.outcome in QUARANTINE_OUTCOMES
        ]

    @property
    def ok(self) -> bool:
        """No safety violations, no engine errors, no invalid histories."""
        bad = {OUTCOME_SAFETY, OUTCOME_ERROR, OUTCOME_INVALID_HISTORY}
        return not any(r.outcome in bad for r in self.records)

    @property
    def complete(self) -> bool:
        """Every cell actually produced a verdict (nothing quarantined)."""
        return not self.quarantined

    def render(self) -> str:
        from ..analysis.reporting import format_campaign

        return format_campaign(self)


@dataclass(frozen=True)
class Workload:
    """A (task, detector family, algorithm) triple to sweep."""

    task: Mapping[str, Any]
    detector: Mapping[str, Any]
    algorithm: str = "auto"


@dataclass
class CampaignSpec:
    """Declarative cross-product of fault axes.

    Attributes:
        name: campaign identifier (shows up in reports and bundles).
        workloads: the (task, detector, algorithm) triples to stress.
        patterns: either explicit crash-time tuples or an int, in which
            case that many patterns are derived per workload via
            :func:`~repro.chaos.injectors.storm_suite`.
        schedulers: scheduler specs (see the registry's kinds).
        seeds: detector-history seeds.
        stabilization_times: swept onto each workload's detector spec.
        max_steps: per-cell liveness budget.
        pattern_seed: determinism seed for derived patterns.
        strict_traces: also classify trace hazards (lint trace rules).
        workers: default process-pool width for :func:`run_campaign`
            (1 = in-process serial execution).  Parallel runs produce
            reports byte-identical to serial ones: every cell carries
            its own seeds, so its run is independent of which worker
            executes it, and records are collected in cell order.
    """

    name: str
    workloads: Sequence[Workload]
    patterns: Sequence[Sequence[int | None]] | int = 4
    schedulers: Sequence[Mapping[str, Any]] = (
        {"kind": "round-robin"},
        {"kind": "seeded", "seed": 1},
    )
    seeds: Sequence[int] = (0, 1)
    stabilization_times: Sequence[int] = (0, 10)
    max_steps: int = 120_000
    pattern_seed: int = 0
    strict_traces: bool = False
    workers: int = 1

    def _patterns_for(self, n: int) -> list[tuple]:
        if isinstance(self.patterns, int):
            return [
                tuple(p.crash_times)
                for p in storm_suite(
                    n, count=self.patterns, seed=self.pattern_seed
                )
            ]
        return [tuple(p) for p in self.patterns]

    def cells(self) -> Iterator[CellSpec]:
        for workload in self.workloads:
            n = int(workload.task.get("n", 3))
            for pattern, scheduler, seed, stab in itertools.product(
                self._patterns_for(n),
                self.schedulers,
                self.seeds,
                self.stabilization_times,
            ):
                detector = dict(workload.detector)
                if detector.get("family") not in (None, "none", "trivial",
                                                  "perfect"):
                    detector["stabilization_time"] = stab
                elif stab != self.stabilization_times[0]:
                    continue  # nothing to sweep for this detector
                yield CellSpec(
                    task=dict(workload.task),
                    detector=detector,
                    algorithm=workload.algorithm,
                    pattern=pattern,
                    scheduler=dict(scheduler),
                    seed=seed,
                    max_steps=self.max_steps,
                )


def classify_result(
    result: RunResult, task, *, strict_traces: bool = False
) -> tuple[str, str]:
    """Map a finished run to (outcome, human detail)."""
    try:
        verify_run(result, task, strict=strict_traces)
        return OUTCOME_OK, ""
    except LivenessViolation as exc:
        by_reason = {
            "budget": OUTCOME_BUDGET,
            "halted": OUTCOME_DEADLOCK,
            "schedule_exhausted": OUTCOME_SCHEDULE,
        }
        return by_reason.get(result.reason, OUTCOME_DEADLOCK), str(exc)
    except SafetyViolation as exc:
        return OUTCOME_SAFETY, str(exc)
    except TraceHazard as exc:
        return OUTCOME_HAZARD, str(exc)


def _prepare_cell(
    cell: CellSpec,
) -> tuple[Any, Any, CellRecord | None]:
    """Build a cell's (task, system) and validate its detector history.

    Returns ``(task, system, invalid_record)`` where ``invalid_record``
    is the ready-made :class:`CellRecord` when history validation
    failed (the run must not happen).  Shared by :func:`run_cell` and
    the compiled lanes (:func:`repro.kernel.lanes.run_cells_compiled`),
    so both kernels see literally the same systems.
    """
    task = build_task(cell.task)
    pattern = build_pattern(cell.pattern, task.n)
    system = build_system(
        task=task,
        algorithm=cell.algorithm,
        detector=build_detector(cell.detector, task.n),
        inputs=cell.inputs,
        pattern=pattern,
        seed=cell.seed,
    )
    # Validate the history the run will actually see (the solver may
    # substitute an equivalent-strength detector form).
    detector = system.detector
    if detector is not None:
        stab = getattr(detector, "stabilization_time", 0)
        if not detector.check_history(
            system.pattern,
            system.history,
            horizon=stab + HISTORY_VALIDATION_SLACK,
            stabilized_from=stab,
        ):
            return task, system, CellRecord(
                cell,
                OUTCOME_INVALID_HISTORY,
                detail=(
                    f"{detector.name} rejected its own (perturbed) "
                    f"history at stabilization {stab}"
                ),
            )
    return task, system, None


def _classify_record(
    cell: CellSpec,
    task: Any,
    result: RunResult,
    *,
    strict_traces: bool,
) -> CellRecord:
    """Map one finished run onto its :class:`CellRecord` (shared by
    both kernels so records render identically)."""
    outcome, detail = classify_result(
        result, task, strict_traces=strict_traces
    )
    if outcome == OUTCOME_BUDGET and result.budget_digest:
        detail = result.budget_digest
    return CellRecord(
        cell, outcome, detail=detail, steps=result.steps, result=result
    )


def run_cell(
    cell: CellSpec,
    *,
    scheduler: Scheduler | None = None,
    strict_traces: bool = False,
    kernel: str = "interp",
) -> CellRecord:
    """Execute one cell: build, validate the history, run, classify.

    ``scheduler`` overrides the cell's declared scheduler (the shrinker
    uses this to substitute recording and explicit schedulers).
    ``kernel="compiled"`` runs through the compiled kernel
    (:func:`repro.kernel.execute_compiled`), which falls back
    per-automaton to the interpreter and produces byte-identical
    records.
    """
    if kernel not in KERNELS:
        raise ResilienceError(f"unknown kernel: {kernel!r}")
    task, system, invalid = _prepare_cell(cell)
    if invalid is not None:
        return invalid
    if kernel == "compiled":
        from ..kernel import execute_compiled as _execute

        runner = _execute
    else:
        runner = execute
    result = runner(
        system,
        scheduler if scheduler is not None
        else build_scheduler(cell.scheduler),
        max_steps=cell.max_steps,
        trace=True,
    )
    return _classify_record(
        cell, task, result, strict_traces=strict_traces
    )


def _run_cell_guarded(args: tuple) -> CellRecord:
    """Module-level (picklable) cell runner shared by the serial and
    pool paths; a raising cell degrades to an ``"error"`` record instead
    of aborting the sweep.

    ``args`` is ``(cell, strict_traces, *rest)``; ``rest`` may carry a
    kernel name (``str``, e.g. ``"compiled"``) and/or the raw-pool
    fault-drill flag (truthy non-str): the worker SIGKILLs itself
    *before* running the cell, simulating an OOM killer / operator kill
    mid-sweep (resubmissions clear the flag).
    """
    cell, strict_traces, *rest = args
    kernel = "interp"
    for extra in rest:
        if isinstance(extra, str):
            kernel = extra
        elif extra:
            os.kill(os.getpid(), signal.SIGKILL)
    try:
        return run_cell(
            cell, strict_traces=strict_traces, kernel=kernel
        )
    except Exception as exc:  # noqa: BLE001 - triage, don't abort
        return CellRecord(
            cell, OUTCOME_ERROR, detail=f"{type(exc).__name__}: {exc}"
        )


def _record_from_job(cell: CellSpec, job: JobResult) -> CellRecord:
    """Map a supervised :class:`~repro.resilience.JobResult` onto a
    :class:`CellRecord` (quarantined jobs become triaged outcomes)."""
    if job.ok:
        record = job.value
        record.attempts = job.attempts
        return record
    if job.kind == "task_error":
        return CellRecord(
            cell, OUTCOME_ERROR, detail=job.detail, attempts=job.attempts
        )
    detail = job.detail
    if job.failures:
        detail = "; ".join(
            f"attempt {i + 1}: {failure.kind}"
            for i, failure in enumerate(job.failures)
        ) + f" — {job.detail}"
    return CellRecord(cell, job.kind, detail=detail, attempts=job.attempts)


def _run_jobs_raw(
    jobs: list[tuple[int, tuple]],
    workers: int,
    record_result: Callable[[int, CellRecord], None],
    inject_worker_kill: int | None = None,
) -> None:
    """Legacy ``ProcessPoolExecutor`` fan-out, kept for the supervised-
    overhead benchmark — now with ``BrokenProcessPool`` recovery: a dead
    worker no longer discards completed cells; finished futures are
    harvested and only the unfinished cells are resubmitted to a fresh
    pool (with any self-kill drill flag cleared)."""
    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    outstanding: dict[int, tuple] = dict(jobs)
    inject = inject_worker_kill
    while outstanding:
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: dict = {}
        try:
            for index, payload in sorted(outstanding.items()):
                kill_self = index == inject
                if kill_self:
                    inject = None  # the drill kills exactly once
                futures[
                    pool.submit(_run_cell_guarded, (*payload, kill_self))
                ] = index
            for future in as_completed(futures):
                index = futures[future]
                record_result(index, future.result())
                del outstanding[index]
        except BrokenProcessPool:
            # Harvest every future that did finish, resubmit the rest.
            for future, index in futures.items():
                if index not in outstanding or not future.done():
                    continue
                try:
                    record = future.result()
                except Exception:  # noqa: BLE001 - lost with the worker
                    continue
                record_result(index, record)
                del outstanding[index]
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def _run_jobs_fabric(
    spec: CampaignSpec,
    cells: Sequence[CellSpec],
    remaining: list[tuple[int, tuple]],
    fingerprint: str,
    record_result: Callable[[int, CellRecord], None],
    run_supervised: Callable[[list[tuple[int, tuple]], int | None], None],
    fabric: Any,
    journal_writer: Any = None,
    recovered: Any = None,
) -> Any:
    """Dispatch ``remaining`` through a fabric coordinator; degrade any
    leftover (no workers / all workers lost) to the local supervised
    pool.  Returns the coordinator's :class:`~repro.resilience.fabric.
    FabricStats`.

    ``journal_writer`` makes the coordinator journal its control-plane
    events (crash-recoverable run); ``recovered`` (a
    :class:`~repro.resilience.journal.ControlPlaneState` from a resumed
    journal) starts it in recovery mode."""
    from ..resilience.fabric import FabricConfig, FabricCoordinator

    if isinstance(fabric, FabricCoordinator):
        coordinator = fabric
    elif isinstance(fabric, FabricConfig) or fabric is None:
        coordinator = FabricCoordinator(fabric)
    else:
        raise ResilienceError(
            f"fabric must be a FabricCoordinator or FabricConfig, "
            f"got {type(fabric).__name__}"
        )

    def on_message(index: int, message: Mapping[str, Any]) -> None:
        record_result(
            index,
            CellRecord(
                cells[index],
                str(message.get("outcome", OUTCOME_ERROR)),
                detail=str(message.get("detail", "")),
                steps=int(message.get("steps", 0)),
                attempts=int(message.get("attempts", 1)),
            ),
        )

    try:
        leftover = coordinator.run(
            [(index, cells[index].to_json()) for index, _ in remaining],
            on_message,
            campaign=spec.name,
            fingerprint=fingerprint,
            strict_traces=spec.strict_traces,
            journal=journal_writer,
            recovered=recovered,
        )
    finally:
        coordinator.close()
    if leftover:
        payloads = dict(remaining)
        run_supervised(
            [(index, payloads[index]) for index in sorted(leftover)],
            None,
        )
    return coordinator.stats


def run_campaign(
    spec: CampaignSpec,
    *,
    limit: int | None = None,
    on_cell: Callable[[CellRecord], None] | None = None,
    workers: int | None = None,
    budget: CellBudget | None = None,
    retry: RetryPolicy | None = None,
    journal: str | None = None,
    resume: str | None = None,
    pool: str = "supervised",
    backend: str = "auto",
    kernel: str = "interp",
    fabric: Any = None,
    inject_worker_kill: int | None = None,
) -> CampaignReport:
    """Run (up to ``limit`` cells of) a campaign to a structured report.

    Degrades gracefully at every level: a cell that *raises* is recorded
    with outcome ``"error"``; a cell whose worker *dies* (crash, budget
    kill) is retried with deterministic backoff and, after the retry
    budget, recorded with a quarantine outcome (``timeout`` / ``oom`` /
    ``worker_crash`` / ``flaky``) — the sweep always continues.

    ``workers`` (default: ``spec.workers``) > 1 fans the cells out over
    a :class:`~repro.resilience.SupervisedPool` (or the legacy raw
    ``ProcessPoolExecutor`` with ``pool="raw"``, kept for overhead
    benchmarking).  Cells are fully determined by their spec — every
    source of randomness is an explicit per-cell seed — and records are
    collected in cell order, so the resulting report (including
    :meth:`CampaignReport.render`) is byte-identical to a serial run.

    ``budget`` arms per-cell wall-clock/RSS watchdogs inside the
    workers; setting it (or ``inject_worker_kill``) with ``workers=1``
    still routes through a one-worker supervised pool so the budget is
    enforceable.  ``journal`` appends every completed cell to a JSONL
    file the moment it finishes; ``resume`` replays such a journal,
    re-executing only the missing cells (the journal is fingerprint-
    pinned to the exact enumerated campaign).  SIGINT/SIGTERM during a
    run raises :class:`~repro.errors.CampaignInterrupted` after workers
    are stopped and the journal is flushed.

    ``backend`` selects the dispatch substrate:

    * ``"auto"`` (default) — serial in-process, unless ``workers`` > 1
      or a budget/fault-injection knob requires a pool.
    * ``"inproc"`` — force serial in-process execution.
    * ``"pool"`` — force the local worker pool (supervised, or the
      legacy raw one with ``pool="raw"``).
    * ``"fabric"`` — shard cells across socket-connected remote workers
      via a :class:`~repro.resilience.fabric.FabricCoordinator` with
      lease-based at-least-once dispatch and idempotent result dedup
      (pass ``fabric`` as a :class:`~repro.resilience.fabric.
      FabricConfig`, a pre-bound coordinator, or ``None`` for loopback
      defaults).  If no worker ever registers — or every worker
      vanishes past the degrade window — the remaining cells run
      through the local supervised pool instead, and
      ``report.fabric.degraded`` records that it happened.  Either
      way the report is byte-identical to a serial run.  With
      ``journal``, the coordinator also logs its control-plane events
      (lease grants/expiries, bench decisions), and ``resume`` then
      restarts a SIGKILLed coordinator in recovery mode: journaled
      cells are never redispatched, workers still holding valid
      leases are re-admitted on reconnect, and spooled worker results
      are replayed idempotently.

    ``kernel`` selects the execution kernel per cell: ``"interp"``
    (default) or ``"compiled"`` (:mod:`repro.kernel` — compiled step
    functions with per-automaton interpreter fallback, proven
    byte-identical by the kernel differential harness).  The serial
    in-process compiled path additionally batches all cells into
    lockstep lanes (:func:`repro.kernel.lanes.run_cells_compiled`);
    pool workers run compiled cells one at a time.  The fabric backend
    does not accept ``kernel="compiled"``: its remote workers negotiate
    only cell JSON, not kernel choice.
    """
    if workers is None:
        workers = spec.workers
    if pool not in ("supervised", "raw"):
        raise ResilienceError(f"unknown pool kind: {pool!r}")
    if backend not in BACKENDS:
        raise ResilienceError(f"unknown backend: {backend!r}")
    if kernel not in KERNELS:
        raise ResilienceError(f"unknown kernel: {kernel!r}")
    if kernel != "interp" and backend == "fabric":
        raise ResilienceError(
            "backend='fabric' does not support kernel="
            f"{kernel!r}: fabric workers negotiate cell JSON only"
        )
    cell_iter = spec.cells()
    if limit is not None:
        cell_iter = itertools.islice(cell_iter, limit)
    cells = list(cell_iter)
    fingerprint = campaign_fingerprint(
        spec.name, cells, spec.strict_traces
    )

    records: dict[int, CellRecord] = {}
    journal_writer: CampaignJournal | None = None
    journal_path: str | None = None
    recovered = None
    if resume is not None:
        scan = scan_journal(resume)
        if scan.header.get("fingerprint") != fingerprint:
            raise ResilienceError(
                f"{resume}: journal fingerprint does not match this "
                f"campaign (different spec, seed, or --cells limit)"
            )
        for index, line in scan.cells.items():
            if 0 <= index < len(cells):
                records[index] = CellRecord(
                    cells[index],
                    line["outcome"],
                    detail=line.get("detail", ""),
                    steps=int(line.get("steps", 0)),
                    attempts=int(line.get("attempts", 1)),
                )
        if backend == "fabric":
            # Coordinator crash recovery: rebuild the lease table and
            # suspicion state from the journal's control-plane events
            # so still-computing workers can reconnect and be
            # re-admitted instead of having their cells redispatched.
            recovered = recover_control_state(scan)
        journal_path = str(resume)
        journal_writer = CampaignJournal(resume).reopen()
    elif journal is not None:
        journal_path = str(journal)
        journal_writer = CampaignJournal(journal).open(
            {
                "campaign": spec.name,
                "fingerprint": fingerprint,
                "cells": len(cells),
            }
        )

    emitted = 0

    def emit_ready() -> None:
        """Deliver records to ``on_cell`` in cell order, as available."""
        nonlocal emitted
        while emitted < len(cells) and emitted in records:
            if on_cell is not None:
                on_cell(records[emitted])
            emitted += 1

    def record_result(index: int, record: CellRecord) -> None:
        records[index] = record
        if journal_writer is not None:
            journal_writer.append_cell(
                index,
                outcome=record.outcome,
                detail=record.detail,
                steps=record.steps,
                attempts=record.attempts,
                cell_json=record.cell.to_json(),
            )
        emit_ready()

    payload_tail = () if kernel == "interp" else (kernel,)
    remaining = [
        (index, (cells[index], spec.strict_traces, *payload_tail))
        for index in range(len(cells))
        if index not in records
    ]
    fabric_stats = None

    def run_supervised(
        jobs: list[tuple[int, tuple]], kill_index: int | None
    ) -> None:
        supervised = SupervisedPool(
            _run_cell_guarded,
            workers=max(1, workers),
            budget=budget,
            retry=retry,
            kill_job_index=kill_index,
        )

        def on_job(job: JobResult) -> None:
            record_result(
                job.index, _record_from_job(cells[job.index], job)
            )

        supervised.run(jobs, on_result=on_job)

    try:
        emit_ready()  # journal-replayed prefix first, in order
        use_pool = (
            backend == "pool"
            or workers > 1
            or budget is not None
            or inject_worker_kill is not None
        ) and backend != "inproc"
        if not remaining:
            pass
        elif backend == "fabric":
            fabric_stats = _run_jobs_fabric(
                spec,
                cells,
                remaining,
                fingerprint,
                record_result,
                run_supervised,
                fabric,
                journal_writer=journal_writer,
                recovered=recovered,
            )
        elif use_pool and pool == "raw":
            _run_jobs_raw(
                remaining, max(1, workers), record_result,
                inject_worker_kill,
            )
        elif use_pool:
            run_supervised(remaining, inject_worker_kill)
        elif kernel == "compiled":
            from ..kernel.lanes import run_cells_compiled

            run_cells_compiled(
                [(index, payload[0]) for index, payload in remaining],
                strict_traces=spec.strict_traces,
                record_result=record_result,
            )
        else:
            for index, payload in remaining:
                record_result(index, _run_cell_guarded(payload))
    except KeyboardInterrupt:
        raise CampaignInterrupted(
            f"campaign '{spec.name}' interrupted: "
            f"{len(records)}/{len(cells)} cells durable",
            journal_path=journal_path,
            completed=len(records),
            total=len(cells),
        ) from None
    finally:
        if journal_writer is not None:
            journal_writer.close()
    return CampaignReport(
        spec.name,
        [records[index] for index in range(len(cells))],
        fabric=fabric_stats,
    )


# -- stock campaigns ----------------------------------------------------


def smoke_campaign(*, seed: int = 0) -> CampaignSpec:
    """Small fixed-seed campaign for CI: must report zero violations."""
    return CampaignSpec(
        name="smoke",
        workloads=[
            Workload(
                task={"family": "consensus", "n": 3},
                detector={"family": "omega"},
            ),
            Workload(
                task={"family": "set-agreement", "n": 3, "k": 2},
                detector={"family": "vector-omega", "k": 2},
            ),
        ],
        patterns=2,
        schedulers=(
            {"kind": "round-robin"},
            {"kind": "seeded", "seed": seed + 1},
            {"kind": "burst", "period": 30, "burst": 10, "seed": seed},
        ),
        seeds=(seed, seed + 1),
        stabilization_times=(8,),
        max_steps=80_000,
        pattern_seed=seed,
    )


def standard_campaign(*, seed: int = 0) -> CampaignSpec:
    """The acceptance campaign: consensus+Omega and k-set-agreement+
    vecOmega-k swept over derived patterns, mutated schedulers, seeds,
    and stabilization times — 200 cells."""
    return CampaignSpec(
        name="standard",
        workloads=[
            Workload(
                task={"family": "consensus", "n": 3},
                detector={"family": "omega"},
            ),
            Workload(
                task={"family": "set-agreement", "n": 3, "k": 2},
                detector={"family": "vector-omega", "k": 2},
            ),
        ],
        patterns=5,
        schedulers=(
            {"kind": "round-robin"},
            {"kind": "seeded", "seed": seed + 1},
            {"kind": "burst", "period": 40, "burst": 15, "seed": seed},
            {"kind": "shadow", "shadow": 12},
            {"kind": "inversion", "relief": 7},
        ),
        seeds=(seed, seed + 1),
        stabilization_times=(0, 12),
        max_steps=150_000,
        pattern_seed=seed,
    )


def specimen_campaign(*, seed: int = 0) -> CampaignSpec:
    """Campaign over the decide-before-stabilization specimen: expected
    to *produce* safety violations (that is the point)."""
    return CampaignSpec(
        name="specimen:eager-consensus",
        workloads=[
            Workload(
                task={"family": "consensus", "n": 3},
                detector={"family": "omega"},
                algorithm="eager-consensus",
            ),
        ],
        patterns=3,
        schedulers=(
            {"kind": "round-robin"},
            {"kind": "seeded", "seed": seed + 1},
        ),
        seeds=tuple(range(seed, seed + 6)),
        stabilization_times=(0, 24),
        max_steps=5_000,
        pattern_seed=seed,
    )
