"""Counterexample shrinking: delta-debug a violating cell to a local
minimum.

Given a cell whose run fails (typically a safety violation), the
shrinker first pins the interleaving down: it re-runs the cell with a
:class:`~repro.runtime.scheduler.RecordingScheduler` and converts the
choices into an explicit schedule, which makes the witness fully
deterministic.  It then applies three reduction moves to a fixpoint,
keeping a candidate only if the *same outcome class* reproduces:

1. **Schedule shortening** — classic ddmin over the explicit schedule
   (the non-strict :class:`~repro.runtime.scheduler.ExplicitScheduler`
   falls back to round-robin past the shortened prefix, so candidates
   always run to completion deterministically).
2. **Un-crashing** — remove injected crashes one S-process at a time; a
   crash that survives shrinking is load-bearing for the failure.
3. **Stabilization raising** — double the detector's stabilization time
   while the failure persists.  A witness that still fails with a much
   later stabilization point does not depend on the detector converging
   early, which separates genuine algorithm bugs from artifacts of a
   tight noise window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from ..errors import ChaosError
from ..runtime.scheduler import RecordingScheduler
from .campaign import OUTCOME_OK, CellRecord, CellSpec, run_cell
from .registry import build_scheduler

#: Stabilization times are doubled up to this cap during move 3.
MAX_STABILIZATION = 256


@dataclass
class ShrinkResult:
    """A locally-minimal failing cell plus shrink statistics."""

    cell: CellSpec
    outcome: str
    detail: str
    trials: int
    original_schedule_len: int
    final_schedule_len: int
    #: whether the witness was reproduced under per-run trace analysis
    #: (``run_cell(strict_traces=True)``); recorded in bundles so the
    #: replay applies the same checking
    strict_traces: bool = False
    #: execution kernel every trial ran under (``"interp"`` or
    #: ``"compiled"``); recorded in bundles so the replay runs the
    #: kernel that found the witness
    kernel: str = "interp"

    def summary(self) -> str:
        return (
            f"shrunk to {self.final_schedule_len} scheduled steps "
            f"(from {self.original_schedule_len}) in {self.trials} "
            f"trial runs; outcome {self.outcome}"
        )


class _Shrinker:
    def __init__(
        self,
        target_outcome: str,
        max_trials: int,
        *,
        strict_traces: bool = False,
        kernel: str = "interp",
    ) -> None:
        self.target = target_outcome
        self.max_trials = max_trials
        self.strict_traces = strict_traces
        self.kernel = kernel
        self.trials = 0
        self.last_detail = ""

    def fails(self, cell: CellSpec) -> bool:
        if self.trials >= self.max_trials:
            return False  # out of budget: reject further candidates
        self.trials += 1
        record = run_cell(
            cell, strict_traces=self.strict_traces, kernel=self.kernel
        )
        if record.outcome == self.target:
            self.last_detail = record.detail
            return True
        return False

    # -- moves ---------------------------------------------------------

    def shorten_schedule(self, cell: CellSpec) -> CellSpec:
        """ddmin over the explicit schedule embedded in ``cell``."""
        sequence = list(cell.scheduler["sequence"])
        granularity = 2
        while len(sequence) >= 2:
            chunk = max(1, len(sequence) // granularity)
            removed_any = False
            start = 0
            while start < len(sequence):
                candidate = sequence[:start] + sequence[start + chunk:]
                trial = _with_schedule(cell, candidate)
                if candidate != sequence and self.fails(trial):
                    sequence = candidate
                    removed_any = True
                    # Re-scan from the same offset at the same chunk size.
                else:
                    start += chunk
            if removed_any:
                granularity = max(granularity - 1, 2)
            elif chunk <= 1:
                break
            else:
                granularity = min(granularity * 2, len(sequence))
        return _with_schedule(cell, sequence)

    def uncrash(self, cell: CellSpec) -> CellSpec:
        for index, crash in enumerate(cell.pattern):
            if crash is None:
                continue
            candidate_pattern = tuple(
                None if i == index else t
                for i, t in enumerate(cell.pattern)
            )
            trial = dc_replace(cell, pattern=candidate_pattern)
            if self.fails(trial):
                cell = trial
        return cell

    def raise_stabilization(self, cell: CellSpec) -> CellSpec:
        stab = int(cell.detector.get("stabilization_time", 0))
        if stab <= 0:
            return cell
        while stab < MAX_STABILIZATION:
            raised = min(stab * 2, MAX_STABILIZATION)
            detector = dict(cell.detector)
            detector["stabilization_time"] = raised
            trial = dc_replace(cell, detector=detector)
            if not self.fails(trial):
                break
            cell, stab = trial, raised
        return cell


def _with_schedule(cell: CellSpec, sequence: list[str]) -> CellSpec:
    return dc_replace(
        cell,
        scheduler={
            "kind": "explicit",
            "sequence": list(sequence),
            "strict": False,
        },
    )


def pin_schedule(
    cell: CellSpec, *, strict_traces: bool = False, kernel: str = "interp"
) -> tuple[CellSpec, CellRecord]:
    """Replace the cell's scheduler by the explicit schedule it produces.

    Runs the cell once under a recording wrapper and embeds the recorded
    choices, making the witness independent of scheduler state.
    """
    recorder = RecordingScheduler(build_scheduler(cell.scheduler))
    record = run_cell(
        cell,
        scheduler=recorder,
        strict_traces=strict_traces,
        kernel=kernel,
    )
    pinned = _with_schedule(
        cell, [pid.name for pid in recorder.picks]
    )
    return pinned, record


def shrink_cell(
    cell: CellSpec,
    *,
    max_trials: int = 400,
    strict_traces: bool = False,
    kernel: str = "interp",
) -> ShrinkResult:
    """Delta-debug ``cell`` (which must fail) to a locally-minimal
    failing cell with an explicit, deterministic schedule.

    ``strict_traces`` runs every trial under per-run trace analysis
    (:func:`repro.chaos.campaign.run_cell`'s flag), so hazard outcomes
    (``trace_hazard``) can be shrunk and replayed too.  ``kernel``
    selects the execution kernel for the pinning run and every trial;
    it is recorded on the result so bundles replay under the kernel
    that found the witness.
    """
    pinned, record = pin_schedule(
        cell, strict_traces=strict_traces, kernel=kernel
    )
    if record.outcome == OUTCOME_OK:
        raise ChaosError(
            f"cannot shrink a passing cell: {cell.label()}"
        )
    shrinker = _Shrinker(
        record.outcome,
        max_trials,
        strict_traces=strict_traces,
        kernel=kernel,
    )
    if not shrinker.fails(pinned):
        raise ChaosError(
            "explicit-schedule replay did not reproduce the "
            f"{record.outcome} outcome for {cell.label()}"
        )
    original_len = len(pinned.scheduler["sequence"])
    current = pinned
    while True:
        before = current
        current = shrinker.shorten_schedule(current)
        current = shrinker.uncrash(current)
        current = shrinker.raise_stabilization(current)
        if current == before or shrinker.trials >= max_trials:
            break
    return ShrinkResult(
        cell=current,
        outcome=shrinker.target,
        detail=shrinker.last_detail,
        trials=shrinker.trials,
        original_schedule_len=original_len,
        final_schedule_len=len(current.scheduler["sequence"]),
        strict_traces=strict_traces,
        kernel=kernel,
    )
