"""Chaos engine: fault-injection campaigns, counterexample shrinking,
and replayable failure bundles.

Every safety claim in *Wait-Freedom with Advice* is universal over
failure patterns, detector histories, and schedules.  This package turns
the reproduction into an adversarial testbed for that quantifier:

* :mod:`~repro.chaos.injectors` — composable fault sources that stay
  inside the EFD model: derived :class:`~repro.core.failures.FailurePattern`
  families (crash storms, cascades, last-survivor), detector-history
  perturbation with swept stabilization times (validated against each
  detector's ``check_history`` oracle), and adversarial scheduler
  mutators (burst starvation, decided-process shadowing, priority
  inversion).
* :mod:`~repro.chaos.campaign` — a declarative
  :class:`~repro.chaos.campaign.CampaignSpec` sweeping the cross-product
  (workload x pattern x scheduler x seed x stabilization time); each
  cell is executed with a trace, verified, and triaged into a structured
  :class:`~repro.chaos.campaign.CampaignReport`.  One failing cell never
  aborts the campaign.
* :mod:`~repro.chaos.shrink` — delta-debugging of a violating cell to a
  locally-minimal failing run (shorter explicit schedule, fewer crashes,
  later stabilization).
* :mod:`~repro.chaos.bundle` — serialization of a shrunk witness into a
  JSON repro bundle that ``python -m repro chaos replay`` re-executes
  deterministically via an explicit schedule.
* :mod:`~repro.chaos.specimens` — intentionally buggy algorithms
  (decide-before-stabilization consensus) used to prove the engine
  actually catches violations end to end.
"""

from .bundle import (
    bundle_from_shrink,
    load_bundle,
    replay_bundle,
    save_bundle,
)
from .campaign import (
    BACKENDS,
    OUTCOME_BUDGET,
    OUTCOME_DEADLOCK,
    OUTCOME_ERROR,
    OUTCOME_FLAKY,
    OUTCOME_HAZARD,
    OUTCOME_INVALID_HISTORY,
    OUTCOME_OK,
    OUTCOME_OOM,
    OUTCOME_PARTITION,
    OUTCOME_SAFETY,
    OUTCOME_SCHEDULE,
    OUTCOME_TIMEOUT,
    OUTCOME_WORKER_CRASH,
    QUARANTINE_OUTCOMES,
    CampaignReport,
    CampaignSpec,
    CellRecord,
    CellSpec,
    Workload,
    run_campaign,
    run_cell,
    smoke_campaign,
    specimen_campaign,
    standard_campaign,
)
from .injectors import (
    BurstStarvationScheduler,
    DecidedShadowScheduler,
    PerturbedDetector,
    PriorityInversionScheduler,
    crash_cascade,
    crash_storm,
    last_survivor,
    storm_suite,
)
from .shrink import ShrinkResult, shrink_cell

__all__ = [
    "bundle_from_shrink",
    "load_bundle",
    "replay_bundle",
    "save_bundle",
    "BACKENDS",
    "OUTCOME_BUDGET",
    "OUTCOME_DEADLOCK",
    "OUTCOME_ERROR",
    "OUTCOME_FLAKY",
    "OUTCOME_HAZARD",
    "OUTCOME_INVALID_HISTORY",
    "OUTCOME_OK",
    "OUTCOME_OOM",
    "OUTCOME_PARTITION",
    "OUTCOME_SAFETY",
    "OUTCOME_SCHEDULE",
    "OUTCOME_TIMEOUT",
    "OUTCOME_WORKER_CRASH",
    "QUARANTINE_OUTCOMES",
    "CampaignReport",
    "CampaignSpec",
    "CellRecord",
    "CellSpec",
    "Workload",
    "run_campaign",
    "run_cell",
    "smoke_campaign",
    "specimen_campaign",
    "standard_campaign",
    "BurstStarvationScheduler",
    "DecidedShadowScheduler",
    "PerturbedDetector",
    "PriorityInversionScheduler",
    "crash_cascade",
    "crash_storm",
    "last_survivor",
    "storm_suite",
    "ShrinkResult",
    "shrink_cell",
]
