"""FLP-style valency analysis over explored schedules.

Classifies explored prefixes of a consensus-like system by the set of
decision values still reachable: *bivalent* states can still go two
ways, *univalent* ones cannot.  The FLP argument [14] shows a wait-free
register protocol for 2-process consensus must have a bivalent initial
state and no way to ever leave bivalence — this module lets the tests
watch that structure concretely on real protocols from this package
(e.g. the Proposition 1 solver run outside its 1-concurrent envelope),
complementing the topology module's exact unsolvability certificates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.process import ProcessId
from ..core.system import System
from .explorer import ScheduleExplorer


@dataclass(frozen=True)
class ValencyReport:
    """Reachable decision outcomes from the empty schedule."""

    reachable_outcomes: frozenset
    bivalent_initial: bool
    critical_prefixes: tuple[tuple[ProcessId, ...], ...]


def analyze_valency(
    system_builder: Callable[[], System],
    *,
    max_depth: int,
    decision_of: Callable | None = None,
    candidate_filter: Callable | None = None,
) -> ValencyReport:
    """Compute the valency structure of a small system.

    ``decision_of`` maps a finished executor to its outcome (default:
    the sorted tuple of decided values).  A prefix is *critical* when it
    is bivalent but all its successors are univalent.
    """
    if decision_of is None:

        def decision_of(executor):
            return tuple(sorted(set(executor.decisions.values())))

    outcomes_by_prefix: dict[tuple[ProcessId, ...], set] = {}

    explorer = ScheduleExplorer(
        system_builder,
        max_depth=max_depth,
        candidate_filter=candidate_filter,
    )

    def verdict(executor):
        prefix = _prefix_of(executor)
        if executor.system.participants <= executor.decided_c:
            outcome = decision_of(executor)
            for i in range(len(prefix) + 1):
                outcomes_by_prefix.setdefault(prefix[:i], set()).add(outcome)
            return None
        outcomes_by_prefix.setdefault(prefix, set())
        return True

    def _prefix_of(executor):
        # The explorer replays deterministic prefixes; reconstructing
        # from step counts is fragile, so read the schedule of the node
        # currently being visited straight off the explorer.
        return explorer.current_schedule

    explorer.check(verdict)
    reachable = frozenset(outcomes_by_prefix.get((), set()))
    bivalent = len(reachable) > 1
    critical = []
    for prefix, outcomes in outcomes_by_prefix.items():
        if len(outcomes) <= 1:
            continue
        children = [
            p
            for p in outcomes_by_prefix
            if len(p) == len(prefix) + 1 and p[: len(prefix)] == prefix
        ]
        if children and all(
            len(outcomes_by_prefix[c]) == 1 for c in children
        ):
            critical.append(prefix)
    return ValencyReport(
        reachable_outcomes=reachable,
        bivalent_initial=bivalent,
        critical_prefixes=tuple(sorted(critical, key=len)),
    )
