"""Symmetry reduction over interchangeable C-processes.

Two C-processes are *symmetric* when they run the identical automaton
factory on equal task inputs: every reachable state is then mapped to
another reachable state by swapping the pair, and — provided the task
itself is invariant under permuting equal-input positions, which the
differential tests enforce per task — the swapped state violates the
task if and only if the original does.  Groups of pairwise-symmetric,
participating C-process indices are *orbits* (:func:`c_orbits`).

Two reductions exploit this:

* **Candidate pruning** (:func:`prune_interchangeable`): when several
  orbit members are schedulable and their execution histories so far
  are *literally* equal — same started/halted flags, same step count,
  same result log, and the same recorded operation log — stepping any
  of them leads to states that are images of each other under the
  swap, so only the smallest index is explored.  Literal op-log
  equality matters: equal *result* logs alone do not imply the
  processes touched the same registers (an automaton may embed its own
  index in register names), so the executor must record ops
  (``record_ops=True``).

* **Canonical fingerprints** (:func:`canonical_fingerprint`): the
  dedup fingerprint is made orbit-invariant by (a) listing each
  orbit's per-member state bundles as a *sorted multiset* rather than
  in index order and (b) folding the members' ``inp/<i>`` registers —
  the only registers whose names the executor itself derives from a
  process index — into those bundles.  All other memory is compared
  literally, so two states only collapse when the permutation matching
  their bundles maps each member onto one with an identical op log,
  result log, and decision — exactly the condition under which the
  states are literal images of each other under the permutation.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Any

from ..core.process import c_process
from ..core.system import System, input_register
from ..runtime.executor import Executor

__all__ = ["c_orbits", "prune_interchangeable", "canonical_fingerprint"]


def c_orbits(system: System) -> tuple[tuple[int, ...], ...]:
    """Orbits of the system's C-processes: maximal groups (size >= 2)
    of participating indices sharing the identical automaton factory
    object and an equal input value."""
    groups: dict[tuple[int, str], list[int]] = {}
    for i, factory in enumerate(system.c_factories):
        value = system.inputs[i]
        if value is None:
            continue  # non-participant: never scheduled, nothing to swap
        groups.setdefault((id(factory), repr(value)), []).append(i)
    return tuple(
        tuple(members)
        for members in groups.values()
        if len(members) >= 2
    )


def _bundle(executor: Executor, index: int) -> tuple:
    started, halted, steps, result_log, op_log = executor.slot_view(
        c_process(index)
    )
    return (
        started,
        halted,
        steps,
        repr(result_log),
        repr(op_log),
        repr(executor.decisions.get(index, _UNDECIDED)),
    )


class _Undecided:
    def __repr__(self) -> str:  # stable across processes/sessions
        return "<undecided>"


_UNDECIDED = _Undecided()


def prune_interchangeable(
    executor: Executor,
    orbits: tuple[tuple[int, ...], ...],
    candidates: tuple,
) -> tuple:
    """Drop candidate C-processes that are interchangeable with a
    smaller-indexed candidate of the same orbit (identical history so
    far, see module docstring).  Keeps candidate order otherwise."""
    dropped: set[int] = set()
    for orbit in orbits:
        reps: list[tuple[int, tuple]] = []
        for index in orbit:
            if c_process(index) not in candidates:
                continue
            bundle = _bundle(executor, index)
            for _, rep_bundle in reps:
                if bundle == rep_bundle:
                    dropped.add(index)
                    break
            else:
                reps.append((index, bundle))
    if not dropped:
        return candidates
    return tuple(
        pid
        for pid in candidates
        if not (pid.is_computation and pid.index in dropped)
    )


def canonical_fingerprint(
    executor: Executor, orbits: tuple[tuple[int, ...], ...]
) -> bytes:
    """Orbit-invariant state digest (see module docstring).  Requires
    an executor recording both results and ops."""
    member_of: dict[int, int] = {}
    for orbit_no, orbit in enumerate(orbits):
        for index in orbit:
            member_of[index] = orbit_no
    inp_names = {input_register(i) for i in member_of}
    fixed_slots: list[tuple] = []
    orbit_bundles: list[list[tuple]] = [[] for _ in orbits]
    for pid in executor.system.all_pids():
        if pid.is_computation and pid.index in member_of:
            bundle = _bundle(executor, pid.index) + (
                repr(executor.system.inputs[pid.index]),
            )
            orbit_bundles[member_of[pid.index]].append(bundle)
        else:
            started, halted, steps, result_log, _op_log = (
                executor.slot_view(pid)
            )
            fixed_slots.append((started, halted, repr(result_log)))
    state: Any = (
        executor.time,
        sorted(
            (name, repr(value))
            for name, value in executor.memory.snapshot("").items()
            if name not in inp_names
        ),
        sorted(
            (i, repr(d))
            for i, d in executor.decisions.items()
            if i not in member_of
        ),
        fixed_slots,
        [sorted(bundles) for bundles in orbit_bundles],
    )
    return blake2b(repr(state).encode(), digest_size=16).digest()
