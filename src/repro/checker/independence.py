"""Independence relation between pending steps, for partial-order
reduction.

Two enabled steps are *independent* at a state when executing them in
either order yields the same state and neither order enables or
disables the other — the forward-diamond condition sleep-set pruning
requires (Godefroid, *Partial-Order Methods for the Verification of
Concurrent Systems*).  The paper's step model (PAPER.md §2.1) makes
this a register question: a step atomically reads or writes named
shared registers, so two steps commute whenever their register
footprints are disjoint.

The relation here is deliberately conservative.  A step is *universal*
(dependent on everything) when any of the following holds:

* it is a ``QueryFD`` — detector output ``H(q, t)`` is indexed by the
  global time of the run, and every step advances time, so reordering
  an S-step past a query changes the query's result;
* it is a ``Decide`` — the decision vector feeds safety verdicts and
  candidate filters (e.g. the k-concurrency gate), so reordering it
  changes what the explorer observes at intermediate nodes;
* it is the first step of a C-process — the mandated input write also
  extends the *participating/started* set that verdicts and candidate
  filters read;
* its process is halted or otherwise has no pending op (it should not
  be schedulable at all — treat defensively).

Additionally, no pair is independent while the failure pattern still
holds pending crash transitions (``executor.crashes_pending()``):
crashes trigger at fixed *times*, and reordering steps around a crash
boundary changes which steps the crashed process managed to take.
Exhaustive exploration almost always runs under the crash-free pattern
(failure cases are sampled by the chaos engine instead), so this
node-level guard costs nothing in the common case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.process import ProcessId
from ..runtime import ops
from ..runtime.executor import Executor

__all__ = [
    "StepFootprint",
    "op_footprint",
    "step_footprint",
    "commutes",
    "independent",
]


def op_footprint(
    op: ops.Operation,
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]] | None:
    """The per-operation register footprint this module's independence
    relation is built on — ``(reads, read_prefixes, writes)``, or
    ``None`` for universally-dependent operations.

    This is re-exported here (rather than callers reaching into
    :func:`repro.runtime.ops.footprint` directly) so the lint
    footprint audit provably checks *the same declaration* the
    partial-order reduction trusts: a dynamic result the declared
    footprint cannot explain is a POR soundness bug.
    """
    return ops.footprint(op)


@dataclass(frozen=True)
class StepFootprint:
    """Register footprint of one process's pending step."""

    pid: ProcessId
    reads: tuple[str, ...]
    read_prefixes: tuple[str, ...]
    writes: tuple[str, ...]
    #: dependent on every other step (see module docstring)
    universal: bool = False


def step_footprint(executor: Executor, pid: ProcessId) -> StepFootprint:
    """Footprint of the step ``pid`` would take next in ``executor``."""
    op = executor.peek(pid)
    if (
        pid.is_computation
        and not executor.slot_view(pid)[0]  # not started: first step
    ) or op is None:
        return StepFootprint(pid, (), (), (), universal=True)
    prints = op_footprint(op)
    if prints is None or isinstance(op, ops.Decide):
        return StepFootprint(pid, (), (), (), universal=True)
    reads, prefixes, writes = prints
    return StepFootprint(pid, reads, prefixes, writes)


def _write_conflicts(
    writes: tuple[str, ...], other: StepFootprint
) -> bool:
    for w in writes:
        if w in other.writes or w in other.reads:
            return True
        for prefix in other.read_prefixes:
            if w.startswith(prefix):
                return True
    return False


def commutes(a: StepFootprint, b: StepFootprint) -> bool:
    """Whether the two footprinted steps commute (state-independent
    check; callers must separately guard crash boundaries, see
    :func:`independent`)."""
    if a.universal or b.universal:
        return False
    return not (
        _write_conflicts(a.writes, b) or _write_conflicts(b.writes, a)
    )


def independent(executor: Executor, p: ProcessId, q: ProcessId) -> bool:
    """Whether the pending steps of ``p`` and ``q`` are independent at
    the executor's current state.  Convenience entry point (the
    explorer computes footprints once per node instead)."""
    if p == q or executor.crashes_pending():
        return False
    return commutes(step_footprint(executor, p), step_footprint(executor, q))
