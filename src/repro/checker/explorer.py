"""Exhaustive schedule exploration of small systems.

For tiny process counts and bounded depth, *every* interleaving of a
system can be enumerated, turning "for all schedules" claims (task
safety, k-concurrency bounds) into machine-checked facts rather than
sampled evidence.  The classifier and several integration tests use
this to certify the upper-bound algorithms on small instances.

Exploration is a DFS over the executor's ``schedulable()`` sets.  Since
executors cannot be forked (automata are live generators), backtracking
has to re-establish prefix state.  The explorer keeps a *checkpoint
stack*: every ``checkpoint_stride`` levels of descent it captures the
executor (copy-on-write register snapshot + per-process result logs,
see :meth:`~repro.runtime.executor.Executor.checkpoint`), and sibling
expansion restores the deepest checkpoint on the target path and
replays only the suffix — instead of rebuilding the system and
replaying the whole prefix, which made backtracking O(depth²).

Optional state-fingerprint deduplication (``dedup=True``) prunes
interleavings that reach an execution state already explored at the
same depth (symmetric interleavings of independent operations).  It is
off by default because it changes the reported node counts; violations
found are the same either way, since a deduplicated state has an
identical future to its first occurrence.

Partial-order reduction (``por=True``) prunes sibling orders of
*commuting* steps with sleep sets (Godefroid): after exploring branch
``a`` of a node, every branch explored later adds ``a`` to its child's
sleep set for as long as only steps independent of ``a`` are taken —
and a sleeping process is never branched on, because the state its
step would reach is reached (and checked) inside the earlier sibling's
subtree.  Independence comes from :mod:`repro.checker.independence`:
disjoint register footprints, with ``QueryFD`` / ``Decide`` /
first-steps treated as globally dependent and the whole reduction
suspended while crash transitions are pending.  Sleep sets preserve
the *set of visited states* (only duplicate orders are dropped), so a
per-node verdict sees exactly the states the naive explorer sees —
``por`` changes node counts, never the verdict.  It requires the
candidate filter, if any, to be a pure function of the candidate and
the executor's ``started_c`` / ``decided_c`` sets (both built-ins
are), so that steps independent of a process can never enable or
disable it.

Symmetry reduction (``symmetry=True``) prunes schedulable C-processes
that are *interchangeable* — same automaton factory, equal input,
literally identical history so far — with a smaller-indexed candidate
(see :mod:`repro.checker.symmetry`), and, when combined with
``dedup``, canonicalizes fingerprints so states differing only by a
permutation of interchangeable processes collapse.  Sound for tasks
that are invariant under permuting equal-input positions (all tasks in
this repository; enforced by the differential tests).

When ``por`` and ``dedup`` are combined, a revisited fingerprint is
only pruned if some earlier visit carried a *subset* of the current
sleep set — i.e. explored at least every branch this visit would.  An
unconditional prune would be unsound (the classic sleep-sets versus
state-caching interaction): the first visit may have skipped branches
whose coverage was promised by siblings of *its* path, a promise that
says nothing about the new path.

Exploration is *preemptible*: the DFS runs over an explicit frontier
stack (not Python recursion), so :meth:`ScheduleExplorer.check` can
stop at a wall-clock ``deadline_s`` or on SIGINT/SIGTERM, serialize the
frontier — pending ``(schedule, sleep set)`` nodes, the report
counters, and the dedup ``seen`` map — to an atomic checkpoint file,
and a later ``resume_from`` run re-establishes prefix state by replay
and continues *exactly*: the final report of an interrupted-and-resumed
exploration is equal, counter for counter, to an uninterrupted one,
because nodes are expanded in the identical order and no counter is
charged twice (the frontier is saved before the next node is popped).
"""

from __future__ import annotations

import pickle
import signal as _signal
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.process import ProcessId
from ..core.system import System
from ..errors import ResilienceError
from ..resilience import atomic_write_bytes
from ..runtime.executor import Executor, ExecutorCheckpoint
from ..runtime.scheduler import ExplicitScheduler
from .independence import StepFootprint, commutes, step_footprint
from .symmetry import c_orbits, canonical_fingerprint, prune_interchangeable

EXPLORER_CHECKPOINT_FORMAT = "repro-explorer-checkpoint"
EXPLORER_CHECKPOINT_VERSION = 1

#: Explorer knobs that must match between a checkpoint and the
#: explorer resuming from it.
_KNOB_NAMES = ("max_depth", "max_runs", "dedup", "por", "symmetry")


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration.

    ``interrupted`` marks a run that stopped at its deadline or on a
    signal rather than exhausting the frontier; when a checkpoint was
    requested, ``checkpoint_path`` names the file a ``resume_from`` run
    continues from.
    """

    explored: int = 0
    completed_runs: int = 0
    truncated_runs: int = 0
    deduplicated: int = 0
    por_pruned: int = 0
    symmetry_pruned: int = 0
    violations: list[tuple[tuple[ProcessId, ...], object]] = field(
        default_factory=list
    )
    interrupted: bool = False
    checkpoint_path: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


class ScheduleExplorer:
    """Enumerate all interleavings of a (small) system up to a depth.

    Args:
        system_builder: creates a fresh, identical system per replay
            (systems are deterministic given their seed).
        max_depth: schedule-length bound.
        candidate_filter: optional narrowing of the schedulable set
            (e.g. drop null-stepping S-processes, or impose the
            k-concurrency gate); receives the executor and the candidate
            tuple, returns the candidates to branch on.
        max_runs: hard cap on completed+truncated runs (safety valve).
        checkpoint_stride: take an executor checkpoint every this many
            levels of descent; sibling expansion replays at most this
            many suffix steps on top of a cheap restore.
        dedup: prune states whose fingerprint was already explored
            (opt-in; changes node counts, never the verdict).
        por: sleep-set partial-order reduction — prune sibling orders
            of independent steps (opt-in; changes node counts, never
            the verdict; see module docstring for the candidate-filter
            purity requirement).
        symmetry: prune interchangeable C-processes and, with
            ``dedup``, canonicalize fingerprints over process orbits
            (opt-in; sound for permutation-invariant tasks, see module
            docstring).
    """

    def __init__(
        self,
        system_builder: Callable[[], System],
        *,
        max_depth: int,
        candidate_filter: Callable | None = None,
        max_runs: int = 200_000,
        checkpoint_stride: int = 4,
        dedup: bool = False,
        por: bool = False,
        symmetry: bool = False,
    ) -> None:
        if checkpoint_stride < 1:
            raise ValueError("checkpoint_stride must be >= 1")
        self.system_builder = system_builder
        self.max_depth = max_depth
        self.candidate_filter = candidate_filter
        self.max_runs = max_runs
        self.checkpoint_stride = checkpoint_stride
        self.dedup = dedup
        self.por = por
        self.symmetry = symmetry
        self._orbits: tuple[tuple[int, ...], ...] = ()
        #: set by :meth:`request_interrupt` (or a signal handler) to
        #: stop the running :meth:`check` before its next node.
        self._interrupt = False
        #: schedule prefix of the executor most recently produced by
        #: :meth:`_executor_for` (the node currently being visited).
        self.current_schedule: tuple[ProcessId, ...] = ()
        self._current: Executor | None = None
        self._system: System | None = None
        # Replay executors are driven via step_trusted and never consult
        # their scheduler, so a single inert one serves them all.
        self._scheduler = ExplicitScheduler([], strict=False)
        #: stack of (schedule prefix, checkpoint), shallowest first
        self._checkpoints: list[
            tuple[tuple[ProcessId, ...], ExecutorCheckpoint]
        ] = []

    # -- executor management -------------------------------------------

    def _shared_system(self) -> System:
        """One system instance serves every replay executor: systems are
        immutable during execution (all run state lives in the executor)
        and histories are pure functions of (process, time), so replays
        observe identical behaviour while skipping the per-replay
        system construction."""
        if self._system is None:
            self._system = self.system_builder()
        return self._system

    def _fresh_executor(self) -> Executor:
        return Executor(
            self._shared_system(),
            self._scheduler,
            max_steps=self.max_depth + 1,
            record_results=True,
            record_ops=self.symmetry,
        )

    def _maybe_checkpoint(
        self, schedule: tuple[ProcessId, ...], executor: Executor
    ) -> None:
        depth = len(schedule)
        if depth and depth % self.checkpoint_stride == 0:
            if not self._checkpoints or len(self._checkpoints[-1][0]) < depth:
                self._checkpoints.append((schedule, executor.checkpoint()))

    def _executor_for(
        self,
        schedule: tuple[ProcessId, ...],
        parent: tuple[ProcessId, ...] | None = None,
    ) -> Executor:
        # Fast path: descending one step from the node just visited.
        # ``parent`` is the caller's own schedule *object*; the identity
        # check is O(1) and can only under-approximate (an equal tuple
        # that is a different object falls through to the replay path).
        if (
            parent is not None
            and self.current_schedule is parent
            and self._current is not None
        ):
            executor = self._current
            executor.step_trusted(schedule[-1])
            self.current_schedule = schedule
            self._maybe_checkpoint(schedule, executor)
            return executor
        # Backtrack: drop checkpoints that are not a prefix of the
        # target, restore the deepest surviving one, replay the suffix.
        while self._checkpoints:
            prefix, _ = self._checkpoints[-1]
            if schedule[: len(prefix)] == prefix:
                break
            self._checkpoints.pop()
        if self._checkpoints:
            prefix, checkpoint = self._checkpoints[-1]
            executor = Executor.restore(
                self._shared_system(),
                self._scheduler,
                checkpoint,
                max_steps=self.max_depth + 1,
            )
            replay_from = len(prefix)
        else:
            executor = self._fresh_executor()
            replay_from = 0
        for depth in range(replay_from, len(schedule)):
            executor.step_trusted(schedule[depth])
            self._maybe_checkpoint(schedule[: depth + 1], executor)
        self.current_schedule = schedule
        self._current = executor
        return executor

    def _branches(
        self, executor: Executor, report: "ExplorationReport"
    ) -> Sequence[ProcessId]:
        candidates = executor.schedulable()
        if self.candidate_filter is not None:
            candidates = tuple(self.candidate_filter(executor, candidates))
        if self._orbits:
            kept = prune_interchangeable(executor, self._orbits, candidates)
            report.symmetry_pruned += len(candidates) - len(kept)
            candidates = kept
        return candidates

    # -- exploration ----------------------------------------------------

    def request_interrupt(self) -> None:
        """Ask a running :meth:`check` to stop before its next node
        (and checkpoint, if a checkpoint path was given).  Safe to call
        from signal handlers or from inside the verdict callback."""
        self._interrupt = True

    def _knobs(self) -> dict:
        return {name: getattr(self, name) for name in _KNOB_NAMES}

    def _save_checkpoint(
        self,
        path: str,
        report: ExplorationReport,
        stack: list,
        seen: dict | None,
    ) -> None:
        # Stack entries carry a parent schedule reference used only for
        # an identity fast path; it never survives a restore, so strip
        # it (pickling it would deep-copy shared prefixes anyway).
        payload = {
            "format": EXPLORER_CHECKPOINT_FORMAT,
            "version": EXPLORER_CHECKPOINT_VERSION,
            "knobs": self._knobs(),
            "report": report,
            "frontier": [(schedule, sleep) for schedule, sleep, _ in stack],
            "seen": seen,
        }
        atomic_write_bytes(path, pickle.dumps(payload, protocol=4))

    def _load_checkpoint(
        self, path: str
    ) -> tuple[ExplorationReport, list, dict | None]:
        try:
            payload = pickle.loads(open(path, "rb").read())
        except OSError as exc:
            raise ResilienceError(
                f"cannot read explorer checkpoint {path}: {exc}"
            ) from exc
        if payload.get("format") != EXPLORER_CHECKPOINT_FORMAT:
            raise ResilienceError(
                f"{path}: not an {EXPLORER_CHECKPOINT_FORMAT} file"
            )
        if payload.get("version") != EXPLORER_CHECKPOINT_VERSION:
            raise ResilienceError(
                f"{path}: unsupported checkpoint version "
                f"{payload.get('version')!r}"
            )
        if payload["knobs"] != self._knobs():
            raise ResilienceError(
                f"{path}: checkpoint was taken with different explorer "
                f"knobs {payload['knobs']} (this explorer: "
                f"{self._knobs()})"
            )
        stack = [
            (schedule, sleep, None)
            for schedule, sleep in payload["frontier"]
        ]
        return payload["report"], stack, payload["seen"]

    def check(
        self,
        verdict: Callable[[Executor], bool | None],
        *,
        deadline_s: float | None = None,
        checkpoint_path: str | None = None,
        resume_from: str | None = None,
        handle_signals: bool = False,
    ) -> ExplorationReport:
        """Explore; ``verdict`` is called at every node and must return
        ``True`` (fine so far), ``False`` (violation — recorded, branch
        pruned), or ``None`` (finished successfully — e.g. everyone
        decided; branch ends).

        ``deadline_s`` bounds wall-clock time; at expiry (or after
        :meth:`request_interrupt`, or SIGINT/SIGTERM when
        ``handle_signals`` is true) the exploration stops, writes its
        frontier to ``checkpoint_path`` (if given), and returns a
        report with ``interrupted=True``.  ``resume_from`` restores a
        previous checkpoint and continues exactly — the verdict
        callback must be semantically identical across the runs, and
        ``system_builder`` must rebuild the same system (both hold for
        all built-in verdicts/systems, which are pure functions of
        their specs)."""
        report = ExplorationReport()
        seen: dict[bytes, list[frozenset]] | None = (
            {} if self.dedup else None
        )
        #: frontier entries: (schedule, sleep set, parent schedule ref)
        stack: list = [((), frozenset(), None)]
        if resume_from is not None:
            report, stack, seen = self._load_checkpoint(resume_from)
            report.interrupted = False
            report.checkpoint_path = None
        self.current_schedule = ()
        self._current = None
        self._system = None
        self._checkpoints = []
        self._interrupt = False
        self._orbits = (
            c_orbits(self._shared_system()) if self.symmetry else ()
        )
        deadline_at = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        restore: list[tuple[int, object]] = []
        if handle_signals:

            def _on_signal(signum, frame):  # pragma: no cover - signal
                self._interrupt = True

            for signum in (_signal.SIGINT, _signal.SIGTERM):
                try:
                    restore.append(
                        (signum, _signal.signal(signum, _on_signal))
                    )
                except ValueError:  # not the main thread
                    break
        try:
            self._explore_frontier(
                stack, verdict, report, seen, deadline_at, checkpoint_path
            )
        finally:
            for signum, previous in restore:
                _signal.signal(signum, previous)
        return report

    def _fingerprint(self, executor: Executor) -> bytes:
        if self._orbits:
            return canonical_fingerprint(executor, self._orbits)
        return executor.fingerprint()

    def _seen_covers(
        self,
        seen: dict[bytes, list[frozenset]],
        fingerprint: bytes,
        sleep: frozenset,
    ) -> bool:
        """Whether an earlier visit of this state makes the current one
        redundant, recording the current visit otherwise.  Without POR
        every sleep set is empty and this degenerates to plain set
        membership; with POR a prior visit only covers this one if its
        sleep set was a subset (it explored at least as much)."""
        prior = seen.get(fingerprint)
        if prior is None:
            seen[fingerprint] = [sleep]
            return False
        if any(s <= sleep for s in prior):
            return True
        # Keep the frontier minimal: drop recorded visits this one
        # strictly dominates.
        prior[:] = [s for s in prior if not sleep < s]
        prior.append(sleep)
        return False

    def _explore_frontier(
        self,
        stack: list,
        verdict: Callable[[Executor], bool | None],
        report: ExplorationReport,
        seen: dict[bytes, list[frozenset]] | None,
        deadline_at: float | None,
        checkpoint_path: str | None,
    ) -> None:
        """DFS over an explicit frontier stack.

        Children are pushed in reverse so pops visit them in sibling
        order — node for node the same sequence the recursive DFS
        visited, which keeps every report counter (and the dedup/sleep
        interactions that depend on visit order) exactly reproducible
        across interrupt/resume.  Interrupts are honoured *between*
        nodes, before the next pop, so the saved frontier plus the
        counters so far is a complete description of the remaining
        work.
        """
        while stack:
            if self._interrupt or (
                deadline_at is not None
                and time.monotonic() >= deadline_at
            ):
                report.interrupted = True
                if checkpoint_path is not None:
                    self._save_checkpoint(
                        checkpoint_path, report, stack, seen
                    )
                    report.checkpoint_path = checkpoint_path
                return
            if (
                report.completed_runs + report.truncated_runs
                >= self.max_runs
            ):
                return
            schedule, sleep, parent = stack.pop()
            executor = self._executor_for(schedule, parent)
            if seen is not None:
                if self._seen_covers(
                    seen, self._fingerprint(executor), sleep
                ):
                    report.deduplicated += 1
                    continue
            report.explored += 1
            outcome = verdict(executor)
            if outcome is False:
                report.violations.append(
                    (schedule, executor.result("violation"))
                )
                continue
            if outcome is None:
                report.completed_runs += 1
                continue
            if len(schedule) >= self.max_depth:
                report.truncated_runs += 1
                continue
            branches = self._branches(executor, report)
            if not branches:
                report.completed_runs += 1
                continue
            children: list = []
            if self.por and not executor.crashes_pending():
                # Footprints must be taken *now*, while the executor
                # still holds this node's state: it is shared down the
                # DFS and will have mutated by the time a sibling is
                # popped.
                footprints: dict[ProcessId, StepFootprint] = {
                    pid: step_footprint(executor, pid)
                    for pid in {*branches, *sleep}
                }
                taken: list[ProcessId] = []
                for pid in branches:
                    if pid in sleep:
                        report.por_pruned += 1
                        continue
                    pid_fp = footprints[pid]
                    child_sleep = frozenset(
                        t
                        for t in sleep.union(taken)
                        if commutes(footprints[t], pid_fp)
                    )
                    children.append(
                        (schedule + (pid,), child_sleep, schedule)
                    )
                    taken.append(pid)
            else:
                # No POR here (disabled, or crash transitions pending —
                # everything is dependent, so all sleepers wake).
                for pid in branches:
                    children.append(
                        (schedule + (pid,), frozenset(), schedule)
                    )
            stack.extend(reversed(children))


def drop_null_s_processes(executor: Executor, candidates):
    """Candidate filter: skip S-processes (restricted algorithms only —
    their null steps cannot affect any property)."""
    return tuple(pid for pid in candidates if pid.is_computation)


def concurrency_gate(k: int):
    """Candidate filter imposing the k-concurrency arrival rule."""

    def gate(executor: Executor, candidates):
        undecided = executor.started_c - executor.decided_c
        room = len(undecided) < k
        kept = []
        for pid in candidates:
            if not pid.is_computation or pid.index in executor.started_c:
                kept.append(pid)
            elif room:
                kept.append(pid)
        return tuple(kept)

    return gate


def task_safety_verdict(task):
    """Standard verdict: fail on a Delta violation, finish when all
    participants decided.

    The verdict is a pure function of ``(system inputs, started set,
    decided vector)`` — all of which change on only a handful of the
    steps in a run — so outcomes are memoized on that key.  During
    exhaustive exploration the overwhelming majority of nodes hit the
    cache and never reach ``task.allows``.
    """

    _miss = object()
    cache: dict = {}

    def verdict(executor: Executor):
        started = executor.started_c
        key = (executor.system.inputs, started, executor.decided_vector())
        outcome = cache.get(key, _miss)
        if outcome is not _miss:
            return outcome
        outputs = key[2]
        inputs = tuple(
            v if i in started else None
            for i, v in enumerate(executor.system.inputs)
        )
        if any(v is not None for v in inputs) and not task.allows(
            inputs, outputs
        ):
            outcome = False
        elif executor.system.participants <= executor.decided_c:
            outcome = None
        else:
            outcome = True
        cache[key] = outcome
        return outcome

    return verdict
