"""Exhaustive schedule exploration of small systems.

For tiny process counts and bounded depth, *every* interleaving of a
system can be enumerated, turning "for all schedules" claims (task
safety, k-concurrency bounds) into machine-checked facts rather than
sampled evidence.  The classifier and several integration tests use
this to certify the upper-bound algorithms on small instances.

Exploration is a DFS over the executor's ``schedulable()`` sets.  Since
executors cannot be forked (automata are live generators), the explorer
re-executes prefixes deterministically, with an incremental fast path
when the DFS descends (the common case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.process import ProcessId
from ..core.system import System
from ..runtime.executor import Executor
from ..runtime.scheduler import ExplicitScheduler


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration."""

    explored: int = 0
    completed_runs: int = 0
    truncated_runs: int = 0
    violations: list[tuple[tuple[ProcessId, ...], object]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.violations


class ScheduleExplorer:
    """Enumerate all interleavings of a (small) system up to a depth.

    Args:
        system_builder: creates a fresh, identical system per replay
            (systems are deterministic given their seed).
        max_depth: schedule-length bound.
        candidate_filter: optional narrowing of the schedulable set
            (e.g. drop null-stepping S-processes, or impose the
            k-concurrency gate); receives the executor and the candidate
            tuple, returns the candidates to branch on.
        max_runs: hard cap on completed+truncated runs (safety valve).
    """

    def __init__(
        self,
        system_builder: Callable[[], System],
        *,
        max_depth: int,
        candidate_filter: Callable | None = None,
        max_runs: int = 200_000,
    ) -> None:
        self.system_builder = system_builder
        self.max_depth = max_depth
        self.candidate_filter = candidate_filter
        self.max_runs = max_runs
        self._cache: tuple[tuple[ProcessId, ...], Executor] | None = None

    def _executor_for(self, schedule: tuple[ProcessId, ...]) -> Executor:
        if self._cache is not None:
            prefix, executor = self._cache
            if len(schedule) == len(prefix) + 1 and schedule[:-1] == prefix:
                executor.step(schedule[-1])
                self._cache = (schedule, executor)
                return executor
        executor = Executor(
            self.system_builder(),
            ExplicitScheduler([], strict=False),
            max_steps=self.max_depth + 1,
        )
        for pid in schedule:
            executor.step(pid)
        self._cache = (schedule, executor)
        return executor

    def _branches(self, executor: Executor) -> Sequence[ProcessId]:
        candidates = executor.schedulable()
        if self.candidate_filter is not None:
            candidates = tuple(self.candidate_filter(executor, candidates))
        return candidates

    def check(
        self, verdict: Callable[[Executor], bool | None]
    ) -> ExplorationReport:
        """Explore; ``verdict`` is called at every node and must return
        ``True`` (fine so far), ``False`` (violation — recorded, branch
        pruned), or ``None`` (finished successfully — e.g. everyone
        decided; branch ends)."""
        report = ExplorationReport()
        self._explore((), verdict, report)
        return report

    def _explore(
        self,
        schedule: tuple[ProcessId, ...],
        verdict: Callable[[Executor], bool | None],
        report: ExplorationReport,
    ) -> None:
        if report.completed_runs + report.truncated_runs >= self.max_runs:
            return
        executor = self._executor_for(schedule)
        report.explored += 1
        outcome = verdict(executor)
        if outcome is False:
            report.violations.append(
                (schedule, executor._result("violation"))
            )
            return
        if outcome is None:
            report.completed_runs += 1
            return
        if len(schedule) >= self.max_depth:
            report.truncated_runs += 1
            return
        branches = self._branches(executor)
        if not branches:
            report.completed_runs += 1
            return
        for pid in branches:
            self._explore(schedule + (pid,), verdict, report)


def drop_null_s_processes(executor: Executor, candidates):
    """Candidate filter: skip S-processes (restricted algorithms only —
    their null steps cannot affect any property)."""
    return tuple(pid for pid in candidates if pid.is_computation)


def concurrency_gate(k: int):
    """Candidate filter imposing the k-concurrency arrival rule."""

    def gate(executor: Executor, candidates):
        undecided = executor.started_c - executor.decided_c
        room = len(undecided) < k
        kept = []
        for pid in candidates:
            if not pid.is_computation or pid.index in executor.started_c:
                kept.append(pid)
            elif room:
                kept.append(pid)
        return tuple(kept)

    return gate


def task_safety_verdict(task):
    """Standard verdict: fail on a Delta violation, finish when all
    participants decided."""

    def verdict(executor: Executor):
        outputs = tuple(
            executor.decisions.get(i)
            for i in range(executor.system.n_c)
        )
        inputs = tuple(
            v if i in executor.started_c else None
            for i, v in enumerate(executor.system.inputs)
        )
        if any(v is not None for v in inputs) and not task.allows(
            inputs, outputs
        ):
            return False
        if executor.system.participants <= executor.decided_c:
            return None
        return True

    return verdict
