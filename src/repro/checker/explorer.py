"""Exhaustive schedule exploration of small systems.

For tiny process counts and bounded depth, *every* interleaving of a
system can be enumerated, turning "for all schedules" claims (task
safety, k-concurrency bounds) into machine-checked facts rather than
sampled evidence.  The classifier and several integration tests use
this to certify the upper-bound algorithms on small instances.

Exploration is a DFS over the executor's ``schedulable()`` sets.  Since
executors cannot be forked (automata are live generators), backtracking
has to re-establish prefix state.  The explorer keeps a *checkpoint
stack*: every ``checkpoint_stride`` levels of descent it captures the
executor (copy-on-write register snapshot + per-process result logs,
see :meth:`~repro.runtime.executor.Executor.checkpoint`), and sibling
expansion restores the deepest checkpoint on the target path and
replays only the suffix — instead of rebuilding the system and
replaying the whole prefix, which made backtracking O(depth²).

Optional state-fingerprint deduplication (``dedup=True``) prunes
interleavings that reach an execution state already explored at the
same depth (symmetric interleavings of independent operations).  It is
off by default because it changes the reported node counts; violations
found are the same either way, since a deduplicated state has an
identical future to its first occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.process import ProcessId
from ..core.system import System
from ..runtime.executor import Executor, ExecutorCheckpoint
from ..runtime.scheduler import ExplicitScheduler


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration."""

    explored: int = 0
    completed_runs: int = 0
    truncated_runs: int = 0
    deduplicated: int = 0
    violations: list[tuple[tuple[ProcessId, ...], object]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.violations


class ScheduleExplorer:
    """Enumerate all interleavings of a (small) system up to a depth.

    Args:
        system_builder: creates a fresh, identical system per replay
            (systems are deterministic given their seed).
        max_depth: schedule-length bound.
        candidate_filter: optional narrowing of the schedulable set
            (e.g. drop null-stepping S-processes, or impose the
            k-concurrency gate); receives the executor and the candidate
            tuple, returns the candidates to branch on.
        max_runs: hard cap on completed+truncated runs (safety valve).
        checkpoint_stride: take an executor checkpoint every this many
            levels of descent; sibling expansion replays at most this
            many suffix steps on top of a cheap restore.
        dedup: prune states whose fingerprint was already explored
            (opt-in; changes node counts, never the verdict).
    """

    def __init__(
        self,
        system_builder: Callable[[], System],
        *,
        max_depth: int,
        candidate_filter: Callable | None = None,
        max_runs: int = 200_000,
        checkpoint_stride: int = 4,
        dedup: bool = False,
    ) -> None:
        if checkpoint_stride < 1:
            raise ValueError("checkpoint_stride must be >= 1")
        self.system_builder = system_builder
        self.max_depth = max_depth
        self.candidate_filter = candidate_filter
        self.max_runs = max_runs
        self.checkpoint_stride = checkpoint_stride
        self.dedup = dedup
        #: schedule prefix of the executor most recently produced by
        #: :meth:`_executor_for` (the node currently being visited).
        self.current_schedule: tuple[ProcessId, ...] = ()
        self._current: Executor | None = None
        self._system: System | None = None
        # Replay executors are driven via step_trusted and never consult
        # their scheduler, so a single inert one serves them all.
        self._scheduler = ExplicitScheduler([], strict=False)
        #: stack of (schedule prefix, checkpoint), shallowest first
        self._checkpoints: list[
            tuple[tuple[ProcessId, ...], ExecutorCheckpoint]
        ] = []

    # -- executor management -------------------------------------------

    def _shared_system(self) -> System:
        """One system instance serves every replay executor: systems are
        immutable during execution (all run state lives in the executor)
        and histories are pure functions of (process, time), so replays
        observe identical behaviour while skipping the per-replay
        system construction."""
        if self._system is None:
            self._system = self.system_builder()
        return self._system

    def _fresh_executor(self) -> Executor:
        return Executor(
            self._shared_system(),
            self._scheduler,
            max_steps=self.max_depth + 1,
            record_results=True,
        )

    def _maybe_checkpoint(
        self, schedule: tuple[ProcessId, ...], executor: Executor
    ) -> None:
        depth = len(schedule)
        if depth and depth % self.checkpoint_stride == 0:
            if not self._checkpoints or len(self._checkpoints[-1][0]) < depth:
                self._checkpoints.append((schedule, executor.checkpoint()))

    def _executor_for(
        self,
        schedule: tuple[ProcessId, ...],
        parent: tuple[ProcessId, ...] | None = None,
    ) -> Executor:
        # Fast path: descending one step from the node just visited.
        # ``parent`` is the caller's own schedule *object*; the identity
        # check is O(1) and can only under-approximate (an equal tuple
        # that is a different object falls through to the replay path).
        if (
            parent is not None
            and self.current_schedule is parent
            and self._current is not None
        ):
            executor = self._current
            executor.step_trusted(schedule[-1])
            self.current_schedule = schedule
            self._maybe_checkpoint(schedule, executor)
            return executor
        # Backtrack: drop checkpoints that are not a prefix of the
        # target, restore the deepest surviving one, replay the suffix.
        while self._checkpoints:
            prefix, _ = self._checkpoints[-1]
            if schedule[: len(prefix)] == prefix:
                break
            self._checkpoints.pop()
        if self._checkpoints:
            prefix, checkpoint = self._checkpoints[-1]
            executor = Executor.restore(
                self._shared_system(),
                self._scheduler,
                checkpoint,
                max_steps=self.max_depth + 1,
            )
            replay_from = len(prefix)
        else:
            executor = self._fresh_executor()
            replay_from = 0
        for depth in range(replay_from, len(schedule)):
            executor.step_trusted(schedule[depth])
            self._maybe_checkpoint(schedule[: depth + 1], executor)
        self.current_schedule = schedule
        self._current = executor
        return executor

    def _branches(self, executor: Executor) -> Sequence[ProcessId]:
        candidates = executor.schedulable()
        if self.candidate_filter is not None:
            candidates = tuple(self.candidate_filter(executor, candidates))
        return candidates

    # -- exploration ----------------------------------------------------

    def check(
        self, verdict: Callable[[Executor], bool | None]
    ) -> ExplorationReport:
        """Explore; ``verdict`` is called at every node and must return
        ``True`` (fine so far), ``False`` (violation — recorded, branch
        pruned), or ``None`` (finished successfully — e.g. everyone
        decided; branch ends)."""
        report = ExplorationReport()
        seen: set[bytes] | None = set() if self.dedup else None
        self.current_schedule = ()
        self._current = None
        self._system = None
        self._checkpoints = []
        self._explore((), verdict, report, seen)
        return report

    def _explore(
        self,
        schedule: tuple[ProcessId, ...],
        verdict: Callable[[Executor], bool | None],
        report: ExplorationReport,
        seen: set[bytes] | None,
        parent: tuple[ProcessId, ...] | None = None,
    ) -> None:
        if report.completed_runs + report.truncated_runs >= self.max_runs:
            return
        executor = self._executor_for(schedule, parent)
        if seen is not None:
            fingerprint = executor.fingerprint()
            if fingerprint in seen:
                report.deduplicated += 1
                return
            seen.add(fingerprint)
        report.explored += 1
        outcome = verdict(executor)
        if outcome is False:
            report.violations.append(
                (schedule, executor.result("violation"))
            )
            return
        if outcome is None:
            report.completed_runs += 1
            return
        if len(schedule) >= self.max_depth:
            report.truncated_runs += 1
            return
        branches = self._branches(executor)
        if not branches:
            report.completed_runs += 1
            return
        for pid in branches:
            self._explore(schedule + (pid,), verdict, report, seen, schedule)


def drop_null_s_processes(executor: Executor, candidates):
    """Candidate filter: skip S-processes (restricted algorithms only —
    their null steps cannot affect any property)."""
    return tuple(pid for pid in candidates if pid.is_computation)


def concurrency_gate(k: int):
    """Candidate filter imposing the k-concurrency arrival rule."""

    def gate(executor: Executor, candidates):
        undecided = executor.started_c - executor.decided_c
        room = len(undecided) < k
        kept = []
        for pid in candidates:
            if not pid.is_computation or pid.index in executor.started_c:
                kept.append(pid)
            elif room:
                kept.append(pid)
        return tuple(kept)

    return gate


def task_safety_verdict(task):
    """Standard verdict: fail on a Delta violation, finish when all
    participants decided.

    The verdict is a pure function of ``(system inputs, started set,
    decided vector)`` — all of which change on only a handful of the
    steps in a run — so outcomes are memoized on that key.  During
    exhaustive exploration the overwhelming majority of nodes hit the
    cache and never reach ``task.allows``.
    """

    _miss = object()
    cache: dict = {}

    def verdict(executor: Executor):
        started = executor.started_c
        key = (executor.system.inputs, started, executor.decided_vector())
        outcome = cache.get(key, _miss)
        if outcome is not _miss:
            return outcome
        outputs = key[2]
        inputs = tuple(
            v if i in started else None
            for i, v in enumerate(executor.system.inputs)
        )
        if any(v is not None for v in inputs) and not task.allows(
            inputs, outputs
        ):
            outcome = False
        elif executor.system.participants <= executor.decided_c:
            outcome = None
        else:
            outcome = True
        cache[key] = outcome
        return outcome

    return verdict
