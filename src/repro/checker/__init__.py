"""Operational model checking: exhaustive schedules and valency."""

from .bivalence import ValencyReport, analyze_valency
from .explorer import (
    EXPLORER_CHECKPOINT_FORMAT,
    EXPLORER_CHECKPOINT_VERSION,
    ExplorationReport,
    ScheduleExplorer,
    concurrency_gate,
    drop_null_s_processes,
    task_safety_verdict,
)
from .independence import (
    StepFootprint,
    commutes,
    independent,
    op_footprint,
    step_footprint,
)
from .symmetry import c_orbits, canonical_fingerprint, prune_interchangeable

__all__ = [
    "ValencyReport",
    "analyze_valency",
    "EXPLORER_CHECKPOINT_FORMAT",
    "EXPLORER_CHECKPOINT_VERSION",
    "ExplorationReport",
    "ScheduleExplorer",
    "concurrency_gate",
    "drop_null_s_processes",
    "task_safety_verdict",
    "StepFootprint",
    "op_footprint",
    "commutes",
    "independent",
    "step_footprint",
    "c_orbits",
    "canonical_fingerprint",
    "prune_interchangeable",
]
