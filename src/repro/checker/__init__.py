"""Operational model checking: exhaustive schedules and valency."""

from .bivalence import ValencyReport, analyze_valency
from .explorer import (
    ExplorationReport,
    ScheduleExplorer,
    concurrency_gate,
    drop_null_s_processes,
    task_safety_verdict,
)

__all__ = [
    "ValencyReport",
    "analyze_valency",
    "ExplorationReport",
    "ScheduleExplorer",
    "concurrency_gate",
    "drop_null_s_processes",
    "task_safety_verdict",
]
