"""Top-level convenience API.

These helpers wrap the most common workflow — "solve this task in the
EFD model with this detector and show me the run" — around the generic
Theorem 9 solver and the executor.  Power users assemble
:class:`~repro.core.system.System` objects directly.
"""

from __future__ import annotations

from typing import Any

from .core.failures import FailurePattern
from .core.run import RunResult
from .core.task import Task, Vector
from .errors import SpecificationError


def solve_task(
    task: Task,
    *,
    detector: Any,
    inputs: Vector | None = None,
    pattern: FailurePattern | None = None,
    scheduler: Any = None,
    seed: int = 0,
    max_steps: int = 400_000,
    trace: bool = False,
    check: bool = True,
) -> RunResult:
    """Solve ``task`` in the EFD model using ``detector`` as advice.

    Dispatches to the generic solver of Theorem 9: the task is solved
    with ``anti-Omega-k``-strength advice (supplied here in its
    equivalent vector form) whenever the task is k-concurrently solvable
    and the detector is at least that strong.  For the built-in tasks the
    right k-concurrent algorithm is selected automatically.

    Args:
        task: the task to solve.
        detector: a failure detector instance (e.g.
            :class:`~repro.detectors.VectorOmegaK`).
        inputs: input vector; defaults to a canonical full-participation
            vector for the task.
        pattern: failure pattern; defaults to failure-free.
        scheduler: defaults to a seeded-random scheduler.
        seed: seed for the scheduler and detector history.
        max_steps: liveness budget.
        trace: record a full execution trace on the result.
        check: verify safety and wait-freedom before returning.

    Returns:
        The run result; ``result.outputs`` is the output vector.
    """
    from .algorithms.dispatch import solve_with_detector

    return solve_with_detector(
        task,
        detector=detector,
        inputs=inputs,
        pattern=pattern,
        scheduler=scheduler,
        seed=seed,
        max_steps=max_steps,
        trace=trace,
        check=check,
    )


def verify_run(
    result: RunResult,
    task: Task,
    *,
    strict: bool = False,
    exhaustive: bool = False,
    factories: Any = None,
    concurrency: int | None = None,
    max_depth: int = 14,
    max_runs: int = 200_000,
    checkpoint_stride: int = 4,
    dedup: bool = False,
    por: bool = False,
    symmetry: bool = False,
    deadline_s: float | None = None,
    checkpoint_path: str | None = None,
    resume_from: str | None = None,
) -> RunResult:
    """Verify one run against ``task`` (wait-freedom + task relation);
    returns the result for chaining.

    ``strict=True`` additionally requires a traced, hazard-free run
    (see :func:`repro.analysis.verify.verify_run`).

    ``exhaustive=True`` hardens the spot check into a certificate: the
    run's input vector is re-explored over *every*
    ``concurrency``-concurrent interleaving (up to ``max_depth``) of
    the restricted algorithm ``factories``, raising
    :class:`~repro.errors.SafetyViolation` if any interleaving leaves
    the task relation.  The remaining keywords are the
    :class:`~repro.checker.explorer.ScheduleExplorer` knobs:
    ``checkpoint_stride`` trades checkpoint memory against replay
    work, while ``dedup`` / ``por`` / ``symmetry`` are the opt-in
    state, partial-order, and process-symmetry reductions (they change
    node counts, never the verdict).

    ``deadline_s`` bounds the exhaustive exploration's wall-clock time.
    A certificate is all-or-nothing, so hitting the deadline raises
    :class:`~repro.errors.ExplorationInterrupted` rather than returning
    a partial "ok"; when ``checkpoint_path`` is given the frontier is
    saved there first and the exception carries the path, so a later
    call with ``resume_from`` finishes the certificate without
    re-exploring.
    """
    from .analysis.verify import verify_run as _verify

    _verify(result, task, strict=strict)
    if exhaustive:
        if factories is None or concurrency is None:
            raise SpecificationError(
                "exhaustive verification needs the restricted algorithm "
                "(factories=...) and its concurrency level "
                "(concurrency=...)"
            )
        from .classify import explore_k_concurrent
        from .errors import ExplorationInterrupted, SafetyViolation

        report = explore_k_concurrent(
            task,
            factories,
            concurrency,
            result.inputs,
            max_depth=max_depth,
            max_runs=max_runs,
            checkpoint_stride=checkpoint_stride,
            dedup=dedup,
            por=por,
            symmetry=symmetry,
            deadline_s=deadline_s,
            checkpoint_path=checkpoint_path,
            resume_from=resume_from,
        )
        if report.interrupted:
            where = (
                f"; frontier saved to {report.checkpoint_path} "
                "(pass resume_from=... to continue)"
                if report.checkpoint_path
                else ""
            )
            raise ExplorationInterrupted(
                f"exhaustive verification stopped after "
                f"{report.explored} nodes{where}",
                checkpoint_path=report.checkpoint_path,
            )
        if not report.ok:
            schedule, _ = report.violations[0]
            raise SafetyViolation(
                f"{len(report.violations)} interleaving(s) violate "
                f"{task.name}; first witness schedule: "
                f"{[str(pid) for pid in schedule]}"
            )
    return result


def solve_task_restricted(
    task: Task,
    *,
    inputs: Vector | None = None,
    concurrency: int = 1,
    scheduler: Any = None,
    seed: int = 0,
    max_steps: int = 200_000,
    check: bool = True,
) -> RunResult:
    """Solve ``task`` with a *restricted* algorithm (no detector, null
    S-processes) in a ``concurrency``-concurrent run.

    With ``concurrency=1`` this always succeeds (Proposition 1).  Larger
    values require the task to be solvable at that concurrency level and
    a suitable built-in algorithm to exist.
    """
    from .algorithms.dispatch import solve_restricted

    return solve_restricted(
        task,
        inputs=inputs,
        concurrency=concurrency,
        scheduler=scheduler,
        seed=seed,
        max_steps=max_steps,
        check=check,
    )
