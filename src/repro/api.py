"""Top-level convenience API.

These helpers wrap the most common workflow — "solve this task in the
EFD model with this detector and show me the run" — around the generic
Theorem 9 solver and the executor.  Power users assemble
:class:`~repro.core.system.System` objects directly.
"""

from __future__ import annotations

from typing import Any

from .core.failures import FailurePattern
from .core.run import RunResult
from .core.task import Task, Vector


def solve_task(
    task: Task,
    *,
    detector: Any,
    inputs: Vector | None = None,
    pattern: FailurePattern | None = None,
    scheduler: Any = None,
    seed: int = 0,
    max_steps: int = 400_000,
    trace: bool = False,
    check: bool = True,
) -> RunResult:
    """Solve ``task`` in the EFD model using ``detector`` as advice.

    Dispatches to the generic solver of Theorem 9: the task is solved
    with ``anti-Omega-k``-strength advice (supplied here in its
    equivalent vector form) whenever the task is k-concurrently solvable
    and the detector is at least that strong.  For the built-in tasks the
    right k-concurrent algorithm is selected automatically.

    Args:
        task: the task to solve.
        detector: a failure detector instance (e.g.
            :class:`~repro.detectors.VectorOmegaK`).
        inputs: input vector; defaults to a canonical full-participation
            vector for the task.
        pattern: failure pattern; defaults to failure-free.
        scheduler: defaults to a seeded-random scheduler.
        seed: seed for the scheduler and detector history.
        max_steps: liveness budget.
        trace: record a full execution trace on the result.
        check: verify safety and wait-freedom before returning.

    Returns:
        The run result; ``result.outputs`` is the output vector.
    """
    from .algorithms.dispatch import solve_with_detector

    return solve_with_detector(
        task,
        detector=detector,
        inputs=inputs,
        pattern=pattern,
        scheduler=scheduler,
        seed=seed,
        max_steps=max_steps,
        trace=trace,
        check=check,
    )


def solve_task_restricted(
    task: Task,
    *,
    inputs: Vector | None = None,
    concurrency: int = 1,
    scheduler: Any = None,
    seed: int = 0,
    max_steps: int = 200_000,
    check: bool = True,
) -> RunResult:
    """Solve ``task`` with a *restricted* algorithm (no detector, null
    S-processes) in a ``concurrency``-concurrent run.

    With ``concurrency=1`` this always succeeds (Proposition 1).  Larger
    values require the task to be solvable at that concurrency level and
    a suitable built-in algorithm to exist.
    """
    from .algorithms.dispatch import solve_restricted

    return solve_restricted(
        task,
        inputs=inputs,
        concurrency=concurrency,
        scheduler=scheduler,
        seed=seed,
        max_steps=max_steps,
        check=check,
    )
