"""One-shot immediate snapshot (Borowsky-Gafni [6]).

The immediate-snapshot object is the combinatorial heart of the BG
toolbox: each participant writes a value and obtains a *view* (a set of
(process, value) pairs) such that

* **self-inclusion** — a process's view contains its own value;
* **containment** — any two views are ordered by inclusion;
* **immediacy** — if ``j`` is in ``i``'s view then ``j``'s view is
  contained in ``i``'s.

Views of an n-process immediate snapshot are exactly the vertices of
the standard chromatic subdivision (:mod:`repro.topology.subdivision`),
which is why the one-round 2-process protocol complex is the 3-edge
path — the link the property tests in ``tests/memory`` check
explicitly.

Implementation: the classic level-descent algorithm.  Every process
starts at level ``n``; at level ``l`` it publishes ``(l, value)``,
snapshots all cells, and if exactly ``l`` processes sit at levels
``<= l`` it returns their values as its view, otherwise it descends to
``l - 1``.
"""

from __future__ import annotations

from typing import Any

from ..errors import SpecificationError
from ..runtime import ops


class ImmediateSnapshot:
    """A one-shot immediate-snapshot object for ``n`` participants.

    ``participate`` is a subroutine generator (compose with
    ``yield from``); each index may participate at most once.
    """

    def __init__(self, name: str, n: int) -> None:
        if n < 1:
            raise SpecificationError(f"need n >= 1, got {n}")
        self.name = name
        self.n = n

    def _cell(self, index: int) -> str:
        return f"{self.name}/lvl/{index}"

    def participate(self, index: int, value: Any):
        """Write ``value`` and return this process's view
        (dict: participant index -> value)."""
        if not 0 <= index < self.n:
            raise SpecificationError(f"index {index} out of range")
        level = self.n
        while True:
            yield ops.Write(self._cell(index), (level, value))
            cells = yield ops.Snapshot(f"{self.name}/lvl/")
            at_or_below = {
                int(register[len(f"{self.name}/lvl/"):]): cell
                for register, cell in cells.items()
                if cell[0] <= level
            }
            if len(at_or_below) == level:
                return {i: cell[1] for i, cell in at_or_below.items()}
            level -= 1


def check_immediate_snapshot_views(views: dict[int, dict[int, Any]]) -> None:
    """Assert the three immediate-snapshot properties; raises
    :class:`~repro.errors.SpecificationError` on violation.

    ``views`` maps each participant to the view it obtained.
    """
    for i, view in views.items():
        if i not in view:
            raise SpecificationError(f"view of {i} misses itself: {view}")
    items = list(views.items())
    for i, view_i in items:
        for j, view_j in items:
            keys_i, keys_j = set(view_i), set(view_j)
            if not (keys_i <= keys_j or keys_j <= keys_i):
                raise SpecificationError(
                    f"views of {i} and {j} are incomparable"
                )
            if j in keys_i and not keys_j <= keys_i:
                raise SpecificationError(
                    f"immediacy violated: {j} in view of {i} but "
                    f"view({j}) !<= view({i})"
                )
