"""Atomic snapshot from registers: the bounded-time double collect.

The executor offers a modeled atomic :class:`~repro.runtime.ops.Snapshot`
operation, which the paper's algorithms use directly (atomic snapshots
are implementable from registers [4], so this is a standard modeling
shortcut).  This module provides the actual register-only construction —
repeated double collect with embedded-view helping (Afek et al. style) —
both as evidence that the shortcut is sound in our substrate and as a
reusable subroutine for strictly register-only experiments.

Protocol: each writer publishes ``(value, sequence, embedded_view)``.
A scanner repeatedly collects twice; equal collects are a safe snapshot.
A scanner that observes some writer move *twice* adopts that writer's
embedded view, which was itself a safe snapshot taken within the
scanner's interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..runtime import ops
from .collect import collect_array


@dataclass(frozen=True)
class SnapCell:
    """One writer's register content."""

    value: Any
    sequence: int
    embedded: tuple[Any, ...] | None


def _values(cells: list[Optional[SnapCell]]) -> tuple[Any, ...]:
    return tuple(c.value if c is not None else None for c in cells)


class SnapshotObject:
    """A single-writer atomic snapshot object over ``size`` components.

    All methods are subroutine generators (compose with ``yield from``).

    Args:
        name: register-family prefix (each instance must be unique).
        size: number of components; writer ``i`` owns component ``i``.
    """

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.size = size

    def _register(self, i: int) -> str:
        return f"{self.name}/cell/{i}"

    def update(self, index: int, value: Any):
        """Write ``value`` into component ``index`` (owner-only).

        Embeds a fresh scan so that concurrent scanners can borrow it.
        The per-component sequence number lives in shared memory (it is
        read back before each update), so the object instance itself
        holds no hidden state and may be shared freely between automata.
        """
        embedded = yield from self.scan()
        current: Optional[SnapCell] = yield ops.Read(self._register(index))
        sequence = (current.sequence if current is not None else 0) + 1
        yield ops.Write(
            self._register(index),
            SnapCell(value=value, sequence=sequence, embedded=embedded),
        )
        return None

    def scan(self):
        """Atomic snapshot of all components; returns a value tuple."""
        moved: dict[int, int] = {}
        while True:
            first = yield from collect_array(f"{self.name}/cell/", self.size)
            second = yield from collect_array(f"{self.name}/cell/", self.size)
            if first == second:
                return _values(second)
            for i in range(self.size):
                a, b = first[i], second[i]
                a_seq = a.sequence if a is not None else 0
                b_seq = b.sequence if b is not None else 0
                if a_seq != b_seq:
                    moved[i] = moved.get(i, 0) + 1
                    if moved[i] >= 2 and b is not None and b.embedded is not None:
                        # Writer i completed a whole update inside our
                        # interval; its embedded view is linearizable here.
                        return b.embedded


def direct_scan(prefix: str):
    """The modeled-primitive counterpart: one atomic Snapshot step."""
    view = yield ops.Snapshot(prefix)
    return view
