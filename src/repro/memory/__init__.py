"""Shared-memory objects: the register file and derived objects."""

from .collect import collect_array, collect_registers, write_array_entry
from .immediate import ImmediateSnapshot, check_immediate_snapshot_views
from .registers import RegisterFile, apply_operation
from .snapshot import SnapCell, SnapshotObject, direct_scan

__all__ = [
    "collect_array",
    "collect_registers",
    "write_array_entry",
    "ImmediateSnapshot",
    "check_immediate_snapshot_views",
    "RegisterFile",
    "apply_operation",
    "SnapCell",
    "SnapshotObject",
    "direct_scan",
]
