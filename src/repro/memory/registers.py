"""The shared-memory substrate: an atomic multi-writer register file.

Registers are named by strings; hierarchical names use ``/`` by
convention (e.g. ``inp/3``, ``paxos/cons:0/R/2``) so that
:class:`~repro.runtime.ops.Snapshot` can atomically read a whole family
by prefix.  Unwritten registers hold ``None`` (the paper's bottom).

All operations are applied atomically by the executor, giving the
standard atomic (linearizable) register semantics assumed by the paper.

Performance notes
-----------------
``snapshot(prefix)`` used to scan every cell on every call, making the
snapshot-heavy algorithms O(total registers) per step.  The file now
keeps a *bucket index* keyed by each name's directory part (everything
up to and including the last ``/``), so the overwhelmingly common
directory-style prefixes (``inp/``, ``x/lev/``) cost O(matching
registers).  Snapshot results are returned in *canonical* (sorted by
register name) order: two runs that wrote the same registers with the
same values produce literally equal snapshots no matter which order
the writes landed in.  This matters for state identity — the executor
fingerprint digests snapshot results, and the exhaustive checker's
dedup and partial-order reductions treat runs whose snapshots differ
only by write order as distinct states unless the order is normalized
at the source.

The sort is amortized by a per-prefix result cache, invalidated by any
write the prefix covers: snapshot-heavy loops over a quiescent family
(the common pattern in the paper's algorithms — write once, then poll)
pay the sort on the first call and a plain dict copy afterwards.

``copy()`` is copy-on-write: the clone shares cell storage with its
source until either side first mutates, which makes executor
checkpointing and chaos replay paths cheap when the copy is read-only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..errors import ProtocolError

if TYPE_CHECKING:  # imported lazily to avoid a memory <-> runtime cycle
    from ..runtime import ops


def _bucket_of(name: str) -> str:
    """Directory part of a register name (empty for flat names)."""
    cut = name.rfind("/")
    return "" if cut < 0 else name[: cut + 1]


class RegisterFile:
    """A mapping from register names to values with atomic step semantics."""

    def __init__(self) -> None:
        #: canonical storage, in global insertion order
        self._cells: dict[str, Any] = {}
        #: bucket key -> {full name -> value}; values alias ``_cells``
        self._buckets: dict[str, dict[str, Any]] = {}
        #: prefix -> sorted snapshot result; entries are dropped by any
        #: write whose name the prefix covers, so snapshot-heavy loops
        #: over a quiescent family pay the sort once
        self._snap_cache: dict[str, dict[str, Any]] = {}
        #: True while ``_cells``/``_buckets`` are shared with a copy
        self._shared = False

    # -- copy-on-write plumbing ----------------------------------------

    def _own(self) -> None:
        """Materialize private storage before the first mutation."""
        if self._shared:
            self._cells = dict(self._cells)
            self._buckets = {
                key: dict(bucket) for key, bucket in self._buckets.items()
            }
            self._shared = False

    def copy(self) -> "RegisterFile":
        """O(1) copy-on-write clone (either side pays on first mutation)."""
        clone = RegisterFile.__new__(RegisterFile)
        clone._cells = self._cells
        clone._buckets = self._buckets
        # Caches are never shared: once the two files diverge, a shared
        # cache could serve one side's snapshot from the other's state.
        clone._snap_cache = {}
        clone._shared = True
        self._shared = True
        return clone

    # -- operations -----------------------------------------------------

    def read(self, name: str) -> Any:
        return self._cells.get(name)

    def write(self, name: str, value: Any) -> None:
        self._own()
        self._cells[name] = value
        bucket = self._buckets.get(_bucket_of(name))
        if bucket is None:
            bucket = self._buckets[_bucket_of(name)] = {}
        bucket[name] = value
        if self._snap_cache:
            stale = [
                prefix
                for prefix in self._snap_cache
                if name.startswith(prefix)
            ]
            for prefix in stale:
                del self._snap_cache[prefix]

    def compare_and_swap(self, name: str, expected: Any, new: Any) -> Any:
        """Returns the prior value; the write happened iff it equals
        ``expected``."""
        prior = self._cells.get(name)
        if prior == expected:
            self.write(name, new)
        return prior

    def snapshot(self, prefix: str) -> dict[str, Any]:
        """Atomic view of every written register whose name starts with
        ``prefix``, in canonical (sorted-by-name) order."""
        cached = self._snap_cache.get(prefix)
        if cached is None:
            cached = self._snap_cache[prefix] = self._scan(prefix)
        return dict(cached)

    def _scan(self, prefix: str) -> dict[str, Any]:
        if not prefix:
            return dict(sorted(self._cells.items()))
        # A name matches iff (a) it lives in the bucket named by the
        # prefix's own directory part and its leaf extends the prefix, or
        # (b) its whole bucket key extends the prefix.  Leaves contain no
        # "/", so exactly one bucket can contribute partial matches.
        home_key = _bucket_of(prefix)
        home = self._buckets.get(home_key)
        spanning = [
            key
            for key in self._buckets
            if key != home_key and key.startswith(prefix)
        ]
        if not spanning:
            if home is None:
                return {}
            if home_key == prefix:
                return dict(sorted(home.items()))
            return dict(
                sorted(
                    (name, value)
                    for name, value in home.items()
                    if name.startswith(prefix)
                )
            )
        # Rare multi-bucket prefix: fall back to a global scan.
        return dict(
            sorted(
                (name, value)
                for name, value in self._cells.items()
                if name.startswith(prefix)
            )
        )

    def names(self) -> Iterator[str]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)


def apply_operation(memory: RegisterFile, op: "ops.Operation") -> Any:
    """Apply one memory operation atomically and return its result.

    ``QueryFD`` and ``Decide`` are not memory operations and must be
    handled by the caller; passing them here is a protocol violation.
    """
    from ..runtime import ops

    if isinstance(op, ops.Read):
        return memory.read(op.register)
    if isinstance(op, ops.Write):
        memory.write(op.register, op.value)
        return None
    if isinstance(op, ops.Snapshot):
        return memory.snapshot(op.prefix)
    if isinstance(op, ops.CompareAndSwap):
        return memory.compare_and_swap(op.register, op.expected, op.new)
    if isinstance(op, ops.Nop):
        return None
    raise ProtocolError(f"not a memory operation: {op!r}")
