"""The shared-memory substrate: an atomic multi-writer register file.

Registers are named by strings; hierarchical names use ``/`` by
convention (e.g. ``inp/3``, ``paxos/cons:0/R/2``) so that
:class:`~repro.runtime.ops.Snapshot` can atomically read a whole family
by prefix.  Unwritten registers hold ``None`` (the paper's bottom).

All operations are applied atomically by the executor, giving the
standard atomic (linearizable) register semantics assumed by the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..errors import ProtocolError

if TYPE_CHECKING:  # imported lazily to avoid a memory <-> runtime cycle
    from ..runtime import ops


class RegisterFile:
    """A mapping from register names to values with atomic step semantics."""

    def __init__(self) -> None:
        self._cells: dict[str, Any] = {}

    def read(self, name: str) -> Any:
        return self._cells.get(name)

    def write(self, name: str, value: Any) -> None:
        self._cells[name] = value

    def compare_and_swap(self, name: str, expected: Any, new: Any) -> Any:
        """Returns the prior value; the write happened iff it equals
        ``expected``."""
        prior = self._cells.get(name)
        if prior == expected:
            self._cells[name] = new
        return prior

    def snapshot(self, prefix: str) -> dict[str, Any]:
        """Atomic view of every written register whose name starts with
        ``prefix``."""
        return {
            name: value
            for name, value in self._cells.items()
            if name.startswith(prefix)
        }

    def names(self) -> Iterator[str]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone._cells = dict(self._cells)
        return clone


def apply_operation(memory: RegisterFile, op: "ops.Operation") -> Any:
    """Apply one memory operation atomically and return its result.

    ``QueryFD`` and ``Decide`` are not memory operations and must be
    handled by the caller; passing them here is a protocol violation.
    """
    from ..runtime import ops

    if isinstance(op, ops.Read):
        return memory.read(op.register)
    if isinstance(op, ops.Write):
        memory.write(op.register, op.value)
        return None
    if isinstance(op, ops.Snapshot):
        return memory.snapshot(op.prefix)
    if isinstance(op, ops.CompareAndSwap):
        return memory.compare_and_swap(op.register, op.expected, op.new)
    if isinstance(op, ops.Nop):
        return None
    raise ProtocolError(f"not a memory operation: {op!r}")
