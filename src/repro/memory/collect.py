"""Collect subroutines.

Automata compose subroutines with ``yield from``: a subroutine is a
generator that yields operations (each costs one scheduled step) and
*returns* its result, so callers write::

    views = yield from collect_registers(["a/0", "a/1"])

A *collect* reads a family of registers one by one; unlike a snapshot it
is not atomic, which is exactly the distinction the double-collect
snapshot algorithm (:mod:`repro.memory.snapshot`) exists to bridge.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..runtime import ops


def collect_registers(names: Sequence[str]):
    """Read each named register once, in order; returns a dict."""
    view: dict[str, Any] = {}
    for name in names:
        view[name] = yield ops.Read(name)
    return view


def collect_array(prefix: str, size: int):
    """Read ``prefix0 .. prefix{size-1}``; returns a list by index."""
    view: list[Any] = []
    for i in range(size):
        value = yield ops.Read(f"{prefix}{i}")
        view.append(value)
    return view


def write_array_entry(prefix: str, index: int, value: Any):
    """Write one slot of an array register family."""
    yield ops.Write(f"{prefix}{index}", value)
    return None
