"""Lemma 11's reduction, executable: a strong-2-renaming solver yields a
2-process consensus solver.

The proof: among >= 3 potential participants, two processes decide name
``1`` in their solo runs (pigeonhole).  Those two solve consensus by
publishing their inputs, renaming, and deciding their own input on name
``1`` and the other's input otherwise — if a process does *not* get
name 1, the solo-name-1 peer must be participating and has already
published its input.

Since no register-only 2-concurrent strong-2-renaming solver exists
(that is Lemma 11), the tests drive this transformer with the
compare-and-swap stand-in (every process's solo run yields name 1
there), and exhaustively verify the resulting consensus protocol —
demonstrating that the reduction itself is sound, which is the half of
the proof that is an algorithm.
"""

from __future__ import annotations

from typing import Callable

from ..core.process import ProcessContext
from ..runtime import ops

PUBLISH_PREFIX = "l11/inp/"


def consensus_from_strong_2_renaming(
    renaming_factory: Callable, partner: dict[int, int]
):
    """Build a consensus automaton factory from a renaming solver.

    Args:
        renaming_factory: the (presumed) strong-2-renaming solver; its
            decisions are names in {1, 2}.
        partner: maps each process index to its counterpart's index (the
            two processes chosen by the pigeonhole).
    """

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        yield ops.Write(f"{PUBLISH_PREFIX}{me}", ctx.input_value)
        inner = renaming_factory(ctx)
        name = None
        try:
            pending = next(inner)
            while True:
                if isinstance(pending, ops.Decide):
                    name = pending.value
                    break
                result = yield pending
                pending = inner.send(result)
        except StopIteration:
            raise RuntimeError("renaming solver halted without a name")
        if name == 1:
            yield ops.Decide(ctx.input_value)
            return
        other = partner[me]
        value = yield ops.Read(f"{PUBLISH_PREFIX}{other}")
        if value is None:
            raise RuntimeError(
                "name 1 was taken, so the partner must have published"
            )
        yield ops.Decide(value)

    return factory
