"""Concurrency-level classification of tasks (Theorem 10's invariant).

The paper's headline: every task belongs to exactly one class ``k`` —
the largest concurrency level at which it is solvable — and the weakest
failure detector solving it in EFD is ``anti-Omega-k``.  This module
classifies concrete tasks by combining three kinds of evidence:

* **validated-runs** — a provided restricted algorithm survives a sweep
  of k-concurrent executions (schedules x seeds x arrival orders x
  input vectors), optionally hardened into an *exhaustive* certificate
  over all gated interleavings on a small instance;
* **topology-certificate** — for (<= 2)-participant tasks, the exact
  decision of :mod:`repro.topology.solvability` (not 2-concurrently
  solvable => class exactly 1, by Proposition 1);
* **literature** — lower bounds beyond dimension 1 (e.g. k-set
  agreement not (k+1)-concurrently solvable, from [11, 27]) are cited,
  not re-proved; the classifier labels them as such.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..checker.explorer import (
    ScheduleExplorer,
    concurrency_gate,
    drop_null_s_processes,
    task_safety_verdict,
)
from ..core.system import System
from ..core.task import Task, Vector, participants
from ..runtime import SeededRandomScheduler, execute, k_concurrent
from ..topology.solvability import decide_two_process_solvability


@dataclass(frozen=True)
class Evidence:
    """One piece of classification evidence."""

    kind: str  # validated-runs | exhaustive | topology-certificate |
    #            literature | proposition-1 | open
    detail: str


@dataclass(frozen=True)
class TaskClassification:
    """A row of the task hierarchy."""

    task_name: str
    level: int
    exact: bool
    upper: Evidence
    lower: Evidence

    @property
    def weakest_detector(self) -> str:
        """Theorem 10: the weakest detector of a class-k task (the
        trivial detector for wait-free tasks, by Proposition 2)."""
        if self.lower.kind == "maximum":
            return "trivial (wait-free)"
        prefix = "" if self.exact else ">= "
        if self.level == 1:
            return f"{prefix}Omega (= anti-Omega-1)"
        return f"{prefix}anti-Omega-{self.level}"


def validate_k_concurrent(
    task: Task,
    factories: Sequence[Callable],
    k: int,
    *,
    input_vectors: Iterable[Vector] | None = None,
    seeds: Iterable[int] = range(3),
    max_inputs: int = 6,
    max_steps: int = 150_000,
) -> bool:
    """Sweep k-concurrent runs of a restricted algorithm; ``True`` iff
    every run decided all participants within the task relation."""
    if input_vectors is None:
        input_vectors = itertools.islice(
            task.maximal_input_vectors(), max_inputs
        )
    for inputs in input_vectors:
        present = sorted(participants(inputs))
        arrival_orders = [present, list(reversed(present))]
        for seed in seeds:
            for arrival in arrival_orders:
                system = System(inputs=inputs, c_factories=list(factories))
                scheduler = k_concurrent(
                    SeededRandomScheduler(seed), k, arrival_order=arrival
                )
                result = execute(system, scheduler, max_steps=max_steps)
                if not result.all_participants_decided:
                    return False
                if not result.satisfies(task):
                    return False
    return True


def explore_k_concurrent(
    task: Task,
    factories: Sequence[Callable],
    k: int,
    inputs: Vector,
    *,
    max_depth: int = 14,
    max_runs: int = 200_000,
    checkpoint_stride: int = 4,
    dedup: bool = False,
    por: bool = False,
    symmetry: bool = False,
    deadline_s: float | None = None,
    checkpoint_path: str | None = None,
    resume_from: str | None = None,
    handle_signals: bool = False,
):
    """Exhaustively explore every k-concurrent interleaving of a
    restricted algorithm on one small instance, checking the task
    relation at every node.  The keyword knobs are the
    :class:`~repro.checker.explorer.ScheduleExplorer` reduction knobs
    (``dedup`` / ``por`` / ``symmetry`` change node counts, never the
    verdict) plus the preemption knobs of
    :meth:`~repro.checker.explorer.ScheduleExplorer.check`
    (``deadline_s`` / ``checkpoint_path`` / ``resume_from`` /
    ``handle_signals``) for deep explorations that must survive
    wall-clock budgets and signals.  Returns the full exploration
    report (check ``interrupted`` before trusting ``ok``)."""

    def build() -> System:
        return System(inputs=inputs, c_factories=list(factories))

    def gate(executor, candidates):
        return concurrency_gate(k)(
            executor, drop_null_s_processes(executor, candidates)
        )

    explorer = ScheduleExplorer(
        build,
        max_depth=max_depth,
        candidate_filter=gate,
        max_runs=max_runs,
        checkpoint_stride=checkpoint_stride,
        dedup=dedup,
        por=por,
        symmetry=symmetry,
    )
    return explorer.check(
        task_safety_verdict(task),
        deadline_s=deadline_s,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
        handle_signals=handle_signals,
    )


def certify_k_concurrent_exhaustively(
    task: Task,
    factories: Sequence[Callable],
    k: int,
    inputs: Vector,
    *,
    max_depth: int = 14,
    **explorer_knobs,
) -> bool:
    """Exhaustive certificate on one small instance: every k-concurrent
    interleaving up to ``max_depth`` stays within the task relation.
    Extra keyword knobs are forwarded to :func:`explore_k_concurrent`
    (e.g. ``por=True`` to certify with partial-order reduction)."""
    return explore_k_concurrent(
        task, factories, k, inputs, max_depth=max_depth, **explorer_knobs
    ).ok


def classify_task(
    task: Task,
    *,
    algorithm_for: Callable[[int], Sequence[Callable] | None],
    max_k: int,
    two_process_restriction: Task | None = None,
    literature_lower: tuple[int, str] | None = None,
    validate_kwargs: dict | None = None,
) -> TaskClassification:
    """Classify one task.

    Args:
        task: the task to classify.
        algorithm_for: maps a level ``k`` to a restricted algorithm
            claimed correct k-concurrently (or ``None`` if the library
            has none for that level).
        max_k: largest level to attempt.
        two_process_restriction: a (<= 2)-participant rendering of the
            task for the exact dimension-1 lower bound (applicable when
            class 1 vs >= 2 is the question).
        literature_lower: ``(level, citation)`` — an accepted lower
            bound "not (level+1)-concurrently solvable".
        validate_kwargs: forwarded to :func:`validate_k_concurrent`.
    """
    validate_kwargs = validate_kwargs or {}
    best = 0
    for k in range(1, max_k + 1):
        factories = algorithm_for(k)
        if factories is None:
            break
        if validate_k_concurrent(task, factories, k, **validate_kwargs):
            best = k
        else:
            break
    if best == 0:
        raise ValueError(f"no level validated for {task!r}")
    upper = Evidence(
        kind="validated-runs",
        detail=(
            f"library algorithm survives the {best}-concurrent run sweep"
        ),
    )
    if best == 1:
        upper = Evidence(
            kind="proposition-1",
            detail="every task is 1-concurrently solvable (Prop. 1)",
        )
    if best >= task.n:
        # n is the largest possible concurrency level: nothing above it
        # exists to be unsolvable at, so the class is exact.
        return TaskClassification(
            task_name=task.name,
            level=task.n,
            exact=True,
            upper=upper,
            lower=Evidence(
                kind="maximum",
                detail="n-concurrency is the largest level (wait-free)",
            ),
        )
    # Lower bound (not (best+1)-concurrent).
    if two_process_restriction is not None and best == 1:
        verdict = decide_two_process_solvability(two_process_restriction)
        if not verdict.solvable:
            return TaskClassification(
                task_name=task.name,
                level=1,
                exact=True,
                upper=upper,
                lower=Evidence(
                    kind="topology-certificate",
                    detail=verdict.obstruction or "dimension-1 obstruction",
                ),
            )
    if literature_lower is not None and literature_lower[0] == best:
        return TaskClassification(
            task_name=task.name,
            level=best,
            exact=True,
            upper=upper,
            lower=Evidence(kind="literature", detail=literature_lower[1]),
        )
    return TaskClassification(
        task_name=task.name,
        level=best,
        exact=False,
        upper=upper,
        lower=Evidence(
            kind="open",
            detail=(
                f"no lower-bound certificate for level {best + 1} in this "
                "library"
            ),
        ),
    )
