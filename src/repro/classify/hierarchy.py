"""The task hierarchy — the paper's headline classification (Theorem 10
and Section 5) regenerated as a table.

Every task the paper discusses is placed in its concurrency class, with
the weakest failure detector given by Theorem 10 and the evidence for
each bound labeled (machine-validated runs, exact topology certificate,
literature citation, or open — the paper itself leaves
(j, j+k-1)-renaming's exact class open for some parameters, footnote 4
/ [8], and the table reports exactly that)."""

from __future__ import annotations

from typing import Sequence

from ..algorithms.kset_concurrent import kset_concurrent_factories
from ..algorithms.one_concurrent import one_concurrent_factories
from ..algorithms.renaming_figure4 import figure4_factories
from ..algorithms.wsb_concurrent import wsb_concurrent_factories
from ..tasks import (
    ConsensusTask,
    IdentityTask,
    RenamingTask,
    SetAgreementTask,
    StrongRenamingTask,
    WeakSymmetryBreakingTask,
    identity_factories,
)
from .concurrency_level import TaskClassification, classify_task


def classify_identity(n: int) -> TaskClassification:
    """The trivial end of the spectrum: class n, no advice needed."""
    task = IdentityTask(n)
    return classify_task(
        task,
        algorithm_for=lambda k: identity_factories(n),
        max_k=n,
        validate_kwargs={"max_inputs": 4, "seeds": range(2)},
    )


def classify_consensus(n: int) -> TaskClassification:
    task = ConsensusTask(n)
    return classify_task(
        task,
        algorithm_for=lambda k: (
            one_concurrent_factories(task) if k == 1 else None
        ),
        max_k=2,
        two_process_restriction=ConsensusTask(2),
    )


def classify_set_agreement(n: int, k: int) -> TaskClassification:
    task = SetAgreementTask(n, k, domain=tuple(range(min(n, k + 2))))
    if k == 1:
        return classify_consensus(n)
    return classify_task(
        task,
        algorithm_for=lambda level: (
            kset_concurrent_factories(n, level) if level <= k else None
        ),
        max_k=k,
        literature_lower=(
            k,
            "k-set agreement is not wait-free (k+1)-concurrently "
            "solvable [11, 27]",
        ),
        validate_kwargs={"max_inputs": 4, "seeds": range(2)},
    )


def classify_strong_renaming(n: int, j: int) -> TaskClassification:
    task = StrongRenamingTask(n, j)
    two_proc = StrongRenamingTask(max(n, 3), 2)
    return classify_task(
        task,
        algorithm_for=lambda k: (
            figure4_factories(n) if k == 1 else None
        ),
        max_k=2,
        two_process_restriction=two_proc,
        validate_kwargs={"max_inputs": 4, "seeds": range(2)},
    )


def classify_loose_renaming(n: int, j: int, k: int) -> TaskClassification:
    task = RenamingTask(n, j, j + k - 1)
    return classify_task(
        task,
        algorithm_for=lambda level: (
            figure4_factories(n) if level <= k else None
        ),
        max_k=k,
        validate_kwargs={"max_inputs": 4, "seeds": range(2)},
    )


def classify_wsb(n: int, j: int) -> TaskClassification:
    task = WeakSymmetryBreakingTask(n, j)
    if j == 2:
        return classify_task(
            task,
            algorithm_for=lambda k: (
                wsb_concurrent_factories(n, j) if k == 1 else None
            ),
            max_k=2,
            two_process_restriction=task,
            validate_kwargs={"max_inputs": 6, "seeds": range(2)},
        )
    return classify_task(
        task,
        algorithm_for=lambda level: (
            wsb_concurrent_factories(n, j) if level <= j - 1 else None
        ),
        max_k=j - 1,
        validate_kwargs={"max_inputs": 6, "seeds": range(2)},
    )


def build_hierarchy(n: int = 4) -> list[TaskClassification]:
    """The battery used by E-T10: consensus, k-set agreement, strong and
    loose renaming, WSB."""
    rows = [classify_consensus(n)]
    for k in range(2, n):
        rows.append(classify_set_agreement(n, k))
    rows.append(classify_strong_renaming(n, n - 1))
    for k in (2, 3):
        if k <= n - 1:
            rows.append(classify_loose_renaming(n, n - 1, k))
    rows.append(classify_wsb(n, 2))
    if n >= 4:
        rows.append(classify_wsb(n, 3))
    rows.append(classify_identity(n))
    return rows


def format_hierarchy(rows: Sequence[TaskClassification]) -> str:
    """Render the hierarchy as the table E-T10's bench prints."""
    header = (
        f"{'task':28} {'class':>6} {'exact':>6}  "
        f"{'weakest detector':24} lower-bound evidence"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.task_name:28} {row.level:>6} "
            f"{'yes' if row.exact else 'no':>6}  "
            f"{row.weakest_detector:24} {row.lower.kind}: {row.lower.detail}"
        )
    return "\n".join(lines)
