"""Task classification: concurrency levels and the Theorem 10 hierarchy."""

from .concurrency_level import (
    Evidence,
    TaskClassification,
    certify_k_concurrent_exhaustively,
    explore_k_concurrent,
    classify_task,
    validate_k_concurrent,
)
from .hierarchy import (
    build_hierarchy,
    classify_consensus,
    classify_identity,
    classify_loose_renaming,
    classify_set_agreement,
    classify_strong_renaming,
    classify_wsb,
    format_hierarchy,
)
from .reductions import consensus_from_strong_2_renaming

__all__ = [
    "Evidence",
    "TaskClassification",
    "certify_k_concurrent_exhaustively",
    "explore_k_concurrent",
    "classify_task",
    "validate_k_concurrent",
    "build_hierarchy",
    "classify_consensus",
    "classify_identity",
    "classify_loose_renaming",
    "classify_set_agreement",
    "classify_strong_renaming",
    "classify_wsb",
    "format_hierarchy",
    "consensus_from_strong_2_renaming",
]
