"""Fault-tolerant campaign fabric: lease-based dispatch over sockets.

This is the multi-host sibling of :class:`~repro.resilience.supervisor.
SupervisedPool`: a coordinator shards campaign cells across remote
worker agents (:mod:`repro.resilience.worker`) over the framed
transport (:mod:`repro.resilience.transport`), and the whole exchange
is engineered so that *message loss, delay, duplication, torn frames,
one-way partitions, and worker crashes are all survivable* — the
report a faulted fabric run renders is byte-identical to a serial
in-process run.  That is the same discipline the paper demands of
C-processes computing with crash-prone S-process advice: the
computation (here, the campaign verdict) must not be able to tell
whether its helpers misbehaved.

The mechanism is **at-least-once dispatch with lease-based ownership**:

* Every cell is *leased* to exactly one worker with a deadline.  The
  worker's heartbeats renew the lease; a lease that expires (lost
  dispatch frame, partitioned worker, wedged host) silently returns
  the cell to the pending queue for redispatch.
* A worker disconnect (crash, torn frame, network reset) immediately
  requeues its leased cells — faster than waiting out the deadline.
* Results are **deduplicated idempotently**: cells are pure functions
  of their spec, so the first result for an index wins, later
  duplicates (a retried cell whose first result frame was only
  delayed, not lost) are counted and dropped, and the journal layer's
  :meth:`~repro.resilience.journal.CampaignJournal.append_idempotent`
  keeps the durable record single-entry too.
* A cell redispatched more than ``max_redispatch`` times without ever
  producing a result is *quarantined* with outcome ``"partition"``
  instead of looping forever — surfaced in the campaign report like
  every other quarantine kind, never a hang.

Degraded mode: a fabric with no workers is just a slow way to spell
"local".  If no worker registers within ``register_grace_s``, or every
worker vanishes mid-campaign for ``degrade_after_s``, the coordinator
returns the unfinished cells to the caller, which runs them through
the local :class:`~repro.resilience.supervisor.SupervisedPool` — the
campaign completes either way, and ``FabricStats.degraded`` records
that it happened.

Crash recovery: when :meth:`FabricCoordinator.run` is given a journal,
every lease grant, lease expiry, and bench decision is appended to it
as a control-plane event alongside the cell outcomes.  A coordinator
that is SIGKILLed mid-campaign can therefore be restarted with
``run_campaign(..., resume=J)``: :func:`~repro.resilience.journal.
recover_control_state` rebuilds the lease table and suspicion state
from the log, journaled cells are never redispatched, and leases that
were outstanding at the crash get a grace window in which their
holders may reconnect (``register`` with ``held_leases``) and either
be re-admitted or deliver the finished result from their local spool
(:class:`~repro.resilience.worker.ResultSpool`) — so a coordinator
outage loses zero completed work.
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..errors import ResilienceError
from .journal import CampaignJournal, ControlPlaneState
from .transport import FrameDecoder, TransportError, encode_frame

#: Quarantine outcome for a cell that was redispatched past the budget
#: without any worker ever returning a result (see OUTCOME_PARTITION in
#: :mod:`repro.chaos.campaign`, which re-exports the triage).
PARTITION_KIND = "partition"


@dataclass(frozen=True)
class FabricConfig:
    """Tuning knobs of one coordinator.

    Attributes:
        host: listen address (loopback by default; bind ``0.0.0.0`` to
            accept remote workers).
        port: listen port; 0 picks an ephemeral port (see
            :attr:`FabricCoordinator.address`).
        lease_s: ownership deadline per dispatched cell.  Heartbeats
            renew it, so it bounds *silence*, not cell runtime; it only
            expires when the dispatch or every subsequent heartbeat was
            lost.
        heartbeat_s: period at which workers are told to heartbeat.
            Keep several heartbeats inside one lease so a single lost
            frame never expires a healthy lease.
        register_grace_s: how long to wait for the first worker before
            degrading to local execution.
        degrade_after_s: mid-campaign all-workers-gone window after
            which the remaining cells are returned for local execution.
        max_redispatch: redispatch budget per cell before it is
            quarantined as ``"partition"``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    lease_s: float = 5.0
    heartbeat_s: float = 1.0
    register_grace_s: float = 5.0
    degrade_after_s: float = 15.0
    max_redispatch: int = 8


@dataclass
class FabricStats:
    """What the fault machinery actually absorbed during one run.

    The report stays byte-identical under faults *by design*, so the
    evidence that faults happened (and were survived) lives here; the
    chaos drill asserts on these counters.
    """

    workers_registered: int = 0
    reconnects: int = 0
    dispatches: int = 0
    results: int = 0
    duplicates_dropped: int = 0
    lease_expiries: int = 0
    disconnect_requeues: int = 0
    partition_quarantines: int = 0
    degraded: bool = False
    locally_executed: int = 0
    resumed: bool = False
    recovered_cells: int = 0
    recovered_leases: int = 0
    readmitted_leases: int = 0
    spooled_results: int = 0

    def summary(self) -> str:
        mode = "degraded to local pool" if self.degraded else "fabric"
        if self.resumed:
            mode += (
                f" (resumed: {self.recovered_cells} journaled cell(s) "
                f"recovered, {self.recovered_leases} lease(s) "
                f"outstanding, {self.readmitted_leases} readmitted)"
            )
        return (
            f"{mode}: {self.results} results from "
            f"{self.workers_registered} worker registration(s) "
            f"({self.reconnects} reconnect(s)), "
            f"{self.dispatches} dispatches, "
            f"{self.lease_expiries} lease expiries, "
            f"{self.disconnect_requeues} disconnect requeues, "
            f"{self.duplicates_dropped} duplicate result(s) dropped, "
            f"{self.partition_quarantines} partition quarantine(s), "
            f"{self.spooled_results} spool-replayed result(s), "
            f"{self.locally_executed} cell(s) executed locally"
        )


@dataclass
class _Lease:
    index: int
    conn: "_WorkerConn"
    expires_at: float


class _WorkerConn:
    """Coordinator-side state of one accepted connection.

    ``suspicion``/``penalty_until`` are the coordinator's own little
    failure detector: a worker whose lease expires is benched for an
    exponentially growing window before it may hold leases again, so a
    one-way-partitioned worker (always "idle", never delivering) stops
    attracting redispatches and the healthy workers absorb the load.
    A delivered result rehabilitates it instantly — eventually-accurate
    in the detector sense: suspicion is temporary, wrongly-suspected
    workers get their work back.
    """

    __slots__ = (
        "sock",
        "decoder",
        "name",
        "registered",
        "leases",
        "peer",
        "suspicion",
        "penalty_until",
    )

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.decoder = FrameDecoder()
        self.name: str | None = None
        self.registered = False
        self.leases: set[int] = set()
        self.peer = peer
        self.suspicion = 0
        self.penalty_until = 0.0

    def penalize(self, now: float, lease_s: float) -> None:
        self.suspicion += 1
        self.penalty_until = now + lease_s * min(
            2.0 ** (self.suspicion - 1), 16.0
        )

    def rehabilitate(self) -> None:
        self.suspicion = 0
        self.penalty_until = 0.0

    def send(self, message: Mapping[str, Any]) -> bool:
        """Best-effort framed send; False means the peer is dead (the
        reader side will reap it)."""
        try:
            self.sock.sendall(encode_frame(message))
            return True
        except (OSError, TransportError):
            return False


@dataclass
class _CellState:
    index: int
    payload: Mapping[str, Any]  # CellSpec JSON
    dispatches: int = 0


@dataclass
class _AwaitingLease:
    """A lease recovered from the journal whose holder has not yet
    reconnected.  The cell is withheld from dispatch until the grace
    deadline: its owner may still be computing it and will either
    re-register with ``held_leases`` (re-binding the lease) or deliver
    the finished result from its spool."""

    worker: str
    expires_at: float  # monotonic


class FabricCoordinator:
    """Shard a list of campaign cells across socket-connected workers.

    Bind happens in the constructor so callers (drills, benches, the
    CLI) can learn :attr:`address` and point workers or a chaos proxy
    at it before :meth:`run` starts serving.
    """

    def __init__(self, config: FabricConfig | None = None) -> None:
        self.config = config or FabricConfig()
        self.stats = FabricStats()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        try:
            self._listener.bind((self.config.host, self.config.port))
        except OSError as exc:
            self._listener.close()
            raise ResilienceError(
                f"fabric cannot bind "
                f"{self.config.host}:{self.config.port}: {exc}"
            ) from exc
        self._listener.listen(16)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ)
        self._conns: list[_WorkerConn] = []
        self._seen_names: set[str] = set()
        self._welcome: dict[str, Any] = {"type": "welcome"}
        self._deferred: list[tuple[_WorkerConn, Mapping[str, Any]]] = []
        self._closed = False
        self._journal: CampaignJournal | None = None
        self._recovered_suspicion: dict[str, tuple[int, float]] = {}

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            conn.send({"type": "shutdown", "reason": "coordinator closed"})
        # Drain before closing: closing a socket with unread received
        # bytes (a heartbeat that raced the shutdown) sends RST, which
        # destroys the queued shutdown frame — and the worker would
        # treat the campaign's end as a link fault and reconnect-spin.
        deadline = time.monotonic() + 0.25
        while self._conns and time.monotonic() < deadline:
            for key, _ in self._selector.select(timeout=0.05):
                if key.fileobj is self._listener:
                    continue
                conn = key.data
                try:
                    if not conn.sock.recv(65536):
                        self._drop(conn, requeue_into=None)
                except OSError:
                    self._drop(conn, requeue_into=None)
        for conn in list(self._conns):
            self._drop(conn, requeue_into=None)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        self._listener.close()
        self._selector.close()

    def __enter__(self) -> "FabricCoordinator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def wait_for_workers(self, count: int, timeout_s: float = 30.0) -> int:
        """Block until ``count`` workers have dialed in and sent their
        registration (or ``timeout_s`` passes); returns how many did.

        Registrations collected here are *deferred* — the welcome is
        only sent at the start of :meth:`run`, which knows the campaign
        metadata (fingerprint, ``strict_traces``) the welcome must
        carry.  This is a warm-up hook: benches and drills use it to
        keep worker interpreter start-up out of their timed region.
        Workers wait up to 10s for their welcome, so call :meth:`run`
        promptly afterwards.
        """
        deadline = time.monotonic() + timeout_s

        def registered() -> int:
            return sum(
                1
                for _, message in self._deferred
                if message.get("type") == "register"
            )

        while registered() < count and time.monotonic() < deadline:
            for key, _ in self._selector.select(timeout=0.05):
                if key.fileobj is self._listener:
                    self._accept()
                    continue
                conn: _WorkerConn = key.data
                try:
                    data = conn.sock.recv(65536)
                except BlockingIOError:  # pragma: no cover
                    continue
                except OSError:
                    data = b""
                if not data:
                    self._drop(conn, requeue_into=None)
                    continue
                try:
                    messages = conn.decoder.feed(data)
                except TransportError:
                    self._drop(conn, requeue_into=None)
                    continue
                self._deferred.extend(
                    (conn, message) for message in messages
                )
        return registered()

    # -- the dispatch loop -----------------------------------------------

    def run(
        self,
        jobs: Sequence[tuple[int, Mapping[str, Any]]],
        record_result: Callable[[int, Mapping[str, Any]], None],
        *,
        campaign: str = "",
        fingerprint: str = "",
        strict_traces: bool = False,
        journal: CampaignJournal | None = None,
        recovered: ControlPlaneState | None = None,
    ) -> set[int]:
        """Drive ``jobs`` (``(index, cell-spec JSON)`` pairs) to
        completion; ``record_result`` fires once per index with the
        worker's result message (idempotent dedup is done here).

        When ``journal`` is given, lease grants/expiries and bench
        decisions are appended to it as control-plane events, making
        this run crash-recoverable.  ``recovered`` (from
        :func:`~repro.resilience.journal.recover_control_state`) starts
        the run in recovery mode: leases that were outstanding at the
        crash get one fresh lease window of grace in which their
        holders may reconnect and re-claim them (``held_leases``) or
        deliver spooled results before the cells are requeued.

        Returns the indices that were **not** completed because the
        fabric degraded (no workers, or all workers lost past the
        window) — the caller is expected to run those locally.  Cells
        quarantined as ``"partition"`` *are* completed (their record
        is the quarantine) and are not returned.
        """
        cfg = self.config
        cells = {
            index: _CellState(index, payload) for index, payload in jobs
        }
        leases: dict[int, _Lease] = {}
        done: set[int] = set()
        self._journal = journal
        awaiting: dict[int, _AwaitingLease] = {}
        if recovered is not None:
            self.stats.resumed = True
            self.stats.recovered_cells = len(recovered.completed)
            grace = time.monotonic() + cfg.lease_s
            for index, note in recovered.leases.items():
                if index in cells:
                    awaiting[index] = _AwaitingLease(note.worker, grace)
            self.stats.recovered_leases = len(awaiting)
            self._recovered_suspicion = dict(recovered.suspicion)
        pending: deque[int] = deque(
            index for index, _ in jobs if index not in awaiting
        )
        self._welcome = {
            "type": "welcome",
            "campaign": campaign,
            "fingerprint": fingerprint,
            "strict_traces": strict_traces,
            "heartbeat_s": cfg.heartbeat_s,
            "lease_s": cfg.lease_s,
        }

        def finish(index: int, message: Mapping[str, Any]) -> None:
            """Idempotent result sink: first result wins, duplicates
            (redispatched cells whose original result was delayed, not
            lost) are counted and dropped."""
            if message.get("spooled"):
                # Counted before dedup: the vacuity check is "zero
                # spooled results *lost*", and a spool replay that
                # arrives after a redispatch already finished the cell
                # was still delivered, not lost.
                self.stats.spooled_results += 1
                self._journal_event(
                    {
                        "kind": "spool",
                        "index": index,
                        "worker": str(message.get("worker", "")),
                    }
                )
            if index in done:
                self.stats.duplicates_dropped += 1
                return
            done.add(index)
            awaiting.pop(index, None)
            lease = leases.pop(index, None)
            if lease is not None:
                lease.conn.leases.discard(index)
            if message.get("outcome") != PARTITION_KIND:
                self.stats.results += 1
            record_result(index, message)

        # Replay registrations parked by wait_for_workers(), now that
        # the welcome carries the real campaign metadata.
        deferred, self._deferred = self._deferred, []
        for conn, message in deferred:
            if conn in self._conns:
                self._handle(conn, message, cells, leases, awaiting, finish)

        started_at = time.monotonic()
        last_worker_at: float | None = None
        while len(done) < len(cells):
            now = time.monotonic()
            if self._workers():
                last_worker_at = now

            # Degrade rather than hang: nobody ever came, or everybody
            # left and stayed gone.
            if last_worker_at is None:
                if now - started_at >= cfg.register_grace_s:
                    break
            elif (
                not self._workers()
                and now - last_worker_at >= cfg.degrade_after_s
            ):
                break

            # Lease sweep: silence past the deadline returns the cell
            # and benches the silent worker (suspicion grows, so a
            # blackholed worker stops attracting redispatches).
            for index, lease in list(leases.items()):
                if lease.expires_at > now:
                    continue
                self.stats.lease_expiries += 1
                lease.conn.leases.discard(index)
                name = lease.conn.name or lease.conn.peer
                self._journal_event(
                    {"kind": "expiry", "index": index, "worker": name}
                )
                lease.conn.penalize(now, cfg.lease_s)
                self._journal_event(
                    {
                        "kind": "bench",
                        "worker": name,
                        "suspicion": lease.conn.suspicion,
                        "penalty_until_unix": time.time()
                        + (lease.conn.penalty_until - now),
                    }
                )
                del leases[index]
                self._requeue(cells[index], pending, finish)

            # Recovered-lease sweep: an awaiting holder that never came
            # back within its grace window forfeits the cell.
            for index, note in list(awaiting.items()):
                if note.expires_at > now or index in done:
                    continue
                del awaiting[index]
                self.stats.lease_expiries += 1
                self._journal_event(
                    {
                        "kind": "expiry",
                        "index": index,
                        "worker": note.worker,
                    }
                )
                self._requeue(cells[index], pending, finish)

            self._dispatch(cells, pending, leases, done, now)
            self._pump(cells, pending, leases, awaiting, finish, timeout=0.05)

        leftover = {
            index
            for index in cells
            if index not in done
        }
        if leftover:
            self.stats.degraded = True
            self.stats.locally_executed = len(leftover)
        return leftover

    # -- helpers -----------------------------------------------------------

    def _workers(self) -> list[_WorkerConn]:
        return [conn for conn in self._conns if conn.registered]

    def _journal_event(self, record: Mapping[str, Any]) -> None:
        """Durably log one control-plane event, when journaling."""
        if self._journal is not None:
            self._journal.append_event(record)

    def _requeue(
        self,
        cell: _CellState,
        pending: deque[int],
        finish: Callable[[int, Mapping[str, Any]], None],
    ) -> None:
        """Return a lost cell to the queue, or quarantine it once the
        redispatch budget is spent (a cell that never comes back is a
        partitioned/blackholed cell, and the report must say so rather
        than the campaign hanging)."""
        if cell.dispatches > self.config.max_redispatch:
            self.stats.partition_quarantines += 1
            finish(
                cell.index,
                {
                    "type": "result",
                    "index": cell.index,
                    "outcome": PARTITION_KIND,
                    "detail": (
                        f"leased {cell.dispatches} times without a "
                        f"result (lost to partition or blackholed "
                        f"workers); redispatch budget "
                        f"{self.config.max_redispatch} exhausted"
                    ),
                    "steps": 0,
                    "attempts": cell.dispatches,
                },
            )
        else:
            pending.append(cell.index)

    def _dispatch(
        self,
        cells: Mapping[int, _CellState],
        pending: deque[int],
        leases: dict[int, _Lease],
        done: set[int],
        now: float,
    ) -> None:
        """Hand each idle, unsuspected registered worker one cell."""
        idle = deque(
            conn
            for conn in self._workers()
            if not conn.leases and conn.penalty_until <= now
        )
        while idle and pending:
            index = pending.popleft()
            if index in done or index in leases:
                continue
            conn = idle.popleft()
            cell = cells[index]
            cell.dispatches += 1
            self.stats.dispatches += 1
            # Journal the grant *before* the send: recovery must never
            # under-count outstanding leases, only over-count (an
            # over-counted lease merely waits out its grace window).
            self._journal_event(
                {
                    "kind": "lease",
                    "index": index,
                    "worker": conn.name or conn.peer,
                    "deadline_unix": time.time() + self.config.lease_s,
                }
            )
            sent = conn.send(
                {
                    "type": "lease",
                    "index": index,
                    "cell": dict(cell.payload),
                    "lease_s": self.config.lease_s,
                }
            )
            # Lease it even when the send failed: the reaper will
            # requeue on disconnect, and the lease keeps accounting
            # single-owner in the meantime.
            conn.leases.add(index)
            leases[index] = _Lease(index, conn, now + self.config.lease_s)
            if not sent:
                idle = deque(c for c in idle if c is not conn)

    def _pump(
        self,
        cells: Mapping[int, _CellState],
        pending: deque[int],
        leases: dict[int, _Lease],
        awaiting: dict[int, _AwaitingLease],
        finish: Callable[[int, Mapping[str, Any]], None],
        *,
        timeout: float,
    ) -> None:
        """One selector tick: accept, read, route messages."""
        for key, _ in self._selector.select(timeout):
            if key.fileobj is self._listener:
                self._accept()
                continue
            conn: _WorkerConn = key.data
            try:
                data = conn.sock.recv(65536)
            except BlockingIOError:  # pragma: no cover - spurious wake
                continue
            except OSError:
                data = b""
            if not data:
                self._drop(conn, requeue_into=(cells, pending, finish))
                continue
            try:
                messages = conn.decoder.feed(data)
            except TransportError:
                # Garbage on the wire (torn/corrupt frame): treat the
                # connection as crashed; the worker will reconnect.
                self._drop(conn, requeue_into=(cells, pending, finish))
                continue
            for message in messages:
                self._handle(conn, message, cells, leases, awaiting, finish)

    def _accept(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _WorkerConn(sock, f"{peer[0]}:{peer[1]}")
            self._conns.append(conn)
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _drop(
        self,
        conn: _WorkerConn,
        *,
        requeue_into: (
            tuple[
                Mapping[int, _CellState],
                deque[int],
                Callable[[int, Mapping[str, Any]], None],
            ]
            | None
        ),
    ) -> None:
        """Reap a dead connection; requeue its leased cells at once."""
        if conn not in self._conns:
            return
        self._conns.remove(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if requeue_into is None:
            return
        cells, pending, finish = requeue_into
        for index in sorted(conn.leases):
            self.stats.disconnect_requeues += 1
            # Release the grant in the log too: recovery treats an
            # unmatched grant as still-outstanding.
            self._journal_event(
                {
                    "kind": "expiry",
                    "index": index,
                    "worker": conn.name or conn.peer,
                }
            )
            self._requeue(cells[index], pending, finish)
        conn.leases.clear()

    def _handle(
        self,
        conn: _WorkerConn,
        message: Mapping[str, Any],
        cells: Mapping[int, _CellState],
        leases: dict[int, _Lease],
        awaiting: dict[int, _AwaitingLease],
        finish: Callable[[int, Mapping[str, Any]], None],
    ) -> None:
        kind = message.get("type")
        if kind == "register":
            conn.registered = True
            conn.name = str(message.get("name", conn.peer))
            self.stats.workers_registered += 1
            if (
                int(message.get("incarnation", 0)) > 0
                or conn.name in self._seen_names
            ):
                self.stats.reconnects += 1
            self._seen_names.add(conn.name)
            # A pre-crash bench follows the worker across the restart:
            # the journal remembers who was suspected, for how long.
            recovered = self._recovered_suspicion.pop(conn.name, None)
            if recovered is not None:
                suspicion, penalty_until_unix = recovered
                remaining = penalty_until_unix - time.time()
                if suspicion > 0 and remaining > 0:
                    conn.suspicion = suspicion
                    conn.penalty_until = time.monotonic() + remaining
            # Re-admission: a reconnecting worker that still holds a
            # recovered lease keeps it — the cell is mid-computation on
            # that worker, redispatching it would be wasted work.
            now = time.monotonic()
            for raw in message.get("held_leases", ()):
                index = int(raw)
                note = awaiting.get(index)
                if note is None or note.worker != conn.name:
                    continue
                del awaiting[index]
                conn.leases.add(index)
                leases[index] = _Lease(
                    index, conn, now + self.config.lease_s
                )
                self.stats.readmitted_leases += 1
                self._journal_event(
                    {
                        "kind": "lease",
                        "index": index,
                        "worker": conn.name,
                        "deadline_unix": time.time()
                        + self.config.lease_s,
                        "readmitted": True,
                    }
                )
            conn.send(self._welcome)
        elif kind == "heartbeat":
            now = time.monotonic()
            for raw in message.get("leases", ()):
                index = int(raw)
                lease = leases.get(index)
                if lease is not None and lease.conn is conn:
                    lease.expires_at = now + self.config.lease_s
                    continue
                # A heartbeat can also keep a *recovered* lease alive
                # while the holder finishes re-registering.
                note = awaiting.get(index)
                if note is not None and note.worker == conn.name:
                    note.expires_at = now + self.config.lease_s
        elif kind == "result":
            index = int(message.get("index", -1))
            if index not in cells:
                return  # not ours (stale worker from another run)
            conn.leases.discard(index)
            if conn.suspicion:
                self._journal_event(
                    {
                        "kind": "bench",
                        "worker": conn.name or conn.peer,
                        "suspicion": 0,
                        "penalty_until_unix": 0.0,
                    }
                )
            conn.rehabilitate()
            finish(index, message)
        # Unknown message types are ignored (forward compatibility).
