"""Self-chaos for the fabric: a fault-injecting in-process TCP proxy.

The fabric's robustness claims are only as good as the faults they
were drilled against, so the drill does not mock the network — it
routes real worker connections through this proxy and lets it misbehave
at frame granularity.  The proxy understands exactly one thing about
the traffic: the length-prefixed frame boundary
(:func:`~repro.resilience.transport.split_frames`).  It never parses
payloads, so every fault it injects is one the transport/fabric layers
must survive without semantic help.

Fault families (one :class:`FaultPlan` per run of the drill):

* ``none`` — pass-through (the control arm).
* ``drop`` — delete a deterministic fraction of frames.  A dropped
  lease dispatch strands the coordinator's lease until it expires; a
  dropped result forces a redispatch + duplicate-result dedup; a
  dropped heartbeat is absorbed by the heartbeat/lease ratio.
* ``delay`` — hold frames for a bounded pseudo-random time before
  forwarding (reordering across connections, stale results).
* ``duplicate`` — forward a fraction of frames twice (at-least-once
  delivery made literal; exercises idempotent result dedup).
* ``truncate`` — after a budgeted number of frames, forward only a
  prefix of the next frame and slam both directions shut: the classic
  crash-mid-send.  Workers must reconnect; the coordinator must treat
  the torn frame as a crash, never as data.
* ``partition`` — after a budgeted number of frames, silently blackhole
  one direction while the other keeps flowing (the asymmetric link of
  the message-and-failure-pattern models): heartbeats vanish, leases
  expire, cells get redispatched.

All randomness is ``Random(f"{seed}:{connection}:{direction}")`` —
per-connection, per-direction, deterministic — so a drill failure
replays.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from random import Random

from .transport import TransportError, split_frames

FAULT_KINDS = (
    "none",
    "drop",
    "delay",
    "duplicate",
    "truncate",
    "partition",
)

#: Direction labels, seen from the worker: ``up`` = worker→coordinator
#: (registrations, heartbeats, results), ``down`` = coordinator→worker
#: (welcomes, leases, shutdowns).  ``both`` turns a partition into a
#: full blackhole: the link looks alive (no EOF, no reset) but nothing
#: crosses in either direction — the hung-socket scenario.
UP, DOWN, BOTH = "up", "down", "both"


@dataclass(frozen=True)
class FaultPlan:
    """One fault family, parameterized and seeded.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        seed: determinism seed for every per-frame decision.
        rate: fraction of frames affected (``drop`` / ``delay`` /
            ``duplicate``).
        delay_s: maximum hold time for ``delay``.
        after_frames: per-connection frame budget before ``truncate``
            fires / ``partition`` begins.
        direction: which direction ``partition`` blackholes — ``up``,
            ``down``, or ``both`` for a full hung-socket blackhole
            (``drop``, ``delay``, ``duplicate`` apply to both
            directions regardless).
    """

    kind: str = "none"
    seed: int = 0
    rate: float = 0.15
    delay_s: float = 0.08
    after_frames: int = 12
    direction: str = UP

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.direction not in (UP, DOWN, BOTH):
            raise ValueError(
                f"direction must be {UP!r}, {DOWN!r}, or {BOTH!r}"
            )


@dataclass
class ProxyStats:
    """What the proxy actually did — the drill asserts faults were
    really injected, not just survived vacuously."""

    connections: int = 0
    frames_forwarded: int = 0
    frames_dropped: int = 0
    frames_duplicated: int = 0
    frames_delayed: int = 0
    truncations: int = 0
    partitioned_frames: int = 0

    @property
    def faults_injected(self) -> int:
        return (
            self.frames_dropped
            + self.frames_duplicated
            + self.frames_delayed
            + self.truncations
            + self.partitioned_frames
        )


class _Pipe(threading.Thread):
    """One direction of one proxied connection."""

    def __init__(
        self,
        proxy: "ChaosProxy",
        src: socket.socket,
        dst: socket.socket,
        conn_id: int,
        direction: str,
    ) -> None:
        super().__init__(
            name=f"netchaos-{conn_id}-{direction}", daemon=True
        )
        self.proxy = proxy
        self.src = src
        self.dst = dst
        self.direction = direction
        self.rng = Random(f"{proxy.plan.seed}:{conn_id}:{direction}")
        self.frame_no = 0
        self.partitioned = False

    def run(self) -> None:
        plan = self.proxy.plan
        stats = self.proxy.stats
        buffer = b""
        try:
            while not self.proxy.stopping.is_set():
                try:
                    data = self.src.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                buffer += data
                try:
                    frames, buffer = split_frames(buffer)
                except TransportError:
                    # Not our protocol (or already-torn bytes): pass
                    # raw and let the endpoint decide.
                    frames, buffer = [buffer], b""
                for frame in frames:
                    self.frame_no += 1
                    if not self._forward(frame, plan, stats):
                        return  # truncation closed the connection
        finally:
            self._shut(self.src)
            self._shut(self.dst)

    # -- per-frame fault decision ---------------------------------------

    def _forward(self, frame: bytes, plan: FaultPlan, stats) -> bool:
        if self.partitioned:
            with self.proxy.lock:
                stats.partitioned_frames += 1
            return True  # swallow silently, keep draining the source
        if plan.kind == "drop" and self.rng.random() < plan.rate:
            with self.proxy.lock:
                stats.frames_dropped += 1
            return True
        if plan.kind == "delay" and self.rng.random() < plan.rate:
            with self.proxy.lock:
                stats.frames_delayed += 1
            time.sleep(plan.delay_s * self.rng.random())
        if (
            plan.kind == "truncate"
            and self.frame_no > plan.after_frames
        ):
            with self.proxy.lock:
                stats.truncations += 1
            torn = frame[: max(1, len(frame) // 2)]
            try:
                self.dst.sendall(torn)
            except OSError:
                pass
            return False  # run() shuts both sockets: crash-mid-send
        if (
            plan.kind == "partition"
            and plan.direction in (self.direction, BOTH)
            and self.frame_no > plan.after_frames
        ):
            self.partitioned = True
            with self.proxy.lock:
                stats.partitioned_frames += 1
            return True
        copies = 1
        if plan.kind == "duplicate" and self.rng.random() < plan.rate:
            with self.proxy.lock:
                stats.frames_duplicated += 1
            copies = 2
        try:
            for _ in range(copies):
                self.dst.sendall(frame)
        except OSError:
            return False
        with self.proxy.lock:
            stats.frames_forwarded += 1
        return True

    @staticmethod
    def _shut(sock: socket.socket) -> None:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass


class ChaosProxy:
    """Accept on one address, forward (faultily) to another.

    Usage::

        proxy = ChaosProxy(target=coordinator.address,
                           plan=FaultPlan(kind="drop", seed=7))
        host, port = proxy.start()
        # point workers at (host, port) instead of the coordinator
        ...
        proxy.stop()

    The proxy accepts any number of sequential or concurrent
    connections (workers reconnect through it after faults), each
    pumped by a pair of daemon threads.
    """

    def __init__(
        self,
        target: tuple[str, int],
        plan: FaultPlan | None = None,
        *,
        listen: tuple[str, int] = ("127.0.0.1", 0),
    ) -> None:
        self.target = target
        self.plan = plan or FaultPlan()
        self.stats = ProxyStats()
        self.stopping = threading.Event()
        self.lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(listen)
        self._listener.listen(16)
        self._accept_thread: threading.Thread | None = None
        self._pipes: list[_Pipe] = []

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="netchaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        conn_id = 0
        while not self.stopping.is_set():
            try:
                inbound, _ = self._listener.accept()
            except OSError:
                return
            try:
                outbound = socket.create_connection(
                    self.target, timeout=5.0
                )
            except OSError:
                _Pipe._shut(inbound)
                continue
            for sock in (inbound, outbound):
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            conn_id += 1
            with self.lock:
                self.stats.connections += 1
            up = _Pipe(self, inbound, outbound, conn_id, UP)
            down = _Pipe(self, outbound, inbound, conn_id, DOWN)
            self._pipes += [up, down]
            up.start()
            down.start()

    def stop(self) -> None:
        self.stopping.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        for pipe in self._pipes:
            _Pipe._shut(pipe.src)
            _Pipe._shut(pipe.dst)
        for pipe in self._pipes:
            pipe.join(timeout=1.0)

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
