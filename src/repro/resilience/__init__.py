"""Resilience layer: supervised fan-out, budgets, and durable progress.

The paper's construction keeps computation wait-free by pushing every
crash-prone step onto supervised helpers; this package applies the same
discipline to the harness's own long-running workloads.  Campaigns and
deep explorations fan work out through a :class:`SupervisedPool` whose
workers run under :class:`CellBudget` watchdogs, failed work is retried
with deterministic backoff and quarantined with a triaged kind instead
of aborting the sweep, and progress is journaled append-only so an
interrupted run resumes exactly where it stopped.

* :mod:`~repro.resilience.supervisor` — the pool: per-worker pipes,
  crash detection and attribution, retry/backoff/jitter, quarantine.
* :mod:`~repro.resilience.budget` — in-worker wall-clock and RSS
  watchdogs with distinct kill exit codes.
* :mod:`~repro.resilience.journal` — append-only JSONL campaign
  journals with fingerprint-pinned resume, idempotent appends,
  CRC32-checked records, and the coordinator's control-plane log
  (lease/expiry/bench events + :func:`recover_control_state`).
* :mod:`~repro.resilience.transport` — length-prefixed JSON frames,
  the fabric's wire protocol (torn frames are survivable, not errors).
* :mod:`~repro.resilience.fabric` — the multi-host coordinator:
  lease-based at-least-once dispatch, idempotent result dedup,
  worker suspicion, graceful degradation to the local pool.
* :mod:`~repro.resilience.worker` — the remote worker agent
  (``python -m repro worker --connect HOST:PORT``) with deterministic
  reconnect backoff, heartbeat-renewed leases, a bounded result spool
  replayed idempotently after outages, and graceful SIGTERM drain.
* :mod:`~repro.resilience.netchaos` — the fault-injecting frame proxy
  the fabric drill routes real traffic through (drop / delay /
  duplicate / truncate / partition).
"""

from .budget import (
    EXIT_OOM,
    EXIT_TIMEOUT,
    BudgetWatchdog,
    CellBudget,
    current_rss_mb,
)
from .fabric import (
    PARTITION_KIND,
    FabricConfig,
    FabricCoordinator,
    FabricStats,
)
from .journal import (
    CONTROL_KINDS,
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    CampaignJournal,
    ControlPlaneState,
    JournalScan,
    RecoveredLease,
    atomic_write_bytes,
    atomic_write_text,
    campaign_fingerprint,
    load_journal,
    record_crc,
    record_fingerprint,
    recover_control_state,
    scan_journal,
)
from .netchaos import FAULT_KINDS, ChaosProxy, FaultPlan, ProxyStats
from .supervisor import (
    EXIT_RESUMABLE,
    FAIL_CRASH,
    FAIL_FLAKY,
    FAIL_OOM,
    FAIL_TIMEOUT,
    AttemptFailure,
    JobResult,
    RetryPolicy,
    SupervisedPool,
    backoff_schedule,
    triage,
)
from .transport import (
    FrameConnection,
    FrameDecoder,
    TransportClosed,
    TransportError,
    connect_framed,
    encode_frame,
    parse_endpoint,
    split_frames,
)
from .worker import (
    ResultSpool,
    WorkerStats,
    reconnect_delay_s,
    run_worker,
    serve_connection,
)

__all__ = [
    "PARTITION_KIND",
    "FabricConfig",
    "FabricCoordinator",
    "FabricStats",
    "FAULT_KINDS",
    "ChaosProxy",
    "FaultPlan",
    "ProxyStats",
    "record_fingerprint",
    "FrameConnection",
    "FrameDecoder",
    "TransportClosed",
    "TransportError",
    "connect_framed",
    "encode_frame",
    "parse_endpoint",
    "split_frames",
    "ResultSpool",
    "WorkerStats",
    "reconnect_delay_s",
    "run_worker",
    "serve_connection",
    "EXIT_OOM",
    "EXIT_TIMEOUT",
    "BudgetWatchdog",
    "CellBudget",
    "current_rss_mb",
    "CONTROL_KINDS",
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "CampaignJournal",
    "ControlPlaneState",
    "JournalScan",
    "RecoveredLease",
    "atomic_write_bytes",
    "atomic_write_text",
    "campaign_fingerprint",
    "load_journal",
    "record_crc",
    "recover_control_state",
    "scan_journal",
    "EXIT_RESUMABLE",
    "FAIL_CRASH",
    "FAIL_FLAKY",
    "FAIL_OOM",
    "FAIL_TIMEOUT",
    "AttemptFailure",
    "JobResult",
    "RetryPolicy",
    "SupervisedPool",
    "backoff_schedule",
    "triage",
]
