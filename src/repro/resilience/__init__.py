"""Resilience layer: supervised fan-out, budgets, and durable progress.

The paper's construction keeps computation wait-free by pushing every
crash-prone step onto supervised helpers; this package applies the same
discipline to the harness's own long-running workloads.  Campaigns and
deep explorations fan work out through a :class:`SupervisedPool` whose
workers run under :class:`CellBudget` watchdogs, failed work is retried
with deterministic backoff and quarantined with a triaged kind instead
of aborting the sweep, and progress is journaled append-only so an
interrupted run resumes exactly where it stopped.

* :mod:`~repro.resilience.supervisor` — the pool: per-worker pipes,
  crash detection and attribution, retry/backoff/jitter, quarantine.
* :mod:`~repro.resilience.budget` — in-worker wall-clock and RSS
  watchdogs with distinct kill exit codes.
* :mod:`~repro.resilience.journal` — append-only JSONL campaign
  journals with fingerprint-pinned resume.
"""

from .budget import (
    EXIT_OOM,
    EXIT_TIMEOUT,
    BudgetWatchdog,
    CellBudget,
    current_rss_mb,
)
from .journal import (
    JOURNAL_FORMAT,
    JOURNAL_VERSION,
    CampaignJournal,
    atomic_write_bytes,
    atomic_write_text,
    campaign_fingerprint,
    load_journal,
)
from .supervisor import (
    EXIT_RESUMABLE,
    FAIL_CRASH,
    FAIL_FLAKY,
    FAIL_OOM,
    FAIL_TIMEOUT,
    AttemptFailure,
    JobResult,
    RetryPolicy,
    SupervisedPool,
    backoff_schedule,
    triage,
)

__all__ = [
    "EXIT_OOM",
    "EXIT_TIMEOUT",
    "BudgetWatchdog",
    "CellBudget",
    "current_rss_mb",
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "CampaignJournal",
    "atomic_write_bytes",
    "atomic_write_text",
    "campaign_fingerprint",
    "load_journal",
    "EXIT_RESUMABLE",
    "FAIL_CRASH",
    "FAIL_FLAKY",
    "FAIL_OOM",
    "FAIL_TIMEOUT",
    "AttemptFailure",
    "JobResult",
    "RetryPolicy",
    "SupervisedPool",
    "backoff_schedule",
    "triage",
]
