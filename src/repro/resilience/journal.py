"""Append-only JSONL progress journals, the campaign resume substrate.

A journal mirrors the paper's discipline of separating crash-prone work
from durable state: every completed cell is appended (and fsynced) the
moment its outcome is known, so a SIGKILLed worker, an OOMed host, or a
Ctrl-C'd orchestrator loses at most the cells that were in flight.
``python -m repro chaos run --resume <journal>`` replays the journal's
completed cells into the report and executes only the remainder; the
final report is byte-identical to an uninterrupted run because cell
outcomes are fully determined by their specs.

Beyond cell outcomes, the journal doubles as the fabric coordinator's
*control-plane log*: lease grants, lease expiries, worker bench events,
and spool replays are appended alongside cells, so a coordinator that
dies with a SIGKILL can be restarted with ``--resume`` and rebuild its
lease table, dedup set, and suspicion state from disk
(:func:`recover_control_state`).

Line format (one JSON object per line, each carrying a CRC32 ``crc``):

* header — ``{"kind": "header", "format": ..., "version": ...,
  "campaign": name, "fingerprint": <sha256 over the enumerated cell
  specs>, "cells": N}``
* cell — ``{"kind": "cell", "index": i, "outcome": ..., "detail": ...,
  "steps": ..., "attempts": k, "cell": <CellSpec JSON>}``
* lease — ``{"kind": "lease", "index": i, "worker": name,
  "deadline_unix": t}`` (a dispatch; ``"readmitted": true`` when the
  lease was re-bound to a reconnecting holder after recovery)
* expiry — ``{"kind": "expiry", "index": i, "worker": name}``
* bench — ``{"kind": "bench", "worker": name, "suspicion": n,
  "penalty_until_unix": t}`` (``suspicion: 0`` is rehabilitation)
* spool — ``{"kind": "spool", "index": i, "worker": name}`` (a result
  that arrived from a worker's local spool rather than a live lease)

A torn trailing line (crash mid-append) is tolerated and ignored on
load.  A corrupt record *before* the tail (bit rot, a flipped byte) is
caught by its CRC32, quarantined, and skipped — the rest of the journal
stays readable.  The fingerprint pins the journal to one exact
campaign: resuming against a different spec, seed, or cell limit is
refused instead of silently mixing sweeps.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import ResilienceError

JOURNAL_FORMAT = "repro-chaos-journal"
# Version 2 adds the mandatory per-record CRC32 suffix and the
# control-plane event kinds.  Version-1 journals (no ``crc`` fields)
# still load — they simply get no mid-file corruption detection.
JOURNAL_VERSION = 2

#: Journal record kinds that carry coordinator control-plane state.
CONTROL_KINDS = ("lease", "expiry", "bench", "spool")


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace``, so readers never observe a half-written file."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Binary sibling of :func:`atomic_write_text` (explorer
    checkpoints must never be observable half-written either)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return path


def campaign_fingerprint(
    name: str, cells: Iterable[Any], strict_traces: bool
) -> str:
    """Stable identity of one enumerated campaign (order included)."""
    payload = json.dumps(
        {
            "name": name,
            "strict_traces": strict_traces,
            "cells": [cell.to_json() for cell in cells],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def record_fingerprint(record: Mapping[str, Any]) -> str:
    """Canonical dedup key of one journal record: sha256 over its
    sorted JSON.  Retried and redispatched cells are deterministic
    re-executions, so their records hash identically — the fabric's
    at-least-once delivery becomes exactly-once durability."""
    payload = json.dumps(
        dict(record), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def record_crc(record: Mapping[str, Any]) -> int:
    """CRC32 of a record's canonical JSON, excluding the ``crc`` field
    itself.  Cheap enough to compute per append, strong enough to catch
    the flipped byte / truncated rewrite that still parses as JSON."""
    body = {key: value for key, value in record.items() if key != "crc"}
    payload = json.dumps(
        body, ensure_ascii=False, sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class JournalScan:
    """Everything a recovery pass needs from one journal read.

    ``entries`` preserves file order — which *is* time order, because
    the journal is append-only across coordinator restarts.  ``cells``
    keeps the last record per index (re-runs of the same cell are
    byte-identical anyway).  ``corrupt_records`` counts quarantined
    mid-file records; ``torn_tail`` flags a crash mid-append."""

    path: Path
    header: dict[str, Any]
    entries: list[dict[str, Any]] = field(default_factory=list)
    cells: dict[int, dict[str, Any]] = field(default_factory=dict)
    corrupt_records: int = 0
    torn_tail: bool = False

    def events(self, *kinds: str) -> list[dict[str, Any]]:
        """Entries of the given kinds (all control kinds by default),
        in file order."""
        wanted = kinds or CONTROL_KINDS
        return [e for e in self.entries if e.get("kind") in wanted]


@dataclass(frozen=True)
class RecoveredLease:
    """A lease that was outstanding when the coordinator died."""

    index: int
    worker: str
    deadline_unix: float


@dataclass
class ControlPlaneState:
    """Coordinator state reconstructed from the journal by
    :func:`recover_control_state`.

    ``completed`` are journaled cell indices (never redispatched);
    ``leases`` are grants with no matching expiry or cell record —
    their holders may still be computing and must be given a chance to
    reconnect before the cells are requeued; ``suspicion`` is the last
    journaled bench state per worker name."""

    completed: set[int] = field(default_factory=set)
    leases: dict[int, RecoveredLease] = field(default_factory=dict)
    #: worker name -> (suspicion count, penalty deadline, unix time)
    suspicion: dict[str, tuple[int, float]] = field(default_factory=dict)


def scan_journal(path: str | Path) -> JournalScan:
    """Read a journal defensively: CRC-check every record, quarantine
    corrupt mid-file records, tolerate a torn trailing line.

    The header must survive — a journal whose first line is unreadable
    identifies nothing and is refused.  In version-2 journals every
    record must carry a *valid* ``crc``: a missing checksum is itself
    corruption (a bit flip can mangle the ``crc`` key and would
    otherwise smuggle an unchecked record through).  Version-1 journals
    (written before checksums existed) load unchecked.
    """
    path = Path(path)
    try:
        raw_lines = path.read_bytes().splitlines()
    except OSError as exc:
        raise ResilienceError(f"cannot read journal {path}: {exc}") from exc
    scan: JournalScan | None = None
    checked = False  # version >= 2: records must carry a valid crc
    for lineno, raw_bytes in enumerate(raw_lines):
        if not raw_bytes.strip():
            continue
        last = lineno == len(raw_lines) - 1
        try:
            # Decode per line: a crash can tear the tail *inside* a
            # UTF-8 multibyte sequence, which must read as a torn line,
            # not as a corrupt journal.
            line = json.loads(raw_bytes.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            if last:
                if scan is not None:
                    scan.torn_tail = True
                    break
            if scan is None:
                raise ResilienceError(
                    f"{path}:{lineno + 1}: corrupt journal header"
                ) from exc
            scan.corrupt_records += 1
            continue
        if not isinstance(line, dict):
            if scan is None:
                raise ResilienceError(
                    f"{path}:{lineno + 1}: corrupt journal header"
                )
            scan.corrupt_records += 1
            continue
        if "crc" in line and line["crc"] != record_crc(line):
            if scan is None:
                raise ResilienceError(
                    f"{path}:{lineno + 1}: journal header fails its CRC"
                )
            if last:
                scan.torn_tail = True
                break
            scan.corrupt_records += 1
            continue
        kind = line.get("kind")
        if kind == "header":
            if line.get("format") != JOURNAL_FORMAT:
                raise ResilienceError(
                    f"{path}: not a {JOURNAL_FORMAT} document"
                )
            version = line.get("version")
            if version not in (1, JOURNAL_VERSION):
                raise ResilienceError(
                    f"{path}: unsupported journal version {version!r}"
                )
            checked = version >= 2
            if checked and "crc" not in line:
                raise ResilienceError(
                    f"{path}:{lineno + 1}: journal header fails its CRC"
                )
            scan = JournalScan(path=path, header=line)
            continue
        if scan is None:
            raise ResilienceError(f"{path}: journal has no header line")
        if checked and "crc" not in line:
            if last:
                scan.torn_tail = True
                break
            scan.corrupt_records += 1
            continue
        scan.entries.append(line)
        if kind == "cell":
            scan.cells[int(line["index"])] = line
    if scan is None:
        raise ResilienceError(f"{path}: journal has no header line")
    return scan


def load_journal(
    path: str | Path,
) -> tuple[dict[str, Any], dict[int, dict[str, Any]]]:
    """Read a journal back: ``(header, {cell index: cell line})``.

    Thin wrapper over :func:`scan_journal` keeping the historical
    signature; corrupt mid-file records are quarantined, not fatal.
    """
    scan = scan_journal(path)
    return scan.header, scan.cells


def recover_control_state(scan: JournalScan) -> ControlPlaneState:
    """Replay the control-plane log into coordinator state.

    The walk is a single forward pass in file order: a lease grant adds
    to the lease table, a matching expiry or completed cell removes it,
    and the last bench record per worker wins (``suspicion: 0`` clears
    it).  This is the Simple-CHT move — the restarted observer extracts
    what it needs from persisted history instead of trusting anything
    volatile.
    """
    state = ControlPlaneState()
    for entry in scan.entries:
        kind = entry.get("kind")
        if kind == "cell":
            index = int(entry["index"])
            state.completed.add(index)
            state.leases.pop(index, None)
        elif kind == "lease":
            index = int(entry["index"])
            if index not in state.completed:
                state.leases[index] = RecoveredLease(
                    index=index,
                    worker=str(entry.get("worker", "")),
                    deadline_unix=float(entry.get("deadline_unix", 0.0)),
                )
        elif kind == "expiry":
            state.leases.pop(int(entry["index"]), None)
        elif kind == "bench":
            worker = str(entry.get("worker", ""))
            suspicion = int(entry.get("suspicion", 0))
            if suspicion <= 0:
                state.suspicion.pop(worker, None)
            else:
                state.suspicion[worker] = (
                    suspicion,
                    float(entry.get("penalty_until_unix", 0.0)),
                )
    return state


class CampaignJournal:
    """Append-only writer; durable after every :meth:`append_cell`.

    Appends are *idempotent by fingerprint*: every record line carries
    a dedup key, the writer remembers the keys it has seen (including
    across :meth:`reopen`, which reloads them from disk), and a
    duplicate :meth:`append_idempotent` is a no-op.  At-least-once
    producers — supervised retries, fabric redispatches — can therefore
    all write through the same journal without double-counting.

    Control-plane events (:meth:`append_event`) are deliberately *not*
    idempotent: every grant/expiry/bench is a distinct point in time,
    and recovery replays them in order."""

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None
        self._seen: set[str] = set()

    def open(self, header: Mapping[str, Any]) -> "CampaignJournal":
        """Create/truncate the journal and write its header line."""
        self._handle = open(self.path, "w", encoding="utf-8")
        self._seen = set()
        self._append(
            {
                "kind": "header",
                "format": JOURNAL_FORMAT,
                "version": JOURNAL_VERSION,
                **dict(header),
            }
        )
        return self

    def reopen(self) -> "CampaignJournal":
        """Continue appending to an existing journal (resume mode),
        reloading the already-written fingerprints so idempotence
        holds across the interruption."""
        scan = scan_journal(self.path)
        self._seen = {
            line["fingerprint"]
            for line in scan.cells.values()
            if "fingerprint" in line
        }
        self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def _append(self, line: Mapping[str, Any]) -> None:
        assert self._handle is not None, "journal not opened"
        record = dict(line)
        record["crc"] = record_crc(record)
        # ensure_ascii=False: details may carry non-ASCII (detector
        # names, ψ-stabilization notes), and emitting real UTF-8 means
        # a crash can tear the tail *inside* a multibyte sequence —
        # scan_journal treats that as a torn line, not corruption.
        self._handle.write(
            json.dumps(record, ensure_ascii=False, separators=(",", ":"))
            + "\n"
        )
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append_idempotent(
        self, fingerprint: str, record: Mapping[str, Any]
    ) -> bool:
        """Durably append ``record`` unless a record with this
        ``fingerprint`` was already written (in this session or, after
        :meth:`reopen`, a previous one).  Returns True when the record
        was actually appended.

        This is *the* dedup API: callers must not re-derive their own
        keys ad hoc — pass :func:`record_fingerprint` of the identity-
        determining fields (the fabric uses the cell spec; attempt
        counters and timings stay out of the key).
        """
        if fingerprint in self._seen:
            return False
        self._seen.add(fingerprint)
        self._append({**dict(record), "fingerprint": fingerprint})
        return True

    def append_event(self, record: Mapping[str, Any]) -> None:
        """Durably append one control-plane event (lease grant, lease
        expiry, bench, spool replay).  Not deduplicated: events are
        points in time and recovery replays them in file order."""
        self._append(dict(record))

    def append_cell(
        self,
        index: int,
        *,
        outcome: str,
        detail: str,
        steps: int,
        attempts: int,
        cell_json: Mapping[str, Any],
    ) -> bool:
        """Append one completed campaign cell (idempotently: the dedup
        key is the cell's index + spec, so a redispatched or retried
        cell lands in the journal exactly once)."""
        fingerprint = record_fingerprint(
            {"index": index, "cell": dict(cell_json)}
        )
        return self.append_idempotent(
            fingerprint,
            {
                "kind": "cell",
                "index": index,
                "outcome": outcome,
                "detail": detail,
                "steps": steps,
                "attempts": attempts,
                "cell": dict(cell_json),
            },
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
