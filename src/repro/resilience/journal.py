"""Append-only JSONL progress journals, the campaign resume substrate.

A journal mirrors the paper's discipline of separating crash-prone work
from durable state: every completed cell is appended (and fsynced) the
moment its outcome is known, so a SIGKILLed worker, an OOMed host, or a
Ctrl-C'd orchestrator loses at most the cells that were in flight.
``python -m repro chaos run --resume <journal>`` replays the journal's
completed cells into the report and executes only the remainder; the
final report is byte-identical to an uninterrupted run because cell
outcomes are fully determined by their specs.

Line format (one JSON object per line):

* header — ``{"kind": "header", "format": ..., "version": ...,
  "campaign": name, "fingerprint": <sha256 over the enumerated cell
  specs>, "cells": N}``
* cell — ``{"kind": "cell", "index": i, "outcome": ..., "detail": ...,
  "steps": ..., "attempts": k, "cell": <CellSpec JSON>}``

A torn trailing line (crash mid-append) is tolerated and ignored on
load.  The fingerprint pins the journal to one exact campaign: resuming
against a different spec, seed, or cell limit is refused instead of
silently mixing sweeps.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import ResilienceError

JOURNAL_FORMAT = "repro-chaos-journal"
JOURNAL_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace``, so readers never observe a half-written file."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Binary sibling of :func:`atomic_write_text` (explorer
    checkpoints must never be observable half-written either)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return path


def campaign_fingerprint(
    name: str, cells: Iterable[Any], strict_traces: bool
) -> str:
    """Stable identity of one enumerated campaign (order included)."""
    payload = json.dumps(
        {
            "name": name,
            "strict_traces": strict_traces,
            "cells": [cell.to_json() for cell in cells],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def record_fingerprint(record: Mapping[str, Any]) -> str:
    """Canonical dedup key of one journal record: sha256 over its
    sorted JSON.  Retried and redispatched cells are deterministic
    re-executions, so their records hash identically — the fabric's
    at-least-once delivery becomes exactly-once durability."""
    payload = json.dumps(
        dict(record), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class CampaignJournal:
    """Append-only writer; durable after every :meth:`append_cell`.

    Appends are *idempotent by fingerprint*: every record line carries
    a dedup key, the writer remembers the keys it has seen (including
    across :meth:`reopen`, which reloads them from disk), and a
    duplicate :meth:`append_idempotent` is a no-op.  At-least-once
    producers — supervised retries, fabric redispatches — can therefore
    all write through the same journal without double-counting."""

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None
        self._seen: set[str] = set()

    def open(self, header: Mapping[str, Any]) -> "CampaignJournal":
        """Create/truncate the journal and write its header line."""
        self._handle = open(self.path, "w", encoding="utf-8")
        self._seen = set()
        self._append(
            {
                "kind": "header",
                "format": JOURNAL_FORMAT,
                "version": JOURNAL_VERSION,
                **dict(header),
            }
        )
        return self

    def reopen(self) -> "CampaignJournal":
        """Continue appending to an existing journal (resume mode),
        reloading the already-written fingerprints so idempotence
        holds across the interruption."""
        _, cells = load_journal(self.path)
        self._seen = {
            line["fingerprint"]
            for line in cells.values()
            if "fingerprint" in line
        }
        self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def _append(self, line: Mapping[str, Any]) -> None:
        assert self._handle is not None, "journal not opened"
        # ensure_ascii=False: details may carry non-ASCII (detector
        # names, ψ-stabilization notes), and emitting real UTF-8 means
        # a crash can tear the tail *inside* a multibyte sequence —
        # load_journal treats that as a torn line, not corruption.
        self._handle.write(
            json.dumps(line, ensure_ascii=False, separators=(",", ":"))
            + "\n"
        )
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def append_idempotent(
        self, fingerprint: str, record: Mapping[str, Any]
    ) -> bool:
        """Durably append ``record`` unless a record with this
        ``fingerprint`` was already written (in this session or, after
        :meth:`reopen`, a previous one).  Returns True when the record
        was actually appended.

        This is *the* dedup API: callers must not re-derive their own
        keys ad hoc — pass :func:`record_fingerprint` of the identity-
        determining fields (the fabric uses the cell spec; attempt
        counters and timings stay out of the key).
        """
        if fingerprint in self._seen:
            return False
        self._seen.add(fingerprint)
        self._append({**dict(record), "fingerprint": fingerprint})
        return True

    def append_cell(
        self,
        index: int,
        *,
        outcome: str,
        detail: str,
        steps: int,
        attempts: int,
        cell_json: Mapping[str, Any],
    ) -> bool:
        """Append one completed campaign cell (idempotently: the dedup
        key is the cell's index + spec, so a redispatched or retried
        cell lands in the journal exactly once)."""
        fingerprint = record_fingerprint(
            {"index": index, "cell": dict(cell_json)}
        )
        return self.append_idempotent(
            fingerprint,
            {
                "kind": "cell",
                "index": index,
                "outcome": outcome,
                "detail": detail,
                "steps": steps,
                "attempts": attempts,
                "cell": dict(cell_json),
            },
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(
    path: str | Path,
) -> tuple[dict[str, Any], dict[int, dict[str, Any]]]:
    """Read a journal back: ``(header, {cell index: cell line})``.

    A torn trailing line is skipped; a torn line *before* valid lines
    (which cannot happen with append-only writes) is an error.  Re-runs
    of the same cell keep the last record.
    """
    path = Path(path)
    try:
        raw_lines = path.read_bytes().splitlines()
    except OSError as exc:
        raise ResilienceError(f"cannot read journal {path}: {exc}") from exc
    header: dict[str, Any] | None = None
    cells: dict[int, dict[str, Any]] = {}
    for lineno, raw_bytes in enumerate(raw_lines):
        if not raw_bytes.strip():
            continue
        try:
            # Decode per line: a crash can tear the tail *inside* a
            # UTF-8 multibyte sequence, which must read as a torn line,
            # not as a corrupt journal.
            line = json.loads(raw_bytes.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            if lineno == len(raw_lines) - 1:
                break  # torn trailing line: the crash we exist to survive
            raise ResilienceError(
                f"{path}:{lineno + 1}: corrupt journal line"
            ) from exc
        kind = line.get("kind")
        if kind == "header":
            if line.get("format") != JOURNAL_FORMAT:
                raise ResilienceError(
                    f"{path}: not a {JOURNAL_FORMAT} document"
                )
            if line.get("version") != JOURNAL_VERSION:
                raise ResilienceError(
                    f"{path}: unsupported journal version "
                    f"{line.get('version')!r}"
                )
            header = line
        elif kind == "cell":
            cells[int(line["index"])] = line
    if header is None:
        raise ResilienceError(f"{path}: journal has no header line")
    return header, cells
