"""Length-prefixed JSON frames: the fabric's wire protocol.

The multi-host campaign fabric (:mod:`repro.resilience.fabric`) speaks
one deliberately boring protocol: every message is a single JSON object
encoded as UTF-8 and prefixed with its byte length as a 4-byte
big-endian unsigned integer.  Boring is the point — the frame boundary
is explicit, so a receiver can always tell "I have a whole message"
from "the sender died mid-frame", and the chaos proxy
(:mod:`repro.resilience.netchaos`) can drop, duplicate, delay, or tear
individual frames without having to understand their contents.

Three layers, smallest first:

* :func:`encode_frame` / :func:`split_frames` — pure bytes-level
  framing, shared by everything (including the chaos proxy, which
  forwards frames it never parses).
* :class:`FrameDecoder` — incremental decoder for non-blocking readers
  (the coordinator feeds it whatever ``recv`` returned and gets back
  complete messages).
* :class:`FrameConnection` — a blocking socket wrapper with a send
  lock, used by workers (whose heartbeat thread and main loop share
  one socket).

A torn frame — the stream ends inside a length prefix or payload — is
*not* an error at this layer; it is the crash signature the fabric is
built to survive.  Decoders simply report that no further message is
available, and the connection-level reader raises
:class:`TransportClosed` so callers enter their reconnect path.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Iterable

from ..errors import ResilienceError

#: Frame length prefix: 4-byte big-endian unsigned int.
LENGTH_PREFIX = struct.Struct(">I")

#: Upper bound on one frame's payload.  Campaign cells and records are
#: a few hundred bytes; anything near this bound is a corrupt or
#: hostile stream, not a message.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class TransportError(ResilienceError):
    """A malformed frame (oversized, not JSON, not an object)."""


class TransportClosed(ResilienceError):
    """The peer went away (EOF, reset, or a torn frame at EOF)."""


def encode_frame(message: Any) -> bytes:
    """Serialize one JSON-able message to ``length || payload`` bytes."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


def split_frames(buffer: bytes) -> tuple[list[bytes], bytes]:
    """Split ``buffer`` into complete raw frames (prefix included) and
    the unconsumed tail.  Used by the chaos proxy, which injects faults
    at frame granularity without parsing payloads."""
    frames: list[bytes] = []
    offset = 0
    while len(buffer) - offset >= LENGTH_PREFIX.size:
        (length,) = LENGTH_PREFIX.unpack_from(buffer, offset)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame length {length} exceeds the "
                f"{MAX_FRAME_BYTES}-byte bound"
            )
        end = offset + LENGTH_PREFIX.size + length
        if len(buffer) < end:
            break
        frames.append(buffer[offset:end])
        offset = end
    return frames, buffer[offset:]


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Decode one frame payload into a message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise TransportError(
            f"frame payload is {type(message).__name__}, expected object"
        )
    return message


class FrameDecoder:
    """Incremental frame decoder for non-blocking readers.

    Feed it whatever bytes arrived; it yields every complete message
    and buffers the rest.  A partial frame left in the buffer when the
    peer disconnects is a torn frame — the caller treats the
    disconnect exactly like any other crash.
    """

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        frames, self._buffer = split_frames(self._buffer + data)
        return [decode_payload(frame[LENGTH_PREFIX.size:]) for frame in frames]

    @property
    def torn(self) -> bool:
        """True when a partial frame is buffered (peer died mid-send)."""
        return bool(self._buffer)


class FrameConnection:
    """Blocking framed connection over a TCP socket.

    ``send`` is serialized by an internal lock so a worker's heartbeat
    thread and its main loop can share the socket without interleaving
    frame bytes.  ``recv`` blocks up to ``timeout`` seconds and returns
    ``None`` on timeout (so callers can interleave housekeeping), or
    raises :class:`TransportClosed` when the peer is gone.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        self._decoder = FrameDecoder()
        self._ready: list[dict[str, Any]] = []

    def send(self, message: Any) -> None:
        frame = encode_frame(message)
        with self._send_lock:
            try:
                self.sock.sendall(frame)
            except OSError as exc:
                raise TransportClosed(f"send failed: {exc}") from exc

    def recv(self, timeout: float | None = None) -> dict[str, Any] | None:
        """Next message, ``None`` on timeout, :class:`TransportClosed`
        on EOF/reset (including EOF inside a frame)."""
        while not self._ready:
            self.sock.settimeout(timeout)
            try:
                data = self.sock.recv(65536)
            except (TimeoutError, socket.timeout):
                return None
            except OSError as exc:
                raise TransportClosed(f"recv failed: {exc}") from exc
            if not data:
                raise TransportClosed(
                    "peer closed mid-frame"
                    if self._decoder.torn
                    else "peer closed"
                )
            self._ready.extend(self._decoder.feed(data))
        return self._ready.pop(0)

    def shutdown(self) -> None:
        """Force both directions shut so any thread blocked in
        ``send``/``recv`` (a heartbeat wedged in ``sendall`` against a
        blackholed peer) wakes up with :class:`TransportClosed`.  Does
        not release the fd — call :meth:`close` afterwards as usual."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:  # already closed/reset is exactly what we want
            pass

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "FrameConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def connect_framed(
    host: str, port: int, *, timeout: float = 5.0
) -> FrameConnection:
    """Dial ``host:port`` and wrap the socket."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return FrameConnection(sock)


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the CLI's ``--connect`` / ``--listen``)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def iter_messages(frames: Iterable[bytes]) -> list[dict[str, Any]]:
    """Decode raw frames (as produced by :func:`split_frames`)."""
    return [decode_payload(frame[LENGTH_PREFIX.size:]) for frame in frames]
