"""Supervised worker pool: crash-isolated fan-out with retry and triage.

This is the resilience layer's answer to the paper's C/S split: the
orchestrator (wait-free, never does dangerous work) supervises a set of
crash-prone workers, and a worker taking a fault — SIGKILL, OOM kill,
budget breach, segfault — costs at most the one job it was running,
never the completed ones.  Contrast ``ProcessPoolExecutor``, whose
``BrokenProcessPool`` abandons every in-flight *and* queued result the
moment any worker dies.

Design points:

* **One pipe per worker, one job in flight per worker.**  No shared
  queues: a SIGKILLed worker cannot die holding a queue lock and hang
  its siblings, and crash attribution is trivial (the job assigned to
  the dead worker is the lost one).
* **Budgets enforced inside the worker** by a
  :class:`~repro.resilience.budget.BudgetWatchdog` that exits the
  process with a distinct code (``EXIT_TIMEOUT`` / ``EXIT_OOM``); the
  supervisor also enforces a hard deadline from outside (kill after a
  grace period) in case a worker wedges so badly its watchdog cannot
  run.
* **Deterministic retry with exponential backoff + jitter.**  The
  jitter is seeded per ``(policy seed, job index, attempt)``, so retry
  schedules are reproducible under a fixed seed (and testable as a pure
  function — :func:`backoff_schedule`).
* **Quarantine, not abort.**  A job that exhausts its retries is
  reported as a failed :class:`JobResult` triaged by failure kind
  (``timeout`` / ``oom`` / ``worker_crash``, or ``flaky`` when attempts
  disagree); the rest of the sweep is unaffected.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection
from random import Random
from typing import Any, Callable, Sequence

from .budget import EXIT_OOM, EXIT_TIMEOUT, BudgetWatchdog, CellBudget

FAIL_TIMEOUT = "timeout"
FAIL_OOM = "oom"
FAIL_CRASH = "worker_crash"
FAIL_FLAKY = "flaky"

#: Process exit code used by orchestrator CLIs for "interrupted, but
#: progress is journaled — rerun with --resume" (EX_TEMPFAIL).
EXIT_RESUMABLE = 75

#: Extra wall-clock the supervisor grants past a worker's in-process
#: deadline before killing it from outside (watchdog-of-the-watchdog).
HARD_DEADLINE_GRACE_S = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """How failed jobs are retried.

    ``max_retries`` is the number of *re*-executions: a job runs at most
    ``max_retries + 1`` times before quarantine.  Delays grow as
    ``backoff_base_s * backoff_factor**attempt`` (capped), stretched by
    up to ``jitter`` fraction of deterministic, per-job pseudo-random
    jitter so retry storms decorrelate without losing reproducibility.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay_s(self, job_index: int, attempt: int) -> float:
        raw = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor**attempt,
        )
        # str-seeded Random hashes with SHA-512: stable across processes
        # and runs, unlike hash() under PYTHONHASHSEED.
        rng = Random(f"{self.seed}:{job_index}:{attempt}")
        return raw * (1.0 + self.jitter * rng.random())


def backoff_schedule(
    policy: RetryPolicy, job_index: int
) -> tuple[float, ...]:
    """The exact delays job ``job_index`` would wait before each retry —
    a pure function of the policy, used by tests and docs."""
    return tuple(
        policy.delay_s(job_index, attempt)
        for attempt in range(policy.max_retries)
    )


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt at a job."""

    kind: str  # timeout | oom | worker_crash
    detail: str


@dataclass
class JobResult:
    """Terminal outcome of one supervised job."""

    index: int
    ok: bool
    value: Any = None  # task_fn return value when ok
    kind: str = ""  # quarantine kind when not ok (see triage())
    detail: str = ""
    attempts: int = 1
    failures: tuple[AttemptFailure, ...] = ()


def triage(failures: Sequence[AttemptFailure]) -> str:
    """Quarantine kind for a job that exhausted its retries: the common
    failure kind, or ``flaky`` when the attempts disagree."""
    kinds = {failure.kind for failure in failures}
    return kinds.pop() if len(kinds) == 1 else FAIL_FLAKY


@dataclass
class _Job:
    index: int
    payload: Any
    attempt: int = 0
    failures: list[AttemptFailure] = field(default_factory=list)
    ready_at: float = 0.0


class _Worker:
    __slots__ = ("proc", "conn", "job", "started_at", "kill_reason")

    def __init__(self, proc: Process, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.job: _Job | None = None
        self.started_at = 0.0
        #: failure kind pre-assigned by a supervisor-side kill, taking
        #: precedence over exit-code classification.
        self.kill_reason: str | None = None


def _worker_main(task_fn, conn, budget: CellBudget) -> None:
    """Worker loop: receive ``(index, payload)`` jobs, run them under
    the budget watchdog, send ``(index, status, value)`` back."""
    # The orchestrator owns interrupt handling; a terminal Ctrl-C must
    # not also unwind the workers mid-send.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    watchdog = BudgetWatchdog(budget)
    watchdog.start()
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        if job is None:
            return
        index, payload = job
        watchdog.arm()
        try:
            status, value = "ok", task_fn(payload)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            status, value = "task_error", f"{type(exc).__name__}: {exc}"
        watchdog.disarm()
        try:
            conn.send((index, status, value))
        except (BrokenPipeError, OSError):
            return  # supervisor is gone; nothing left to report to
        except Exception as exc:  # unpicklable result
            conn.send(
                (
                    index,
                    "task_error",
                    f"result not serializable: {type(exc).__name__}: {exc}",
                )
            )


def _signal_detail(exitcode: int | None) -> str:
    if exitcode is None:
        return "worker vanished"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = f"signal {-exitcode}"
        return f"worker killed by {name}"
    return f"worker exited with code {exitcode}"


def _classify_exit(exitcode: int | None) -> tuple[str, str]:
    if exitcode == EXIT_TIMEOUT:
        return FAIL_TIMEOUT, "per-cell wall-clock deadline exceeded"
    if exitcode == EXIT_OOM:
        return FAIL_OOM, "per-cell RSS budget exceeded"
    return FAIL_CRASH, _signal_detail(exitcode)


class SupervisedPool:
    """Run jobs through supervised worker processes.

    Args:
        task_fn: picklable callable applied to each job payload.
        workers: worker process count.
        budget: per-job :class:`~repro.resilience.budget.CellBudget`
            armed inside every worker (and hard-enforced from outside
            with a grace period).
        retry: :class:`RetryPolicy`; ``None`` uses the defaults.
        kill_job_index: fault-injection hook — SIGKILL the worker
            running this job index on its first attempt (used by the CI
            fault drill and the regression tests; the retry must make
            the sweep complete as if nothing happened).
    """

    def __init__(
        self,
        task_fn: Callable[[Any], Any],
        *,
        workers: int = 2,
        budget: CellBudget | None = None,
        retry: RetryPolicy | None = None,
        kill_job_index: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.task_fn = task_fn
        self.workers = workers
        self.budget = budget or CellBudget()
        self.retry = retry or RetryPolicy()
        self.kill_job_index = kill_job_index
        self._kill_injected = False

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = Pipe()
        proc = Process(
            target=_worker_main,
            args=(self.task_fn, child_conn, self.budget),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _stop_workers(self, workers: list[_Worker]) -> None:
        for worker in workers:
            try:
                if worker.job is None and worker.proc.is_alive():
                    worker.conn.send(None)  # polite: let it exit cleanly
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 1.0
        for worker in workers:
            if worker.job is not None and worker.proc.is_alive():
                worker.proc.terminate()
        for worker in workers:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
            worker.conn.close()

    # -- the supervision loop ------------------------------------------

    def run(
        self,
        jobs: Sequence[tuple[int, Any]],
        *,
        on_result: Callable[[JobResult], None] | None = None,
    ) -> list[JobResult]:
        """Execute ``jobs`` (pairs of ``(index, payload)``); returns one
        terminal :class:`JobResult` per job, ordered by index.

        ``on_result`` fires the moment each job completes (completion
        order, not index order) — the journaling hook.

        ``KeyboardInterrupt`` stops all workers and re-raises; every
        result already delivered through ``on_result`` remains valid.
        """
        pending: deque[_Job] = deque(
            _Job(index, payload) for index, payload in jobs
        )
        total = len(pending)
        results: dict[int, JobResult] = {}
        workers: list[_Worker] = []

        def finish(result: JobResult) -> None:
            results[result.index] = result
            if on_result is not None:
                on_result(result)

        try:
            for _ in range(min(self.workers, max(1, total))):
                workers.append(self._spawn())
            while len(results) < total:
                now = time.monotonic()
                self._assign(workers, pending, now)
                self._await_results(workers, pending, finish)
                self._reap(workers, pending, finish)
        finally:
            self._stop_workers(workers)
        return [results[index] for index in sorted(results)]

    def _assign(
        self, workers: list[_Worker], pending: deque[_Job], now: float
    ) -> None:
        for worker in workers:
            if worker.job is not None or not worker.proc.is_alive():
                continue
            job = self._pop_ready(pending, now)
            if job is None:
                return
            try:
                worker.conn.send((job.index, job.payload))
            except (BrokenPipeError, OSError):
                pending.appendleft(job)  # worker died; reap handles it
                continue
            worker.job = job
            worker.started_at = now
            worker.kill_reason = None
            if (
                self.kill_job_index is not None
                and not self._kill_injected
                and job.index == self.kill_job_index
                and job.attempt == 0
            ):
                # Fault drill: murder the worker we just handed this job.
                self._kill_injected = True
                os.kill(worker.proc.pid, signal.SIGKILL)

    @staticmethod
    def _pop_ready(pending: deque[_Job], now: float) -> _Job | None:
        for _ in range(len(pending)):
            job = pending.popleft()
            if job.ready_at <= now:
                return job
            pending.append(job)  # still backing off
        return None

    def _await_results(
        self,
        workers: list[_Worker],
        pending: deque[_Job],
        finish: Callable[[JobResult], None],
    ) -> None:
        now = time.monotonic()
        timeout = 0.25
        if pending:
            next_ready = min(job.ready_at for job in pending)
            timeout = min(timeout, max(0.0, next_ready - now))
        busy = [w for w in workers if w.job is not None]
        if self.budget.deadline_s is not None:
            hard = self.budget.deadline_s + HARD_DEADLINE_GRACE_S
            for worker in busy:
                expires = worker.started_at + hard
                if now >= expires and worker.proc.is_alive():
                    # The in-worker watchdog failed to fire: kill from
                    # outside, but keep the honest triage.
                    worker.kill_reason = FAIL_TIMEOUT
                    worker.proc.kill()
                else:
                    timeout = min(timeout, max(0.0, expires - now))
        if not busy:
            if timeout > 0:
                time.sleep(min(timeout, 0.05))
            return
        for conn in connection.wait([w.conn for w in busy], timeout):
            worker = next(w for w in busy if w.conn is conn)
            try:
                index, status, value = conn.recv()
            except (EOFError, OSError):
                continue  # died mid-send; _reap classifies it
            job = worker.job
            worker.job = None
            if job is None or index != job.index:  # pragma: no cover
                continue  # stale message from a job we already settled
            if status == "ok":
                finish(
                    JobResult(
                        index=index,
                        ok=True,
                        value=value,
                        attempts=job.attempt + 1,
                        failures=tuple(job.failures),
                    )
                )
            else:  # task_fn raised: deterministic, retrying won't help
                finish(
                    JobResult(
                        index=index,
                        ok=False,
                        kind="task_error",
                        detail=str(value),
                        attempts=job.attempt + 1,
                        failures=tuple(job.failures),
                    )
                )

    def _reap(
        self,
        workers: list[_Worker],
        pending: deque[_Job],
        finish: Callable[[JobResult], None],
    ) -> None:
        for slot, worker in enumerate(workers):
            if worker.proc.is_alive():
                continue
            worker.proc.join()
            job = worker.job
            worker.conn.close()
            if job is not None:
                if worker.kill_reason is not None:
                    kind, detail = (
                        worker.kill_reason,
                        "killed by supervisor: in-worker watchdog "
                        "unresponsive past the grace period",
                    )
                else:
                    kind, detail = _classify_exit(worker.proc.exitcode)
                job.failures.append(AttemptFailure(kind, detail))
                if job.attempt >= self.retry.max_retries:
                    failures = tuple(job.failures)
                    finish(
                        JobResult(
                            index=job.index,
                            ok=False,
                            kind=triage(failures),
                            detail=detail,
                            attempts=job.attempt + 1,
                            failures=failures,
                        )
                    )
                else:
                    delay = self.retry.delay_s(job.index, job.attempt)
                    job.attempt += 1
                    job.ready_at = time.monotonic() + delay
                    pending.append(job)
            workers[slot] = self._spawn()
