"""Per-cell resource budgets, enforced *inside* worker processes.

A supervised worker (see :mod:`repro.resilience.supervisor`) arms a
:class:`BudgetWatchdog` around every job it runs.  The watchdog is a
daemon thread that polls wall-clock time and resident-set size; on a
breach it terminates the whole worker process via :func:`os._exit` with
a distinct exit code, which the supervisor decodes into a ``timeout`` or
``oom`` failure.  Killing the process (rather than trying to unwind the
job) is the only enforcement that works against jobs stuck in an
unbounded *local* computation — precisely the planted-specimen hazards
the chaos tests use — and is safe because a worker owns no shared state:
each one talks to the supervisor over its own pipe and at most one job
is ever in flight on it.

RSS is read from ``/proc/self/statm`` where available (Linux; current
resident pages) and falls back to ``resource.getrusage`` peak RSS, so
budgets degrade gracefully rather than growing a psutil dependency.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

#: Worker exit codes the supervisor decodes into failure kinds.  Chosen
#: away from Python/shell conventions (1, 2, 126..165) so an ordinary
#: crash is never mistaken for a budget kill.
EXIT_TIMEOUT = 87
EXIT_OOM = 88

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


@dataclass(frozen=True)
class CellBudget:
    """Resource envelope for one unit of supervised work.

    Attributes:
        deadline_s: wall-clock budget per attempt; ``None`` = unbounded.
        rss_mb: resident-set budget for the worker process; ``None`` =
            unbounded.  Compared against *current* RSS where the
            platform exposes it, peak RSS otherwise.
        poll_interval_s: watchdog polling period.  Enforcement latency
            is one poll interval, so budgets are accurate to roughly
            this grain — plenty for second-scale deadlines.
    """

    deadline_s: float | None = None
    rss_mb: float | None = None
    poll_interval_s: float = 0.05

    @property
    def bounded(self) -> bool:
        return self.deadline_s is not None or self.rss_mb is not None

    def to_json(self) -> dict:
        return {
            "deadline_s": self.deadline_s,
            "rss_mb": self.rss_mb,
        }

    @classmethod
    def from_json(cls, data) -> "CellBudget":
        return cls(
            deadline_s=data.get("deadline_s"),
            rss_mb=data.get("rss_mb"),
        )


def current_rss_mb() -> float | None:
    """Best-effort resident-set size of this process, in MiB."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; both only matter as fallback.
        return peak / 1024 if peak < 1 << 40 else peak / (1024 * 1024)
    except Exception:  # pragma: no cover - exotic platforms
        return None


class BudgetWatchdog:
    """Arms/disarms budget enforcement around jobs in a worker process.

    One watchdog thread serves the worker's whole lifetime; the worker
    loop calls :meth:`arm` before running a job and :meth:`disarm` after
    it.  The thread is a daemon, so an idle watchdog never blocks worker
    shutdown.
    """

    def __init__(self, budget: CellBudget) -> None:
        self.budget = budget
        self._lock = threading.Lock()
        self._deadline_at: float | None = None
        self._armed = False
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if not self.budget.bounded or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._watch, name="budget-watchdog", daemon=True
        )
        self._thread.start()

    def arm(self) -> None:
        with self._lock:
            self._armed = True
            self._deadline_at = (
                None
                if self.budget.deadline_s is None
                else time.monotonic() + self.budget.deadline_s
            )

    def disarm(self) -> None:
        with self._lock:
            self._armed = False
            self._deadline_at = None

    def _watch(self) -> None:  # pragma: no cover - exits via os._exit
        while True:
            time.sleep(self.budget.poll_interval_s)
            with self._lock:
                armed = self._armed
                deadline_at = self._deadline_at
            if not armed:
                continue
            if deadline_at is not None and time.monotonic() >= deadline_at:
                os._exit(EXIT_TIMEOUT)
            if self.budget.rss_mb is not None:
                rss = current_rss_mb()
                if rss is not None and rss >= self.budget.rss_mb:
                    os._exit(EXIT_OOM)
