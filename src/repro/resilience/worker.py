"""Fabric worker agent: ``python -m repro worker --connect HOST:PORT``.

A worker is the fabric's crash-prone helper: it dials the coordinator,
registers, and then serves leases — receive a cell, execute it, send
the result, heartbeat the lease the whole time.  Everything about it
is built for an unreliable link:

* **Reconnect with capped exponential backoff + deterministic
  jitter.**  The delay schedule is a pure function of ``(seed, worker
  name, attempt)`` — the same :class:`~repro.resilience.supervisor.
  RetryPolicy` arithmetic the supervised pool uses — so reconnect
  storms decorrelate across workers without losing reproducibility.
* **Heartbeats from a side thread.**  Cell execution is synchronous in
  the main loop (at most one lease is ever in flight per worker), and
  a daemon thread renews the lease every ``heartbeat_s`` so a
  long-running cell is never mistaken for a lost one.  The framed
  connection serializes sends, so the two threads share the socket
  safely.
* **Results are expendable.**  If the link dies before a result frame
  lands, the worker just reconnects; the coordinator's lease machinery
  redispatches the cell and its dedup drops whichever execution
  reports second.  Cells are pure functions of their spec, so a
  re-execution is indistinguishable from a retransmission.

The agent is deliberately stateless across connections: the campaign
fingerprint in the coordinator's welcome is remembered only to refuse
cross-campaign confusion after a reconnect lands on a *different*
coordinator behind the same address.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .supervisor import RetryPolicy
from .transport import (
    FrameConnection,
    TransportClosed,
    TransportError,
    connect_framed,
)

#: Reconnect backoff: same deterministic-jitter arithmetic as job
#: retries, but sized for link flaps rather than cell re-runs.
RECONNECT_POLICY = RetryPolicy(
    max_retries=0,  # unused for reconnects; delay_s() is what we share
    backoff_base_s=0.1,
    backoff_factor=2.0,
    backoff_cap_s=5.0,
    jitter=0.5,
)


def reconnect_delay_s(seed: int, name: str, attempt: int) -> float:
    """Delay before reconnect ``attempt`` — a pure function of
    ``(seed, worker name, attempt)``, capped exponential with
    deterministic jitter (tested across process boundaries)."""
    policy = dataclasses.replace(RECONNECT_POLICY, seed=seed)
    # RetryPolicy.delay_s seeds its jitter on (seed, job, attempt);
    # reuse it with a stable per-name pseudo-index so distinct workers
    # get distinct-but-reproducible schedules.
    job_index = sum(name.encode("utf-8")) % 1_000_003
    return policy.delay_s(job_index, min(attempt, 16))


@dataclass
class WorkerStats:
    """Counters mirrored by tests and the chaos drill."""

    connects: int = 0
    reconnects: int = 0
    cells_executed: int = 0
    results_sent: int = 0
    results_lost: int = 0


class _Heartbeater:
    """Daemon thread renewing the in-flight lease every period."""

    def __init__(self, conn: FrameConnection, period_s: float) -> None:
        self._conn = conn
        self._period_s = max(0.05, period_s)
        self._lock = threading.Lock()
        self._leases: set[int] = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat, name="fabric-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def hold(self, index: int) -> None:
        with self._lock:
            self._leases.add(index)

    def release(self, index: int) -> None:
        with self._lock:
            self._leases.discard(index)

    def stop(self) -> None:
        self._stop.set()

    def _beat(self) -> None:
        while not self._stop.wait(self._period_s):
            with self._lock:
                leases = sorted(self._leases)
            if not leases:
                # Idle workers stay silent: leases are what heartbeats
                # renew, and unread idle chatter in the coordinator's
                # buffer can turn its close into a RST that destroys
                # the queued shutdown frame.
                continue
            try:
                self._conn.send({"type": "heartbeat", "leases": leases})
            except TransportClosed:
                return  # main loop notices on its next recv


def _execute_cell(
    cell_json: Mapping[str, Any], strict_traces: bool
) -> dict[str, Any]:
    """Run one cell to a result message (imports deferred so the
    resilience layer keeps no import-time dependency on the chaos
    engine)."""
    from ..chaos.campaign import CellSpec, _run_cell_guarded

    record = _run_cell_guarded(
        (CellSpec.from_json(cell_json), strict_traces)
    )
    return {
        "type": "result",
        "index": -1,  # caller fills in
        "outcome": record.outcome,
        "detail": record.detail,
        "steps": record.steps,
        "attempts": record.attempts,
    }


def serve_connection(
    conn: FrameConnection,
    stats: WorkerStats,
    *,
    execute: Callable[[Mapping[str, Any], bool], dict[str, Any]] =
        _execute_cell,
    expected_fingerprint: str | None = None,
) -> tuple[bool, str]:
    """Serve leases on one established connection until shutdown or
    link death.  Returns ``(shutdown, campaign fingerprint)`` —
    ``shutdown`` True means the coordinator said we are done."""
    welcome = conn.recv(timeout=10.0)
    if welcome is None or welcome.get("type") != "welcome":
        raise TransportClosed("no welcome from coordinator")
    fingerprint = str(welcome.get("fingerprint", ""))
    if expected_fingerprint is not None and fingerprint and (
        fingerprint != expected_fingerprint
    ):
        raise TransportError(
            "coordinator fingerprint changed across reconnect "
            "(different campaign behind the same address)"
        )
    strict_traces = bool(welcome.get("strict_traces", False))
    heartbeat_s = float(welcome.get("heartbeat_s", 1.0))
    heartbeater = _Heartbeater(conn, heartbeat_s)
    heartbeater.start()
    try:
        while True:
            message = conn.recv(timeout=heartbeat_s)
            if message is None:
                continue  # idle tick; heartbeater keeps us visible
            kind = message.get("type")
            if kind == "shutdown":
                return True, fingerprint
            if kind != "lease":
                continue
            index = int(message["index"])
            heartbeater.hold(index)
            try:
                result = execute(message["cell"], strict_traces)
            finally:
                heartbeater.release(index)
            result["index"] = index
            stats.cells_executed += 1
            try:
                conn.send(result)
                stats.results_sent += 1
            except TransportClosed:
                # The execution is not wasted science — the cell is
                # deterministic and the coordinator will redispatch —
                # but this link is done.
                stats.results_lost += 1
                raise
    finally:
        heartbeater.stop()


def run_worker(
    host: str,
    port: int,
    *,
    name: str | None = None,
    seed: int = 0,
    max_attempts: int = 30,
    stats: WorkerStats | None = None,
    execute: Callable[[Mapping[str, Any], bool], dict[str, Any]] =
        _execute_cell,
    log: Callable[[str], None] | None = None,
) -> int:
    """Worker main loop: connect/serve/reconnect until the coordinator
    shuts us down (exit 0) or ``max_attempts`` consecutive failed
    connection attempts (exit 1)."""
    stats = stats if stats is not None else WorkerStats()
    name = name or f"worker-{os.getpid()}"
    say = log or (lambda message: None)
    incarnation = 0
    failures = 0
    fingerprint: str | None = None
    while True:
        try:
            conn = connect_framed(host, port, timeout=5.0)
        except OSError as exc:
            failures += 1
            if failures >= max_attempts:
                say(
                    f"{name}: giving up after {failures} failed "
                    f"connection attempts ({exc})"
                )
                return 1
            delay = reconnect_delay_s(seed, name, failures)
            say(
                f"{name}: connect to {host}:{port} failed ({exc}); "
                f"retrying in {delay:.2f}s"
            )
            time.sleep(delay)
            continue
        failures = 0
        stats.connects += 1
        if incarnation > 0:
            stats.reconnects += 1
        try:
            with conn:
                conn.send(
                    {
                        "type": "register",
                        "name": name,
                        "incarnation": incarnation,
                        "pid": os.getpid(),
                    }
                )
                shutdown, fingerprint = serve_connection(
                    conn,
                    stats,
                    execute=execute,
                    expected_fingerprint=fingerprint,
                )
                if shutdown:
                    say(
                        f"{name}: coordinator shutdown after "
                        f"{stats.cells_executed} cell(s)"
                    )
                    return 0
        except TransportClosed as exc:
            say(f"{name}: link lost ({exc}); reconnecting")
        except TransportError as exc:
            say(f"{name}: protocol error ({exc}); reconnecting fresh")
            fingerprint = None
        incarnation += 1
        time.sleep(reconnect_delay_s(seed, name, 1))
