"""Fabric worker agent: ``python -m repro worker --connect HOST:PORT``.

A worker is the fabric's crash-prone helper: it dials the coordinator,
registers, and then serves leases — receive a cell, execute it, send
the result, heartbeat the lease the whole time.  Everything about it
is built for an unreliable link:

* **Reconnect with capped exponential backoff + deterministic
  jitter.**  The delay schedule is a pure function of ``(seed, worker
  name, attempt)`` — the same :class:`~repro.resilience.supervisor.
  RetryPolicy` arithmetic the supervised pool uses — so reconnect
  storms decorrelate across workers without losing reproducibility.
* **Heartbeats from a side thread.**  Cell execution is synchronous in
  the main loop (at most one lease is ever in flight per worker), and
  a daemon thread renews the lease every ``heartbeat_s`` so a
  long-running cell is never mistaken for a lost one.  The framed
  connection serializes sends, so the two threads share the socket
  safely; on disconnect the thread is joined (with a forced socket
  shutdown as the wake-up of last resort), so a lease-holding
  heartbeat can never outlive its connection.
* **Results are never lost, only late.**  If the link dies before a
  result frame lands, the result goes into a local bounded spool
  (:class:`ResultSpool`, optionally disk-backed) and is replayed —
  flagged ``"spooled": true`` — right after the next welcome.  The
  coordinator's ``record_fingerprint`` dedup makes the replay
  idempotent, so a coordinator outage loses zero completed work.
* **Graceful drain on SIGTERM.**  With a ``drain`` event set (the CLI
  wires SIGTERM to it), the worker finishes its in-flight cell,
  flushes the spool, and exits 0.

The agent is deliberately stateless across connections: the campaign
fingerprint in the coordinator's welcome is remembered only to refuse
cross-campaign confusion after a reconnect lands on a *different*
coordinator behind the same address.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from .supervisor import RetryPolicy
from .transport import (
    FrameConnection,
    TransportClosed,
    TransportError,
    connect_framed,
)

#: Reconnect backoff: same deterministic-jitter arithmetic as job
#: retries, but sized for link flaps rather than cell re-runs.
RECONNECT_POLICY = RetryPolicy(
    max_retries=0,  # unused for reconnects; delay_s() is what we share
    backoff_base_s=0.1,
    backoff_factor=2.0,
    backoff_cap_s=5.0,
    jitter=0.5,
)

#: Extra reconnect attempts granted to a draining worker whose spool is
#: not yet empty: enough to ride out a coordinator restart, small
#: enough that SIGTERM still means "exit soon".
DRAIN_FLUSH_ATTEMPTS = 5


def reconnect_delay_s(seed: int, name: str, attempt: int) -> float:
    """Delay before reconnect ``attempt`` — a pure function of
    ``(seed, worker name, attempt)``, capped exponential with
    deterministic jitter (tested across process boundaries)."""
    policy = dataclasses.replace(RECONNECT_POLICY, seed=seed)
    # RetryPolicy.delay_s seeds its jitter on (seed, job, attempt);
    # reuse it with a stable per-name pseudo-index so distinct workers
    # get distinct-but-reproducible schedules.
    job_index = sum(name.encode("utf-8")) % 1_000_003
    return policy.delay_s(job_index, min(attempt, 16))


@dataclass
class WorkerStats:
    """Counters mirrored by tests and the chaos drill."""

    connects: int = 0
    reconnects: int = 0
    cells_executed: int = 0
    results_sent: int = 0
    results_lost: int = 0
    results_spooled: int = 0
    spool_replayed: int = 0


class ResultSpool:
    """Bounded buffer of completed-but-undelivered result messages.

    Disk-backed when given a ``path`` (JSONL, fsynced per append, so a
    worker that is itself SIGKILLed mid-outage hands its finished work
    to its successor), in-memory otherwise.  Each record is tagged with
    the campaign fingerprint it belongs to; :meth:`replay` only
    resends records for the campaign the new welcome names and then
    clears the spool — stale records from dead campaigns are dropped
    with it.  The bound drops the *oldest* record on overflow (the
    coordinator has had the longest to redispatch it)."""

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        max_records: int = 1024,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.max_records = max(1, max_records)
        self.dropped = 0
        self._records: list[dict[str, Any]] = []
        if self.path is not None and self.path.exists():
            self._records = self._load()

    def _load(self) -> list[dict[str, Any]]:
        records: list[dict[str, Any]] = []
        assert self.path is not None
        for raw in self.path.read_bytes().splitlines():
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue  # torn tail from a crashed predecessor
            if isinstance(record, dict) and "result" in record:
                records.append(record)
        return records[-self.max_records:]

    def _persist(self) -> None:
        if self.path is None:
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(
                    json.dumps(
                        record, ensure_ascii=False, separators=(",", ":")
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def __len__(self) -> int:
        return len(self._records)

    def indices(self, fingerprint: str | None = None) -> list[int]:
        """Cell indices with a spooled result (optionally restricted
        to one campaign) — what a re-registering worker claims as
        ``held_leases``."""
        return sorted(
            int(record["result"].get("index", -1))
            for record in self._records
            if fingerprint is None
            or record.get("fingerprint", "") == fingerprint
        )

    def put(self, fingerprint: str, result: Mapping[str, Any]) -> None:
        """Durably buffer one undelivered result."""
        self._records.append(
            {"fingerprint": fingerprint, "result": dict(result)}
        )
        while len(self._records) > self.max_records:
            self._records.pop(0)
            self.dropped += 1
        self._persist()

    def replay(
        self,
        conn: FrameConnection,
        fingerprint: str,
        *,
        worker: str = "",
    ) -> int:
        """Resend every spooled result for ``fingerprint`` (flagged
        ``"spooled": true`` so the coordinator can count deliveries),
        then clear the spool.  Raises :class:`TransportClosed` if the
        link dies mid-replay — records are kept, and the resend after
        the next reconnect is deduplicated coordinator-side."""
        sent = 0
        for record in [
            r
            for r in self._records
            if r.get("fingerprint", "") == fingerprint
        ]:
            message = dict(record["result"])
            message["spooled"] = True
            if worker:
                message["worker"] = worker
            conn.send(message)
            sent += 1
        self.clear()
        return sent

    def clear(self) -> None:
        self._records = []
        self._persist()


class _Heartbeater:
    """Daemon thread renewing the in-flight lease every period."""

    def __init__(self, conn: FrameConnection, period_s: float) -> None:
        self._conn = conn
        self._period_s = max(0.05, period_s)
        self._lock = threading.Lock()
        self._leases: set[int] = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat, name="fabric-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def hold(self, index: int) -> None:
        with self._lock:
            self._leases.add(index)

    def release(self, index: int) -> None:
        with self._lock:
            self._leases.discard(index)

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float) -> bool:
        """Wait for the beat thread to exit; True when it did."""
        if not self._thread.is_alive():
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def _beat(self) -> None:
        while not self._stop.wait(self._period_s):
            with self._lock:
                leases = sorted(self._leases)
            if not leases:
                # Idle workers stay silent: leases are what heartbeats
                # renew, and unread idle chatter in the coordinator's
                # buffer can turn its close into a RST that destroys
                # the queued shutdown frame.
                continue
            try:
                self._conn.send({"type": "heartbeat", "leases": leases})
            except TransportClosed:
                return  # main loop notices on its next recv


def _execute_cell(
    cell_json: Mapping[str, Any], strict_traces: bool
) -> dict[str, Any]:
    """Run one cell to a result message (imports deferred so the
    resilience layer keeps no import-time dependency on the chaos
    engine)."""
    from ..chaos.campaign import CellSpec, _run_cell_guarded

    record = _run_cell_guarded(
        (CellSpec.from_json(cell_json), strict_traces)
    )
    return {
        "type": "result",
        "index": -1,  # caller fills in
        "outcome": record.outcome,
        "detail": record.detail,
        "steps": record.steps,
        "attempts": record.attempts,
    }


def serve_connection(
    conn: FrameConnection,
    stats: WorkerStats,
    *,
    execute: Callable[[Mapping[str, Any], bool], dict[str, Any]] =
        _execute_cell,
    expected_fingerprint: str | None = None,
    spool: ResultSpool | None = None,
    drain: threading.Event | None = None,
    worker_name: str = "",
) -> tuple[str, str]:
    """Serve leases on one established connection until shutdown, link
    death, or drain.  Returns ``(reason, campaign fingerprint)`` where
    ``reason`` is ``"shutdown"`` (the coordinator said we are done) or
    ``"drain"`` (our SIGTERM said so)."""
    welcome = conn.recv(timeout=10.0)
    if welcome is None or welcome.get("type") != "welcome":
        raise TransportClosed("no welcome from coordinator")
    fingerprint = str(welcome.get("fingerprint", ""))
    if expected_fingerprint is not None and fingerprint and (
        fingerprint != expected_fingerprint
    ):
        raise TransportError(
            "coordinator fingerprint changed across reconnect "
            "(different campaign behind the same address)"
        )
    strict_traces = bool(welcome.get("strict_traces", False))
    heartbeat_s = float(welcome.get("heartbeat_s", 1.0))
    if spool is not None and len(spool):
        # Flush finished work from the last outage before taking new
        # leases; the coordinator dedups, so this is safe to repeat.
        stats.spool_replayed += spool.replay(
            conn, fingerprint, worker=worker_name
        )
    heartbeater = _Heartbeater(conn, heartbeat_s)
    heartbeater.start()
    try:
        while True:
            if drain is not None and drain.is_set():
                return "drain", fingerprint
            message = conn.recv(timeout=heartbeat_s)
            if message is None:
                continue  # idle tick; heartbeater keeps us visible
            kind = message.get("type")
            if kind == "shutdown":
                return "shutdown", fingerprint
            if kind != "lease":
                continue
            index = int(message["index"])
            heartbeater.hold(index)
            try:
                result = execute(message["cell"], strict_traces)
            finally:
                heartbeater.release(index)
            result["index"] = index
            stats.cells_executed += 1
            try:
                conn.send(result)
                stats.results_sent += 1
            except TransportClosed:
                # The execution is not wasted science: spool the result
                # for replay after the next welcome (or, with no spool,
                # rely on the coordinator redispatching the
                # deterministic cell).  Either way this link is done.
                if spool is not None:
                    spool.put(fingerprint, result)
                    stats.results_spooled += 1
                else:
                    stats.results_lost += 1
                raise
    finally:
        # The heartbeat must never outlive the connection: a zombie
        # beater holding a lease would keep renewing it against a
        # *future* connection's campaign.  stop() covers the sleeping
        # thread; the forced shutdown covers one wedged in sendall
        # against a blackholed peer.
        heartbeater.stop()
        if not heartbeater.join(timeout=2.0):
            conn.shutdown()
            heartbeater.join(timeout=2.0)


def run_worker(
    host: str,
    port: int,
    *,
    name: str | None = None,
    seed: int = 0,
    max_attempts: int = 30,
    stats: WorkerStats | None = None,
    execute: Callable[[Mapping[str, Any], bool], dict[str, Any]] =
        _execute_cell,
    log: Callable[[str], None] | None = None,
    spool: ResultSpool | None = None,
    spool_path: str | Path | None = None,
    drain: threading.Event | None = None,
) -> int:
    """Worker main loop: connect/serve/reconnect until the coordinator
    shuts us down, SIGTERM drains us (both exit 0), or
    ``max_attempts`` consecutive failed connection attempts (exit 1).

    The spool (disk-backed when ``spool_path`` is given, in-memory
    otherwise) survives link outages; a draining worker with a
    non-empty spool gets :data:`DRAIN_FLUSH_ATTEMPTS` reconnect
    attempts to deliver it before exiting anyway (a disk spool then
    hands the results to the next worker on the same path).
    """
    stats = stats if stats is not None else WorkerStats()
    name = name or f"worker-{os.getpid()}"
    say = log or (lambda message: None)
    spool = spool if spool is not None else ResultSpool(spool_path)
    incarnation = 0
    failures = 0
    drain_failures = 0
    fingerprint: str | None = None

    def drained() -> bool:
        return drain is not None and drain.is_set()

    while True:
        if drained() and not len(spool):
            say(f"{name}: drained (spool empty); exiting")
            return 0
        try:
            conn = connect_framed(host, port, timeout=5.0)
        except OSError as exc:
            if drained():
                drain_failures += 1
                if drain_failures >= DRAIN_FLUSH_ATTEMPTS:
                    say(
                        f"{name}: draining with {len(spool)} spooled "
                        f"result(s) undeliverable after "
                        f"{drain_failures} attempts; exiting"
                    )
                    return 0
            failures += 1
            if failures >= max_attempts:
                say(
                    f"{name}: giving up after {failures} failed "
                    f"connection attempts ({exc})"
                )
                return 1
            delay = reconnect_delay_s(seed, name, failures)
            say(
                f"{name}: connect to {host}:{port} failed ({exc}); "
                f"retrying in {delay:.2f}s"
            )
            time.sleep(delay)
            continue
        failures = 0
        stats.connects += 1
        if incarnation > 0:
            stats.reconnects += 1
        try:
            with conn:
                conn.send(
                    {
                        "type": "register",
                        "name": name,
                        "incarnation": incarnation,
                        "pid": os.getpid(),
                        # Spooled results are leases we still hold:
                        # claiming them stops the coordinator from
                        # redispatching cells whose results arrive in
                        # the replay right after this welcome.
                        "held_leases": spool.indices(fingerprint),
                    }
                )
                reason, fingerprint = serve_connection(
                    conn,
                    stats,
                    execute=execute,
                    expected_fingerprint=fingerprint,
                    spool=spool,
                    drain=drain,
                    worker_name=name,
                )
                if reason == "shutdown":
                    say(
                        f"{name}: coordinator shutdown after "
                        f"{stats.cells_executed} cell(s)"
                    )
                    return 0
                if reason == "drain":
                    say(
                        f"{name}: drained after "
                        f"{stats.cells_executed} cell(s) "
                        f"(spool flushed); exiting"
                    )
                    return 0
        except TransportClosed as exc:
            say(f"{name}: link lost ({exc}); reconnecting")
        except TransportError as exc:
            say(f"{name}: protocol error ({exc}); reconnecting fresh")
            fingerprint = None
        incarnation += 1
        time.sleep(reconnect_delay_s(seed, name, 1))
