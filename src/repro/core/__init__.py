"""The EFD model core: processes, failures, histories, tasks, systems, runs."""

from .adversary import Adversary
from .failures import Environment, FailurePattern
from .process import (
    ProcessContext,
    ProcessId,
    ProcessKind,
    c_process,
    c_processes,
    s_process,
    s_processes,
)
from .run import RunResult
from .system import System, input_register, null_automaton
from .task import EnumeratedTask, Task, Vector, is_prefix, participants

__all__ = [
    "Adversary",
    "Environment",
    "FailurePattern",
    "ProcessContext",
    "ProcessId",
    "ProcessKind",
    "c_process",
    "c_processes",
    "s_process",
    "s_processes",
    "RunResult",
    "System",
    "input_register",
    "null_automaton",
    "EnumeratedTask",
    "Task",
    "Vector",
    "is_prefix",
    "participants",
]
