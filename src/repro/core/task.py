"""Distributed tasks (paper Section 2.1).

A task for ``n`` C-processes is a triple ``(I, O, Delta)``: a set of
input vectors, a set of output vectors, and a total relation mapping each
input vector to allowed output vectors.  ``None`` plays the paper's
bottom: a ``None`` input marks a non-participating process, a ``None``
output an undecided one.  ``I`` and ``O`` are prefix-closed, and ``Delta``
satisfies the three closure conditions of Section 2.1:

1. a non-participant never outputs;
2. every prefix of an allowed output is allowed;
3. extending the input preserves extendability of the output.

Two concrete representations are provided:

* :class:`EnumeratedTask` — fully tabulated, for the small tasks fed to
  the topology checker and the classifier.  Construction validates all
  closure conditions.
* Predicate-style tasks (see :mod:`repro.tasks`) subclass :class:`Task`
  directly and implement the membership tests semantically, which scales
  to any ``n``.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..errors import SpecificationError

#: An input or output vector; index i belongs to C-process p_{i+1};
#: ``None`` is the paper's bottom.
Vector = tuple[Any, ...]


def participants(vector: Vector) -> frozenset[int]:
    """Indices with a non-bottom entry."""
    return frozenset(i for i, v in enumerate(vector) if v is not None)


def is_prefix(shorter: Vector, longer: Vector) -> bool:
    """Paper's prefix order: ``shorter`` agrees with ``longer`` wherever
    it is non-bottom, and has at least one non-bottom entry."""
    if len(shorter) != len(longer):
        return False
    if all(v is None for v in shorter):
        return False
    return all(s is None or s == l for s, l in zip(shorter, longer))


def proper_prefixes(vector: Vector) -> Iterator[Vector]:
    """All prefixes of ``vector`` other than ``vector`` itself."""
    present = sorted(participants(vector))
    for size in range(1, len(present)):
        for keep in itertools.combinations(present, size):
            kept = set(keep)
            yield tuple(
                v if i in kept else None for i, v in enumerate(vector)
            )


def restrict(vector: Vector, keep: Iterable[int]) -> Vector:
    """The prefix of ``vector`` supported on ``keep``."""
    kept = set(keep)
    return tuple(v if i in kept else None for i, v in enumerate(vector))


class Task(ABC):
    """Abstract task interface.

    Subclasses define membership of the input set and of the Delta
    relation.  ``allows`` must implement the *partial-output* semantics:
    ``allows(I, O)`` holds when ``O`` (which may contain bottoms) is a
    prefix of — or equal to — some output vector related to ``I``.
    """

    #: Human-readable task name (used in reports and the hierarchy table).
    name: str = "task"
    #: Number of C-processes.
    n: int
    #: Whether the task is colorless (Proposition 5): a process may adopt
    #: the input or output of any other participant.
    colorless: bool = False

    @abstractmethod
    def is_input(self, vector: Vector) -> bool:
        """Whether ``vector`` is in the (prefix-closed) input set."""

    @abstractmethod
    def allows(self, inputs: Vector, outputs: Vector) -> bool:
        """Whether ``(inputs, outputs)`` is in Delta (partial outputs ok)."""

    @abstractmethod
    def input_vectors(self) -> Iterator[Vector]:
        """Enumerate the input set (finite per the paper's assumption)."""

    def maximal_input_vectors(self) -> Iterator[Vector]:
        """Input vectors that are not a proper prefix of another input."""
        all_inputs = list(self.input_vectors())
        for vec in all_inputs:
            if not any(
                other != vec and is_prefix(vec, other) for other in all_inputs
            ):
                yield vec

    def check_run(self, inputs: Vector, outputs: Vector) -> bool:
        """Safety check used by the executors: inputs well-formed and the
        (possibly partial) outputs allowed."""
        return self.is_input(inputs) and self.allows(inputs, outputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name}, n={self.n})"


class EnumeratedTask(Task):
    """A task given by explicit vector sets and an explicit relation.

    Args:
        n: number of C-processes.
        delta: mapping from each input vector to the collection of
            *complete* (relative to that input's participants) output
            vectors allowed for it.  Prefix-closure of inputs, outputs,
            and the relation is completed automatically, then validated.
        name: task name.
        colorless: see :class:`Task`.

    Raises:
        SpecificationError: if the completed relation violates the
            paper's conditions (e.g. an output for a non-participant, or
            an input extension with no output extension).
    """

    def __init__(
        self,
        n: int,
        delta: Mapping[Vector, Iterable[Vector]],
        *,
        name: str = "enumerated",
        colorless: bool = False,
    ) -> None:
        self.n = n
        self.name = name
        self.colorless = colorless
        self._delta: dict[Vector, frozenset[Vector]] = {}
        self._given: set[Vector] = set()
        for inp, outs in delta.items():
            self._add_pairs(tuple(inp), [tuple(o) for o in outs])
        self._given = set(self._delta)
        self._close_under_prefixes()
        self._prune_unextendable()
        self._validate()

    # -- construction -------------------------------------------------

    def _add_pairs(self, inp: Vector, outs: Sequence[Vector]) -> None:
        if len(inp) != self.n:
            raise SpecificationError(
                f"input vector {inp} has length {len(inp)}, expected {self.n}"
            )
        if not participants(inp):
            raise SpecificationError("input vectors must have a participant")
        bucket = set(self._delta.get(inp, frozenset()))
        for out in outs:
            if len(out) != self.n:
                raise SpecificationError(
                    f"output vector {out} has length {len(out)}, expected {self.n}"
                )
            if not participants(out) <= participants(inp):
                raise SpecificationError(
                    f"output {out} decides for a non-participant of {inp}"
                )
            if not participants(out):
                raise SpecificationError(
                    "output vectors must have a non-bottom entry"
                )
            bucket.add(out)
        self._delta[inp] = frozenset(bucket)

    def _close_under_prefixes(self) -> None:
        # Condition (2): every prefix of an allowed output is allowed.
        for inp, outs in list(self._delta.items()):
            closed = set(outs)
            for out in outs:
                closed.update(proper_prefixes(out))
            self._delta[inp] = frozenset(closed)
        # Prefix closure of the input set, with outputs induced by
        # restriction (the standard completion: for a sub-input, allow
        # the restrictions of the super-input's outputs to the
        # sub-input's participants).
        for inp in list(self._delta):
            for sub in proper_prefixes(inp):
                if sub in self._delta:
                    continue
                induced: set[Vector] = set()
                for sup, outs in self._delta.items():
                    if is_prefix(sub, sup):
                        for out in outs:
                            r = restrict(out, participants(sub))
                            if participants(r):
                                induced.add(r)
                if induced:
                    self._delta[sub] = frozenset(induced)

    def _prune_unextendable(self) -> None:
        # The automatic prefix completion induces sub-input outputs by
        # restriction, which may create pairs violating condition (3)
        # (an output with no extension at some larger input).  Prune
        # those *induced* pairs, from the largest inputs downward so the
        # buckets we prune against are already final.  A user-given pair
        # that would have to be pruned is a genuine specification error
        # and is reported by _validate instead.
        by_size = sorted(
            self._delta, key=lambda v: len(participants(v)), reverse=True
        )
        for inp in by_size:
            if inp in self._given:
                continue
            supers = [
                sup
                for sup in self._delta
                if sup != inp and is_prefix(inp, sup)
            ]
            kept = frozenset(
                out
                for out in self._delta[inp]
                if all(
                    any(
                        out == bigger or is_prefix(out, bigger)
                        for bigger in self._delta[sup]
                    )
                    for sup in supers
                )
            )
            self._delta[inp] = kept

    def _validate(self) -> None:
        inputs = set(self._delta)
        for inp, outs in self._delta.items():
            if not outs:
                raise SpecificationError(f"Delta is not total at {inp}")
        # Condition (3): input extension preserves output extendability.
        for inp in inputs:
            for sup in inputs:
                if sup == inp or not is_prefix(inp, sup):
                    continue
                for out in self._delta[inp]:
                    extended = any(
                        out == bigger or is_prefix(out, bigger)
                        for bigger in self._delta[sup]
                    )
                    if not extended:
                        raise SpecificationError(
                            f"output {out} for {inp} cannot be extended "
                            f"for the larger input {sup}"
                        )

    # -- Task interface ------------------------------------------------

    def is_input(self, vector: Vector) -> bool:
        return tuple(vector) in self._delta

    def allows(self, inputs: Vector, outputs: Vector) -> bool:
        inputs = tuple(inputs)
        outputs = tuple(outputs)
        if inputs not in self._delta:
            return False
        if not participants(outputs):
            # The empty (all-undecided) output is always acceptable for a
            # *partial* run; the paper's O-vectors are non-empty, but a
            # run in which nobody decided yet violates nothing.
            return True
        allowed = self._delta[inputs]
        return outputs in allowed or any(
            is_prefix(outputs, out) for out in allowed
        )

    def input_vectors(self) -> Iterator[Vector]:
        return iter(sorted(self._delta, key=_vector_key))

    def outputs_for(self, inputs: Vector) -> frozenset[Vector]:
        """All allowed output vectors (including prefixes) for an input."""
        return self._delta[tuple(inputs)]


def _vector_key(vec: Vector) -> tuple:
    return tuple((v is None, v if v is not None else 0) for v in vec)
