"""Run results and task satisfaction (paper Section 2.2).

A run's *input vector* has ``I[i]`` equal to ``p_{i+1}``'s input if it
participated and bottom otherwise; its *output vector* has ``O[i]`` equal
to the decided value or bottom.  A run satisfies task ``T`` when
``(I, O)`` is in Delta and every undecided process took finitely many
steps — in a bounded execution the latter clause is replaced by the
executor's explicit liveness accounting (see ``reason``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..errors import LivenessViolation
from .failures import FailurePattern
from .process import ProcessId
from .task import Task, Vector

if TYPE_CHECKING:  # imported lazily to avoid a core <-> runtime cycle
    from ..memory.registers import RegisterFile
    from ..runtime.trace import Trace


@dataclass
class RunResult:
    """Outcome of one bounded execution.

    Attributes:
        inputs: the run's input vector (bottom for non-participants).
        outputs: the run's output vector (bottom for undecided).
        participants: indices of C-processes that took at least one step.
        steps: total number of steps executed.
        step_counts: steps per process id.
        reason: why the execution stopped — ``"all_decided"``,
            ``"budget"`` (step budget exhausted), ``"predicate"`` (the
            caller's stop condition fired), ``"halted"`` (no
            schedulable process remained — a genuine deadlock), or
            ``"schedule_exhausted"`` (the scheduler gave up while
            candidates remained, e.g. a strict explicit schedule ran
            out of entries).
        pattern: the failure pattern of the run.
        memory: the final shared-memory state.
        trace: the recorded trace, if tracing was enabled.
    """

    inputs: Vector
    outputs: Vector
    participants: frozenset[int]
    steps: int
    step_counts: dict[ProcessId, int]
    reason: str
    pattern: FailurePattern
    memory: RegisterFile
    trace: Trace | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def decided(self) -> dict[int, Any]:
        """Mapping from decided C-process index to its output value."""
        return {
            i: v for i, v in enumerate(self.outputs) if v is not None
        }

    @property
    def all_participants_decided(self) -> bool:
        return self.participants <= frozenset(self.decided)

    def effective_inputs(self) -> Vector:
        """The paper's input vector: inputs restricted to participants."""
        return tuple(
            v if i in self.participants else None
            for i, v in enumerate(self.inputs)
        )

    def satisfies(self, task: Task) -> bool:
        """Whether ``(I, O)`` is in the task relation (safety only)."""
        return task.allows(self.effective_inputs(), self.outputs)

    def require_satisfies(self, task: Task) -> "RunResult":
        """Assert safety; raise :class:`SafetyViolation` otherwise."""
        from ..errors import SafetyViolation

        if not self.satisfies(task):
            raise SafetyViolation(
                f"run violates {task!r}: inputs={self.effective_inputs()} "
                f"outputs={self.outputs}"
            )
        return self

    @property
    def budget_digest(self) -> str | None:
        """One-line per-process diagnosis attached by the executor when
        the run stopped with reason ``"budget"`` (``None`` otherwise)."""
        return self.extras.get("budget_digest")

    def require_all_decided(self) -> "RunResult":
        """Assert the wait-freedom obligation for this bounded run: every
        participant decided before the budget ran out."""
        if not self.all_participants_decided:
            missing = sorted(self.participants - frozenset(self.decided))
            message = (
                f"C-processes {missing} participated but never decided "
                f"(stop reason: {self.reason}, steps: {self.steps})"
            )
            if self.budget_digest is not None:
                message += f"; {self.budget_digest}"
            raise LivenessViolation(message, result=self)
        return self
