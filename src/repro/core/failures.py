"""Failure patterns and environments (paper Section 2.1).

Only S-processes fail.  A *failure pattern* ``F`` maps each time
``t in T = N`` to the set of S-processes that have crashed by ``t``;
crashes are permanent (``F(t) ⊆ F(t+1)``).  An *environment* is a set of
allowed failure patterns; ``E_t`` consists of the patterns with at least
``n - t`` correct processes.

We represent a pattern compactly by the crash time of each S-process
(``None`` for a correct process), which forces monotonicity by
construction.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..errors import SpecificationError


@dataclass(frozen=True)
class FailurePattern:
    """Crash times for a system of ``n`` S-processes.

    Attributes:
        n: number of S-processes.
        crash_times: ``crash_times[i]`` is the time at which S-process
            ``i`` crashes, or ``None`` if it is correct.  A process that
            crashes at time ``t`` takes no steps at any time ``>= t``.
    """

    n: int
    crash_times: tuple[int | None, ...]

    def __post_init__(self) -> None:
        if len(self.crash_times) != self.n:
            raise SpecificationError(
                f"expected {self.n} crash times, got {len(self.crash_times)}"
            )
        for i, t in enumerate(self.crash_times):
            if t is not None and t < 0:
                raise SpecificationError(f"crash time of q{i + 1} is negative: {t}")
        if not self.correct:
            raise SpecificationError(
                "every failure pattern must have at least one correct S-process"
            )

    @classmethod
    def all_correct(cls, n: int) -> "FailurePattern":
        """The failure-free pattern."""
        return cls(n, (None,) * n)

    @classmethod
    def crash(cls, n: int, crashes: Mapping[int, int]) -> "FailurePattern":
        """Pattern in which ``crashes[i]`` gives the crash time of ``qi+1``."""
        times: list[int | None] = [None] * n
        for index, time in crashes.items():
            if not 0 <= index < n:
                raise SpecificationError(f"S-process index {index} out of range")
            times[index] = time
        return cls(n, tuple(times))

    @property
    def faulty(self) -> frozenset[int]:
        """Indices of S-processes that crash at some time (``faulty(F)``)."""
        return frozenset(
            i for i, t in enumerate(self.crash_times) if t is not None
        )

    @property
    def correct(self) -> frozenset[int]:
        """Indices of S-processes that never crash (``correct(F)``)."""
        return frozenset(i for i, t in enumerate(self.crash_times) if t is None)

    def crashed_at(self, time: int) -> frozenset[int]:
        """``F(time)``: the set of S-processes crashed by ``time``."""
        return frozenset(
            i
            for i, t in enumerate(self.crash_times)
            if t is not None and t <= time
        )

    def is_alive(self, index: int, time: int) -> bool:
        """Whether S-process ``index`` may take a step at ``time``."""
        t = self.crash_times[index]
        return t is None or time < t

    def max_crash_time(self) -> int:
        """Latest crash time in the pattern (0 if failure-free)."""
        return max((t for t in self.crash_times if t is not None), default=0)

    @functools.cached_property
    def crash_transitions(self) -> tuple[tuple[int, int], ...]:
        """``(time, index)`` pairs sorted by crash time.

        The executor maintains its schedulable set incrementally: instead
        of re-deriving aliveness for every S-process on every step, it
        walks this precomputed schedule and retires exactly the processes
        whose crash time has been reached.  (``cached_property`` writes
        straight into ``__dict__``, so it coexists with ``frozen=True``.)
        """
        return tuple(
            sorted(
                (t, i)
                for i, t in enumerate(self.crash_times)
                if t is not None
            )
        )


class Environment:
    """A set of failure patterns, given as a membership predicate.

    The paper's ``E_t`` (at most ``t`` faulty processes) is available via
    :meth:`at_most`; :meth:`wait_free` is ``E_{n-1}``.
    """

    def __init__(self, n: int, allows, description: str = "custom") -> None:
        self.n = n
        self._allows = allows
        self.description = description

    def __contains__(self, pattern: FailurePattern) -> bool:
        if pattern.n != self.n:
            return False
        return bool(self._allows(pattern))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Environment(n={self.n}, {self.description})"

    @classmethod
    def at_most(cls, n: int, t: int) -> "Environment":
        """``E_t``: all patterns with at least ``n - t`` correct processes."""
        return cls(
            n,
            lambda pattern: len(pattern.faulty) <= t,
            description=f"E_{t}",
        )

    @classmethod
    def wait_free(cls, n: int) -> "Environment":
        """``E_{n-1}``: any number of failures short of all."""
        return cls.at_most(n, n - 1)

    @classmethod
    def failure_free(cls, n: int) -> "Environment":
        """``E_0``: no failures at all."""
        return cls.at_most(n, 0)

    def sample_patterns(
        self,
        *,
        crash_times: Sequence[int] = (0, 1, 5),
        max_faulty: int | None = None,
    ) -> Iterator[FailurePattern]:
        """Enumerate a representative family of allowed patterns.

        Yields the failure-free pattern plus, for every non-empty faulty
        set of size up to ``max_faulty`` (default ``n - 1``), every
        assignment of the given crash times — filtered through the
        environment's predicate.  Intended for test sweeps, not for
        exhaustiveness over the (infinite) pattern space.
        """
        limit = self.n - 1 if max_faulty is None else max_faulty
        yield from self._sample(crash_times, limit)

    def _sample(
        self, crash_times: Sequence[int], limit: int
    ) -> Iterator[FailurePattern]:
        free = FailurePattern.all_correct(self.n)
        if free in self:
            yield free
        indices = range(self.n)
        for size in range(1, limit + 1):
            for faulty in itertools.combinations(indices, size):
                for times in itertools.product(crash_times, repeat=size):
                    pattern = FailurePattern.crash(
                        self.n, dict(zip(faulty, times))
                    )
                    if pattern in self:
                        yield pattern
