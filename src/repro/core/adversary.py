"""Adversaries over S-process failures (the paper's concluding
extension: "what is the weakest failure detector to solve a task T in
the presence of an adversary A?" [13]).

Following Delporte-Gallet et al. [13], an *adversary* is a non-empty
collection of allowed *live sets* — the sets of S-processes that may be
exactly the correct ones in a run.  An adversary induces an
environment (the failure patterns whose correct set it allows), which
plugs directly into this library's systems and detectors; the
environment-quantified results (Propositions 6, Theorems 9/10) then
make sense verbatim "in the presence of A", which is how the test suite
exercises the extension.

Utilities:

* standard adversaries — wait-free, t-resilient, superset-closed
  closures, and arbitrary custom collections;
* :meth:`Adversary.is_superset_closed` — the structural property under
  which adversaries are characterized by their minimal *cores*;
* :meth:`Adversary.cores` / :meth:`Adversary.min_core_size` — the
  hitting-set data that the L-resilience line of work [19] relates to
  wait-freedom.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ..errors import SpecificationError
from .failures import Environment, FailurePattern

LiveSet = frozenset[int]


class Adversary:
    """A set of allowed live (correct) sets over ``n`` S-processes."""

    def __init__(
        self, n: int, live_sets: Iterable[Iterable[int]], name: str = "custom"
    ) -> None:
        self.n = n
        self.name = name
        sets = {frozenset(s) for s in live_sets}
        if not sets:
            raise SpecificationError("an adversary needs a live set")
        for s in sets:
            if not s:
                raise SpecificationError(
                    "live sets must be non-empty (someone must be correct)"
                )
            if not s <= frozenset(range(n)):
                raise SpecificationError(f"live set {set(s)} out of range")
        self.live_sets: frozenset[LiveSet] = frozenset(sets)

    # -- constructors -----------------------------------------------------

    @classmethod
    def wait_free(cls, n: int) -> "Adversary":
        """Any non-empty set may be the correct set (E_{n-1})."""
        universe = range(n)
        sets = [
            frozenset(c)
            for size in range(1, n + 1)
            for c in itertools.combinations(universe, size)
        ]
        return cls(n, sets, name="wait-free")

    @classmethod
    def t_resilient(cls, n: int, t: int) -> "Adversary":
        """At most ``t`` failures: live sets of size >= n - t."""
        if not 0 <= t < n:
            raise SpecificationError(f"need 0 <= t < n, got t={t}")
        universe = range(n)
        sets = [
            frozenset(c)
            for size in range(n - t, n + 1)
            for c in itertools.combinations(universe, size)
        ]
        return cls(n, sets, name=f"{t}-resilient")

    @classmethod
    def superset_closure(
        cls, n: int, cores: Iterable[Iterable[int]], name: str = "closure"
    ) -> "Adversary":
        """The smallest superset-closed adversary containing ``cores``."""
        base = [frozenset(c) for c in cores]
        universe = frozenset(range(n))
        sets = set()
        for core in base:
            rest = sorted(universe - core)
            for size in range(len(rest) + 1):
                for extra in itertools.combinations(rest, size):
                    sets.add(core | frozenset(extra))
        return cls(n, sets, name=name)

    # -- structure -------------------------------------------------------

    def allows(self, live: Iterable[int]) -> bool:
        return frozenset(live) in self.live_sets

    def is_superset_closed(self) -> bool:
        universe = frozenset(range(self.n))
        for s in self.live_sets:
            for extra in universe - s:
                if s | {extra} not in self.live_sets:
                    return False
        return True

    def cores(self) -> frozenset[LiveSet]:
        """Minimal live sets (inclusion-wise)."""
        return frozenset(
            s
            for s in self.live_sets
            if not any(other < s for other in self.live_sets)
        )

    def min_core_size(self) -> int:
        return min(len(core) for core in self.cores())

    # -- integration ---------------------------------------------------------

    def environment(self) -> Environment:
        """The induced environment: patterns whose correct set the
        adversary allows."""
        return Environment(
            self.n,
            lambda pattern: pattern.correct in self.live_sets,
            description=f"adversary:{self.name}",
        )

    def sample_patterns(
        self, *, crash_times: tuple[int, ...] = (0, 5)
    ) -> Iterable[FailurePattern]:
        """One pattern per live set per crash time (faulty processes all
        crash at the given time)."""
        universe = frozenset(range(self.n))
        for live in sorted(self.live_sets, key=sorted):
            faulty = sorted(universe - live)
            if not faulty:
                yield FailurePattern.all_correct(self.n)
                continue
            for time in crash_times:
                yield FailurePattern.crash(
                    self.n, {q: time for q in faulty}
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Adversary({self.name}, n={self.n}, |A|={len(self.live_sets)})"
