"""Process identities and the automaton protocol of the EFD model.

The paper's system (Section 2.1) contains two kinds of processes:

* **C-processes** ``p1 .. pn`` — the computation part.  They receive task
  inputs, read and write shared memory, and must *decide* in a finite
  number of their own steps (wait-freedom).
* **S-processes** ``q1 .. qn`` — the synchronization part.  They may crash,
  may query a failure detector, and exist only to help the C-processes.

A process automaton is represented as a Python generator: the executor
resumes the generator with the result of its previous operation and the
generator yields the next operation it wants to perform (one of the
dataclasses in :mod:`repro.runtime.ops`).  This makes every interleaving
explicitly schedulable, which the adversarial schedulers and the
exhaustive model checker rely on.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Any, Callable, Generator

#: The type of a running automaton: yields operations, receives results.
StepGenerator = Generator[Any, Any, None]

#: A factory that builds the running automaton for one process.
#: It receives a :class:`ProcessContext` describing who the process is.
AutomatonFactory = Callable[["ProcessContext"], StepGenerator]


class ProcessKind(enum.Enum):
    """Which half of the system a process belongs to."""

    COMPUTATION = "C"
    SYNCHRONIZATION = "S"


@dataclass(frozen=True)
class ProcessId:
    """Identity of one process.

    Indices are 0-based internally; :attr:`name` renders the paper's
    1-based convention (``p1``/``q1`` for index 0).  Ordering sorts all
    C-processes before all S-processes, then by index.

    The sort key, hash, and kind predicates are precomputed at
    construction: schedulers and the executor sort, hash, and classify
    candidate ids on every step, so all three are measured hot paths.
    """

    kind: ProcessKind
    index: int

    def _sort_key(self) -> tuple[str, int]:
        return self._key

    def __lt__(self, other: "ProcessId") -> bool:
        return self._key < other._key

    def __le__(self, other: "ProcessId") -> bool:
        return self._key <= other._key

    def __gt__(self, other: "ProcessId") -> bool:
        return self._key > other._key

    def __ge__(self, other: "ProcessId") -> bool:
        return self._key >= other._key

    def __hash__(self) -> int:
        return self._hash

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"process index must be non-negative, got {self.index}")
        key = (self.kind.value, self.index)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash((self.kind, self.index)))
        object.__setattr__(
            self, "is_computation", self.kind is ProcessKind.COMPUTATION
        )
        object.__setattr__(
            self, "is_synchronization", self.kind is ProcessKind.SYNCHRONIZATION
        )

    @property
    def name(self) -> str:
        prefix = "p" if self.kind is ProcessKind.COMPUTATION else "q"
        return f"{prefix}{self.index + 1}"

    def __reduce__(self):
        # Unpickle through the interning constructors: the cached
        # ``_hash`` is only valid within the process that computed it
        # (hash randomization), so a default-pickled id would silently
        # miss dict lookups when a checkpoint or a worker's result is
        # loaded in another process.
        ctor = (
            c_process
            if self.kind is ProcessKind.COMPUTATION
            else s_process
        )
        return (ctor, (self.index,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@functools.lru_cache(maxsize=None)
def c_process(index: int) -> ProcessId:
    """The C-process with the given 0-based index (ids are interned)."""
    return ProcessId(ProcessKind.COMPUTATION, index)


@functools.lru_cache(maxsize=None)
def s_process(index: int) -> ProcessId:
    """The S-process with the given 0-based index (ids are interned)."""
    return ProcessId(ProcessKind.SYNCHRONIZATION, index)


def c_processes(n: int) -> tuple[ProcessId, ...]:
    """All C-processes ``p1 .. pn``."""
    return tuple(c_process(i) for i in range(n))


def s_processes(n: int) -> tuple[ProcessId, ...]:
    """All S-processes ``q1 .. qn``."""
    return tuple(s_process(i) for i in range(n))


@dataclass(frozen=True)
class ProcessContext:
    """Everything an automaton is allowed to know when it starts.

    Attributes:
        pid: the identity of this process.
        n_computation: number of C-processes in the system.
        n_synchronization: number of S-processes in the system.
        input_value: the task input (C-processes only; ``None`` denotes a
            non-participating process, matching the paper's bottom input).
    """

    pid: ProcessId
    n_computation: int
    n_synchronization: int
    input_value: Any = None
