"""Failure-detector histories (paper Section 2.1).

A history ``H`` with range ``R`` maps ``(S-process, time)`` to a value in
``R``; ``H(q, t)`` is what the detector module of ``q`` outputs at time
``t``.  Detectors map a failure pattern to a *set* of histories; our
executable detectors pick one history per (pattern, seed) pair — see
:mod:`repro.detectors.base`.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol


class History(Protocol):
    """Minimal interface the executor needs from a history."""

    def value(self, s_index: int, time: int) -> Any:
        """``H(q_{s_index+1}, time)``."""


class FunctionHistory:
    """A history backed by an arbitrary function of (process, time)."""

    def __init__(self, fn: Callable[[int, int], Any]) -> None:
        self._fn = fn

    def value(self, s_index: int, time: int) -> Any:
        return self._fn(s_index, time)


class ConstantHistory:
    """A history that outputs the same value everywhere (e.g. trivial D)."""

    def __init__(self, constant: Any = None) -> None:
        self._constant = constant

    def value(self, s_index: int, time: int) -> Any:
        return self._constant


class RecordedHistory:
    """A finite, explicitly tabulated history (used by tests and by the
    DAG machinery of Figure 1, which replays recorded samples).

    Missing entries fall back to ``default``.
    """

    def __init__(self, table: dict[tuple[int, int], Any], default: Any = None):
        self._table = dict(table)
        self._default = default

    def value(self, s_index: int, time: int) -> Any:
        return self._table.get((s_index, time), self._default)

    def record(self, s_index: int, time: int, value: Any) -> None:
        self._table[(s_index, time)] = value
