"""System assembly: processes + shared memory + detector + failures.

A :class:`System` is the static description of one experiment: the
C-process automata (with their task inputs), the S-process automata, the
failure detector, and the failure pattern of the run to be executed.
The :mod:`repro.runtime.executor` turns a system plus a scheduler into a
run.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from ..errors import SpecificationError
from .failures import FailurePattern
from .history import ConstantHistory, History
from .process import (
    AutomatonFactory,
    ProcessContext,
    ProcessId,
    c_process,
    s_process,
)
from .task import Vector

#: Register that the executor fills with C-process ``i``'s input on its
#: first step (the paper: "the first step of each C-process is to write
#: its input value to shared memory").
INPUT_REGISTER_PREFIX = "inp/"


def input_register(c_index: int) -> str:
    """Name of the register holding C-process ``c_index``'s input."""
    return f"{INPUT_REGISTER_PREFIX}{c_index}"


def null_automaton(ctx: ProcessContext):
    """An automaton that takes only null steps (used for the S-part of
    *restricted* algorithms, and for the C-part of reduction algorithms)."""
    from ..runtime.ops import Nop

    while True:
        yield Nop()


class System:
    """One executable system instance.

    Args:
        inputs: the task input vector; ``None`` entries are
            non-participating C-processes (they are never scheduled).
        c_factories: one automaton factory per C-process.
        s_factories: one automaton factory per S-process; ``None`` gives
            null automata (a *restricted* algorithm, Section 2.2).
        detector: the failure detector the S-processes may query;
            ``None`` gives the trivial detector (always bottom).
        pattern: failure pattern of this run; defaults to failure-free.
        seed: seed for the detector's choice of history (detectors map a
            pattern to a *set* of histories; the seed selects one).
    """

    def __init__(
        self,
        *,
        inputs: Vector,
        c_factories: Sequence[AutomatonFactory],
        s_factories: Sequence[AutomatonFactory] | None = None,
        detector: Any = None,
        pattern: FailurePattern | None = None,
        seed: int = 0,
    ) -> None:
        self.inputs = tuple(inputs)
        self.n_c = len(self.inputs)
        if len(c_factories) != self.n_c:
            raise SpecificationError(
                f"{len(c_factories)} C-automata for {self.n_c} inputs"
            )
        self.c_factories = list(c_factories)
        if s_factories is None:
            s_factories = [null_automaton] * self.n_c
        self.s_factories = list(s_factories)
        self.n_s = len(self.s_factories)
        if pattern is None:
            pattern = FailurePattern.all_correct(self.n_s)
        if pattern.n != self.n_s:
            raise SpecificationError(
                f"failure pattern is over {pattern.n} S-processes, "
                f"system has {self.n_s}"
            )
        self.pattern = pattern
        self.detector = detector
        self.seed = seed
        self.history: History = self._build_history()
        #: cached — the executor reads this once per step when building
        #: scheduler views, and inputs are immutable.
        self.participants: frozenset[int] = frozenset(
            i for i, v in enumerate(self.inputs) if v is not None
        )
        self._contexts: dict[ProcessId, ProcessContext] = {}

    def _build_history(self) -> History:
        if self.detector is None:
            return ConstantHistory(None)
        rng = random.Random(self.seed)
        return self.detector.build_history(self.pattern, rng)

    def context_for(self, pid: ProcessId) -> ProcessContext:
        # Memoized: contexts are immutable and checkpoint restores
        # re-request them for every rebuilt generator.
        ctx = self._contexts.get(pid)
        if ctx is None:
            input_value = (
                self.inputs[pid.index] if pid.is_computation else None
            )
            ctx = ProcessContext(
                pid=pid,
                n_computation=self.n_c,
                n_synchronization=self.n_s,
                input_value=input_value,
            )
            self._contexts[pid] = ctx
        return ctx

    def all_pids(self) -> tuple[ProcessId, ...]:
        return tuple(
            [c_process(i) for i in range(self.n_c)]
            + [s_process(i) for i in range(self.n_s)]
        )
