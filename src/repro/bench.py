"""Tracked micro-benchmarks of the execution core.

``python -m repro bench`` runs a fixed suite over the three hot layers
— raw executor stepping, exhaustive exploration, and chaos campaigns —
and writes ``BENCH_core.json``.  The committed copy at the repository
root is the tracked baseline: CI re-runs the suite in smoke mode and
fails when any benchmark's throughput regresses by more than the
threshold against it (rates are compared, not wall-clock totals, so the
smoke workloads stay comparable to the full ones).

Benchmark names are stable across smoke and full runs; changing a name
breaks the comparison history and should be treated like an API break.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Mapping

from .algorithms import paxos as _paxos

BENCH_SCHEMA = "repro-bench/1"

#: Primary throughput metric per benchmark (used for regression gating).
RATE_KEYS = {
    "executor_rw_n8": "steps_per_s",
    "executor_nop_n32": "steps_per_s",
    "executor_crashes": "steps_per_s",
    "executor_snapshot": "steps_per_s",
    "executor_paxos_inlined": "steps_per_s",
    "executor_compiled_rw_n8": "steps_per_s",
    "executor_compiled_nop_n32": "steps_per_s",
    "executor_compiled_crashes": "steps_per_s",
    "executor_compiled_snapshot": "steps_per_s",
    "executor_compiled_paxos_inlined": "steps_per_s",
    "explorer_figure4_d16": "explored_per_s",
    "explorer_por_figure4_d16": "explored_per_s",
    "explorer_por_deep_renaming": "explored_per_s",
    "explorer_symmetry_kset": "explored_per_s",
    "campaign_smoke": "cells_per_s",
    "campaign_compiled": "cells_per_s",
    "campaign_seed_sweep": "cells_per_s",
    "campaign_compiled_seed_sweep": "cells_per_s",
    "campaign_supervised": "cells_per_s",
    "campaign_fabric_loopback": "cells_per_s",
}

#: Compiled-kernel benchmark → its interpreted counterpart in the same
#: run.  Drives the side-by-side speedup column in :func:`render` and
#: the in-run speedup gate in :func:`kernel_speedup_problems`.
KERNEL_PAIRS = {
    "executor_compiled_rw_n8": "executor_rw_n8",
    "executor_compiled_nop_n32": "executor_nop_n32",
    "executor_compiled_crashes": "executor_crashes",
    "executor_compiled_snapshot": "executor_snapshot",
    "executor_compiled_paxos_inlined": "executor_paxos_inlined",
    "campaign_compiled": "campaign_smoke",
    "campaign_compiled_seed_sweep": "campaign_seed_sweep",
}

#: Minimum same-run speedup of each ``executor_compiled_*`` benchmark
#: over its interpreted counterpart.  Full runs measure 13-40x; the
#: gate sits well below that so smoke runs on noisy CI hosts do not
#: flap, while still catching a kernel that silently degrades to
#: interpreter-like throughput.
EXECUTOR_KERNEL_SPEEDUP_MIN = 5.0

#: Per-pair minimum same-run speedups for :func:`kernel_speedup_problems`.
#: The synthetic executor workloads are pure kernel overhead and gate
#: high.  The paxos-inlined workload does real agreement work per step
#: (measured ~4-5x), and the campaign pairs carry the full shared cost
#: of schedulers, detectors, and verdicts that both kernels pay
#: identically (measured ~2.5x on the smoke mix, ~4x on the seed
#: sweep); each gates with margin below its measured floor.
KERNEL_SPEEDUP_MIN = {
    "executor_compiled_rw_n8": EXECUTOR_KERNEL_SPEEDUP_MIN,
    "executor_compiled_nop_n32": EXECUTOR_KERNEL_SPEEDUP_MIN,
    "executor_compiled_crashes": EXECUTOR_KERNEL_SPEEDUP_MIN,
    "executor_compiled_snapshot": EXECUTOR_KERNEL_SPEEDUP_MIN,
    "executor_compiled_paxos_inlined": 3.0,
    "campaign_compiled": 1.5,
    "campaign_compiled_seed_sweep": 2.5,
}

#: Maximum tolerated supervised-pool slowdown vs the raw
#: ``ProcessPoolExecutor`` on the same cells (fraction of raw rate).
SUPERVISED_OVERHEAD_MAX = 0.10

#: Maximum tolerated loopback-fabric slowdown vs the supervised pool
#: on the same cells (fraction of supervised rate).  The fabric adds
#: framing, leases, and heartbeats per cell; none of that may cost
#: more than this.
FABRIC_OVERHEAD_MAX = 0.15


# -- workloads -----------------------------------------------------------


def _spin(ctx):
    from .runtime import ops

    while True:
        yield ops.Nop()


def _reader_writer(ctx):
    from .runtime import ops

    me = ctx.pid.index
    while True:
        yield ops.Write(f"cell/{me}", me)
        yield ops.Read(f"cell/{(me + 1) % ctx.n_computation}")


def _snapper(ctx):
    from .runtime import ops

    for i in range(200):
        yield ops.Write(f"arr/{ctx.pid.index}/{i}", i)
    while True:
        yield ops.Snapshot(f"arr/{ctx.pid.index}/")


def _paxos_contender(ctx):
    """The ``yield from``-delegating workload class: contended register
    Paxos (the per-step agreement substrate of the paper's Figure 2),
    every operation reached through inlined generator subroutines.  The
    module reference must be a bench-module global — not a function
    local — so the compiler can resolve and statically inline the
    delegated subroutines."""
    me = ctx.pid.index
    n = ctx.n_computation
    instance = 0
    round_number = me
    while True:
        decided = yield from _paxos.propose(
            f"bench/{instance}",
            me,
            n,
            _paxos.make_ballot(round_number, me, n),
            me,
        )
        if decided is not None:
            instance += 1
            round_number = me
        else:
            round_number += n


def _bench_executor(
    factory, n: int, steps: int, *, pattern=None, sched=None
) -> dict[str, Any]:
    from .core import System
    from .runtime import Executor, RoundRobinScheduler

    t0 = time.perf_counter()
    system = System(
        inputs=tuple(range(n)),
        c_factories=[factory] * n,
        pattern=pattern,
    )
    executor = Executor(
        system, sched or RoundRobinScheduler(), max_steps=steps
    )
    result = executor.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "steps_per_s": result.steps / wall,
        "steps": result.steps,
    }


def _bench_executor_compiled(
    factory, n: int, steps: int, *, pattern=None, sched=None
) -> dict[str, Any]:
    """Same workload shape as :func:`_bench_executor`, driven through
    the compiled kernel.  The factory is compiled *before* the timed
    region: the content-hash source cache makes compilation a one-time
    cost in real workloads, so steady-state throughput is what the
    benchmark tracks.  System and :class:`CompiledRun` construction stay
    inside the timed region, mirroring the interpreted measurement."""
    from .core import System
    from .kernel import CompiledRun, compile_automaton
    from .runtime import RoundRobinScheduler

    compile_automaton(factory)  # warm the content-hash cache
    t0 = time.perf_counter()
    system = System(
        inputs=tuple(range(n)),
        c_factories=[factory] * n,
        pattern=pattern,
    )
    run = CompiledRun(
        system, sched or RoundRobinScheduler(), max_steps=steps
    )
    result = run.run()
    wall = time.perf_counter() - t0
    if run.fallback_pids:
        raise RuntimeError(
            f"bench workload fell back to the interpreter for "
            f"{sorted(p.name for p in run.fallback_pids)}"
        )
    return {
        "wall_s": wall,
        "steps_per_s": result.steps / wall,
        "steps": result.steps,
        "kernel": "compiled",
        "compiled_processes": len(run.compiled_pids),
    }


def _run_explorer(task, build, max_depth, gate=None, **knobs) -> dict[str, Any]:
    from .checker import ScheduleExplorer, task_safety_verdict

    explorer = ScheduleExplorer(
        build, max_depth=max_depth, candidate_filter=gate, **knobs
    )
    t0 = time.perf_counter()
    report = explorer.check(task_safety_verdict(task))
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "explored_per_s": report.explored / wall,
        "explored": report.explored,
        "completed": report.completed_runs,
        "violations": len(report.violations),
        "por_pruned": report.por_pruned,
        "symmetry_pruned": report.symmetry_pruned,
        "deduplicated": report.deduplicated,
    }


def _bench_explorer(max_depth: int, **knobs) -> dict[str, Any]:
    """The standard exploration benchmark: exhaustive task-safety check
    of the Figure 4 renaming algorithm, two participants of three."""
    from .algorithms.renaming_figure4 import figure4_factories
    from .checker import drop_null_s_processes
    from .core import System
    from .tasks import RenamingTask

    task = RenamingTask(3, 2, 3)

    def build():
        return System(inputs=(1, 2, None), c_factories=figure4_factories(3))

    return _run_explorer(
        task, build, max_depth, gate=drop_null_s_processes, **knobs
    )


def _bench_explorer_deep(max_depth: int) -> dict[str, Any]:
    """Four-process wait-free renaming under POR + dedup: a workload
    whose naive tree (hundreds of millions of nodes at depth 14) is out
    of reach without the reductions."""
    from .algorithms.renaming_figure4 import figure4_factories
    from .checker import drop_null_s_processes
    from .core import System
    from .tasks import RenamingTask

    task = RenamingTask(4, 3, 5)

    def build():
        return System(
            inputs=(1, 2, 3, None), c_factories=figure4_factories(4)
        )

    return _run_explorer(
        task,
        build,
        max_depth,
        gate=drop_null_s_processes,
        por=True,
        dedup=True,
    )


def _bench_explorer_symmetry(max_depth: int) -> dict[str, Any]:
    """Symmetry reduction over four interchangeable processes running
    2-set agreement with equal inputs, 2-concurrently."""
    from .algorithms.kset_concurrent import kset_concurrent_factories
    from .checker import concurrency_gate, drop_null_s_processes
    from .core import System
    from .tasks import SetAgreementTask

    task = SetAgreementTask(4, 2)

    def build():
        return System(
            inputs=(1, 1, 1, 1), c_factories=kset_concurrent_factories(4, 2)
        )

    def gate(executor, candidates):
        return concurrency_gate(2)(
            executor, drop_null_s_processes(executor, candidates)
        )

    return _run_explorer(
        task,
        build,
        max_depth,
        gate=gate,
        symmetry=True,
        por=True,
        dedup=True,
    )


def _bench_campaign(
    cells: int, workers: int, *, kernel: str = "interp"
) -> dict[str, Any]:
    from .chaos import run_campaign, smoke_campaign

    if kernel == "compiled":
        # As in _bench_executor_compiled: the content-hash cache makes
        # compilation a one-time cost in real workloads, so steady-state
        # campaign throughput is what the benchmark tracks.
        from .kernel import warm_cache

        warm_cache()
    t0 = time.perf_counter()
    report = run_campaign(
        smoke_campaign(), limit=cells, workers=workers, kernel=kernel
    )
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "cells_per_s": len(report.records) / wall,
        "cells": len(report.records),
        "workers": workers,
        "kernel": kernel,
        "counts": dict(report.counts),
    }


def _sweep_campaign(seeds: int):
    """One system shape, many detector seeds, no crashes: k-set
    agreement over the paxos-inlined kset_vector algorithm.  This is
    the many-seed sweep the shared COW lane state exists for — every
    cell differs only in its seed, so all lanes share one
    :class:`~repro.kernel.engine.LaneState`."""
    from .chaos.campaign import CampaignSpec, Workload

    return CampaignSpec(
        name="bench-seed-sweep",
        workloads=[
            Workload(
                task={"family": "set-agreement", "n": 3, "k": 2},
                detector={"family": "vector-omega", "k": 2},
            )
        ],
        patterns=[[]],
        schedulers=({"kind": "seeded", "seed": 1},),
        seeds=tuple(range(seeds)),
        stabilization_times=(8,),
        max_steps=60_000,
    )


def _bench_campaign_sweep(seeds: int, *, kernel: str) -> dict[str, Any]:
    from .chaos import run_campaign

    if kernel == "compiled":
        from .kernel import warm_cache

        warm_cache()  # compile outside the timed region, as above
    t0 = time.perf_counter()
    report = run_campaign(_sweep_campaign(seeds), kernel=kernel)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "cells_per_s": len(report.records) / wall,
        "cells": len(report.records),
        "kernel": kernel,
        "counts": dict(report.counts),
    }


def _bench_campaign_pools(cells: int, workers: int) -> dict[str, Any]:
    """Supervised pool vs raw ``ProcessPoolExecutor`` on identical
    cells: the resilience layer's crash detection, budget plumbing, and
    per-worker pipes must cost less than
    :data:`SUPERVISED_OVERHEAD_MAX` of raw throughput."""
    from .chaos import run_campaign, smoke_campaign

    spec = smoke_campaign()
    t0 = time.perf_counter()
    supervised = run_campaign(spec, limit=cells, workers=workers)
    supervised_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    raw = run_campaign(spec, limit=cells, workers=workers, pool="raw")
    raw_wall = time.perf_counter() - t0
    assert supervised.render() == raw.render()  # same cells, same report
    supervised_rate = len(supervised.records) / supervised_wall
    raw_rate = len(raw.records) / raw_wall
    return {
        "wall_s": supervised_wall,
        "cells_per_s": supervised_rate,
        "raw_cells_per_s": raw_rate,
        "raw_wall_s": raw_wall,
        "overhead_frac": 1.0 - supervised_rate / raw_rate,
        "cells": len(supervised.records),
        "workers": workers,
    }


def _bench_campaign_fabric(cells: int, workers: int) -> dict[str, Any]:
    """Loopback fabric vs the supervised pool on identical cells: the
    lease/heartbeat/framing machinery must cost less than
    :data:`FABRIC_OVERHEAD_MAX` of supervised throughput.  Worker
    interpreters are spawned and registered *before* the fabric's timed
    region (via ``wait_for_workers``), so the measurement is
    steady-state dispatch overhead, not Python start-up — the
    supervised side pays only cheap ``multiprocessing`` forks, the
    fabric side would otherwise pay two full CLI imports."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    from .chaos import run_campaign, smoke_campaign
    from .resilience import FabricConfig, FabricCoordinator

    spec = smoke_campaign()
    t0 = time.perf_counter()
    supervised = run_campaign(spec, limit=cells, workers=workers)
    supervised_wall = time.perf_counter() - t0

    coordinator = FabricCoordinator(FabricConfig())
    host, port = coordinator.address
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--connect", f"{host}:{port}",
                "--name", f"bench-{i}",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        for i in range(workers)
    ]
    try:
        coordinator.wait_for_workers(len(procs), timeout_s=30.0)
        t0 = time.perf_counter()
        fabric = run_campaign(
            spec, limit=cells, backend="fabric", fabric=coordinator
        )
        fabric_wall = time.perf_counter() - t0
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    assert fabric.render() == supervised.render()  # byte-identical
    supervised_rate = len(supervised.records) / supervised_wall
    fabric_rate = len(fabric.records) / fabric_wall
    return {
        "wall_s": fabric_wall,
        "cells_per_s": fabric_rate,
        "supervised_cells_per_s": supervised_rate,
        "supervised_wall_s": supervised_wall,
        "overhead_frac": 1.0 - fabric_rate / supervised_rate,
        "cells": len(fabric.records),
        "workers": workers,
        "fabric": fabric.fabric.summary() if fabric.fabric else "",
    }


def supervised_overhead_problems(
    results: Mapping[str, Mapping[str, Any]],
    *,
    max_overhead: float = SUPERVISED_OVERHEAD_MAX,
) -> list[str]:
    """Gate the supervised pool's measured overhead against the raw
    pool from the same run (empty list = within budget or not run)."""
    metrics = results.get("campaign_supervised")
    if not metrics or "overhead_frac" not in metrics:
        return []
    overhead = metrics["overhead_frac"]
    if overhead > max_overhead:
        return [
            f"campaign_supervised: supervised pool is "
            f"{overhead:.1%} slower than the raw pool "
            f"(budget: {max_overhead:.0%})"
        ]
    return []


def fabric_overhead_problems(
    results: Mapping[str, Mapping[str, Any]],
    *,
    max_overhead: float = FABRIC_OVERHEAD_MAX,
) -> list[str]:
    """Gate the loopback fabric's measured overhead against the
    supervised pool from the same run (empty list = within budget or
    not run)."""
    metrics = results.get("campaign_fabric_loopback")
    if not metrics or "overhead_frac" not in metrics:
        return []
    overhead = metrics["overhead_frac"]
    if overhead > max_overhead:
        return [
            f"campaign_fabric_loopback: fabric dispatch is "
            f"{overhead:.1%} slower than the supervised pool "
            f"(budget: {max_overhead:.0%})"
        ]
    return []


def kernel_speedup_problems(
    results: Mapping[str, Mapping[str, Any]],
    *,
    minimums: Mapping[str, float] = KERNEL_SPEEDUP_MIN,
) -> list[str]:
    """Gate each compiled benchmark against its interpreted counterpart
    from the same run (empty list = every measured pair meets its
    :data:`KERNEL_SPEEDUP_MIN` entry, or the pair was not run).  Pairs
    without an entry are reported via :func:`render` but not gated."""
    problems: list[str] = []
    for compiled_name, interp_name in KERNEL_PAIRS.items():
        min_speedup = minimums.get(compiled_name)
        if min_speedup is None:
            continue
        rate_key = RATE_KEYS[compiled_name]
        compiled = results.get(compiled_name, {}).get(rate_key)
        interp = results.get(interp_name, {}).get(rate_key)
        if not compiled or not interp:
            continue
        speedup = compiled / interp
        if speedup < min_speedup:
            problems.append(
                f"{compiled_name}: only {speedup:.1f}x over "
                f"{interp_name} (minimum: {min_speedup:g}x)"
            )
    return problems


def run_benchmarks(
    *, smoke: bool = False, workers: int = 1
) -> dict[str, dict[str, Any]]:
    """Run the suite; smoke mode shrinks workloads, not the name set."""
    exec_steps = 5_000 if smoke else 50_000
    snap_steps = 3_000 if smoke else 30_000
    # Compiled executor cases run 10x the steps of their interpreted
    # twins: at multi-M steps/s the interpreted budgets finish in
    # single-digit milliseconds, where construction jitter swamps the
    # steady-state rate.  Rates are compared, never wall totals, so the
    # asymmetry is harmless (same reason smoke stays comparable to
    # full).
    compiled_steps = exec_steps * 10
    compiled_snap_steps = snap_steps * 10
    depth = 12 if smoke else 16
    cells = 4 if smoke else 12
    sweep_seeds = 6 if smoke else 16
    from .core.failures import FailurePattern
    from .runtime.scheduler import SeededRandomScheduler

    suite: dict[str, Callable[[], dict[str, Any]]] = {
        "executor_rw_n8": lambda: _bench_executor(
            _reader_writer, 8, exec_steps
        ),
        "executor_nop_n32": lambda: _bench_executor(_spin, 32, exec_steps),
        "executor_crashes": lambda: _bench_executor(
            _reader_writer,
            6,
            exec_steps,
            pattern=FailurePattern(6, (3, 40, None, 500, None, 9_000)),
            sched=SeededRandomScheduler(7),
        ),
        "executor_snapshot": lambda: _bench_executor(
            _snapper, 4, snap_steps
        ),
        "executor_compiled_rw_n8": lambda: _bench_executor_compiled(
            _reader_writer, 8, compiled_steps
        ),
        "executor_compiled_nop_n32": lambda: _bench_executor_compiled(
            _spin, 32, compiled_steps
        ),
        "executor_compiled_crashes": lambda: _bench_executor_compiled(
            _reader_writer,
            6,
            compiled_steps,
            pattern=FailurePattern(6, (3, 40, None, 500, None, 9_000)),
            sched=SeededRandomScheduler(7),
        ),
        "executor_compiled_snapshot": lambda: _bench_executor_compiled(
            _snapper, 4, compiled_snap_steps
        ),
        "executor_paxos_inlined": lambda: _bench_executor(
            _paxos_contender, 3, exec_steps
        ),
        "executor_compiled_paxos_inlined": lambda: (
            _bench_executor_compiled(_paxos_contender, 3, compiled_steps)
        ),
        "explorer_figure4_d16": lambda: _bench_explorer(depth),
        "explorer_por_figure4_d16": lambda: _bench_explorer(
            depth, por=True
        ),
        "explorer_por_deep_renaming": lambda: _bench_explorer_deep(
            10 if smoke else 14
        ),
        "explorer_symmetry_kset": lambda: _bench_explorer_symmetry(
            12 if smoke else 16
        ),
        "campaign_smoke": lambda: _bench_campaign(cells, workers),
        "campaign_compiled": lambda: _bench_campaign(
            cells, 1, kernel="compiled"
        ),
        "campaign_seed_sweep": lambda: _bench_campaign_sweep(
            sweep_seeds, kernel="interp"
        ),
        "campaign_compiled_seed_sweep": lambda: _bench_campaign_sweep(
            sweep_seeds, kernel="compiled"
        ),
        "campaign_supervised": lambda: _bench_campaign_pools(
            cells, max(2, workers)
        ),
        "campaign_fabric_loopback": lambda: _bench_campaign_fabric(
            cells, max(2, workers)
        ),
    }
    return {name: fn() for name, fn in suite.items()}


# -- comparison ----------------------------------------------------------


def compare_against_baseline(
    results: Mapping[str, Mapping[str, Any]],
    baseline: Mapping[str, Mapping[str, Any]],
    *,
    fail_threshold: float,
) -> list[str]:
    """Return one message per benchmark whose throughput dropped below
    ``baseline rate / fail_threshold`` (benchmarks missing on either
    side are skipped — names are stable, workload sizes are not)."""
    problems: list[str] = []
    for name, rate_key in RATE_KEYS.items():
        current = results.get(name, {}).get(rate_key)
        reference = baseline.get(name, {}).get(rate_key)
        if not current or not reference:
            continue
        if current < reference / fail_threshold:
            problems.append(
                f"{name}: {rate_key} {current:.0f} is more than "
                f"{fail_threshold:g}x below baseline {reference:.0f}"
            )
    return problems


def load_baseline(path: str) -> dict[str, dict[str, Any]]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return data.get("benchmarks", data)


def compare_runs(
    old: Mapping[str, Mapping[str, Any]],
    new: Mapping[str, Mapping[str, Any]],
) -> str:
    """Render a per-case delta table between two results files.

    One line per benchmark name present in either run: old rate, new
    rate, and the speedup factor (``new / old``, so >1 is faster).
    Cases missing on one side render a ``-`` instead of a factor —
    names are stable across suite revisions, but new cases do appear.
    """
    names = list(
        dict.fromkeys([*RATE_KEYS, *old, *new])  # RATE_KEYS order first
    )
    lines = [f"{'benchmark':28} {'old':>12} {'new':>12} {'delta':>8}"]
    for name in names:
        if name not in old and name not in new:
            continue
        rate_key = RATE_KEYS.get(name, "wall_s")
        before = old.get(name, {}).get(rate_key)
        after = new.get(name, {}).get(rate_key)
        fmt = lambda v: f"{v:>12.0f}" if v else f"{'-':>12}"
        delta = f"{after / before:>7.2f}x" if before and after else f"{'-':>8}"
        lines.append(f"{name:28} {fmt(before)} {fmt(after)} {delta}")
    return "\n".join(lines)


def render(results: Mapping[str, Mapping[str, Any]]) -> str:
    lines = []
    for name, metrics in results.items():
        rate_key = RATE_KEYS.get(name, "wall_s")
        line = (
            f"{name:28} {metrics.get(rate_key, 0.0):>12.0f} {rate_key}"
            f"  ({metrics['wall_s']:.2f}s)"
        )
        interp_name = KERNEL_PAIRS.get(name)
        if interp_name is not None:
            reference = results.get(interp_name, {}).get(rate_key)
            current = metrics.get(rate_key)
            if reference and current:
                line += f"  [{current / reference:.1f}x vs {interp_name}]"
        lines.append(line)
    return "\n".join(lines)
