"""A restricted algorithm solving k-set agreement in k-concurrent runs.

k-set agreement is the canonical inhabitant of the paper's class k: it
is solvable k-concurrently but not (k+1)-concurrently.  This module
provides the upper-bound half as a *restricted* algorithm (S-processes
take null steps), used by the Theorem 9 composition tests and by the
concurrency-level classifier.

Algorithm ("announce or adopt"): write your input; take an atomic
snapshot of the announcement board; if any value is announced, decide
one (the smallest, for determinism); otherwise announce your own input
and decide it.

Why at most ``k`` distinct values are decided in a k-concurrent run:
every process that decides its own value saw an *empty* board, so its
snapshot preceded the first announcement; from that snapshot until the
first announcement the process is continuously participating and
undecided.  Just before the first announcement, all such processes are
simultaneously undecided participants — in a k-concurrent run there are
at most ``k`` of them, so at most ``k`` values are ever announced, and
adopters only copy announced values.  (In a run with more concurrency
the bound fails, and the test suite exhibits violations — matching the
task's class exactly.)
"""

from __future__ import annotations

from ..core.process import ProcessContext
from ..runtime import ops

ANNOUNCE_PREFIX = "ksetc/ann/"


def kset_concurrent_factory(k: int):
    """Automaton factory (the parameter only names the register family so
    independent instances can coexist; the logic is k-independent)."""

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        board = yield ops.Snapshot(ANNOUNCE_PREFIX)
        if board:
            yield ops.Decide(min(board.values()))
            return
        yield ops.Write(f"{ANNOUNCE_PREFIX}{me}", ctx.input_value)
        yield ops.Decide(ctx.input_value)

    return factory


def kset_concurrent_factories(n: int, k: int) -> list:
    return [kset_concurrent_factory(k)] * n
