"""Safe agreement — the BG-simulation building block [5, 7].

Safe agreement is consensus weakened exactly enough to be wait-free
implementable from registers: agreement and validity always hold, but a
``resolve`` may report *unresolved* while some proposer is inside its
propose section; if a proposer crashes there, the object may stay
unresolved forever (it "blocks").  BG-simulation's charge is that each
crashed simulator can block at most one object at a time.

Two implementations share the interface:

* :class:`SafeAgreement` — the classic register-only protocol (publish
  value, raise level to 1, snapshot, back off to 0 if someone is already
  at 2, else commit to 2; resolution returns the minimum-id value at
  level 2 once nobody is at level 1).
* :class:`CasAgreement` — a never-blocking variant backed by the modeled
  compare-and-swap register (see DESIGN.md's substitution table).  Its
  safety is identical; its ``resolve`` succeeds as soon as any propose
  finished.  The Theorem 9 composed solver uses it in place of the
  Extended-BG abort mechanism [15]: where the paper *aborts* a blocked
  agreement so the simulation can proceed, we make blocking impossible
  in the first place, which preserves every property the simulation
  needs (agreement, validity, and progress of the unblocked simulator).

All methods are subroutine generators (compose with ``yield from``).
"""

from __future__ import annotations

from typing import Any

from ..runtime import ops

#: Sentinel: the agreement cannot be resolved yet (some propose is in
#: flight).  Distinct from any proposable value.
UNRESOLVED = "safe-agreement-unresolved"


class SafeAgreement:
    """Classic register-only safe agreement among ``parties`` slots.

    Args:
        name: unique register-family prefix for this instance.
        parties: number of proposer slots (each proposer uses a distinct
            slot; one propose per slot).
    """

    def __init__(self, name: str, parties: int) -> None:
        self.name = name
        self.parties = parties

    def _val(self, slot: int) -> str:
        return f"{self.name}/val/{slot}"

    def _lev(self, slot: int) -> str:
        return f"{self.name}/lev/{slot}"

    def propose(self, slot: int, value: Any):
        """Subroutine: propose ``value`` from ``slot``.

        After completion the object is resolvable (by this proposer at
        least); crashing inside this subroutine may block the object.
        """
        if value is None:
            raise ValueError("cannot propose None")
        yield ops.Write(self._val(slot), value)
        yield ops.Write(self._lev(slot), 1)
        levels = yield ops.Snapshot(f"{self.name}/lev/")
        if 2 in levels.values():
            yield ops.Write(self._lev(slot), 0)
        else:
            yield ops.Write(self._lev(slot), 2)
        return None

    def resolve(self):
        """Subroutine: the agreed value, or :data:`UNRESOLVED`.

        Resolves once no slot is at level 1 and some slot reached
        level 2; the agreed value is the level-2 value of the smallest
        slot, so all resolvers agree.
        """
        levels = yield ops.Snapshot(f"{self.name}/lev/")
        by_slot = {
            int(name[len(f"{self.name}/lev/"):]): lev
            for name, lev in levels.items()
        }
        if any(lev == 1 for lev in by_slot.values()):
            return UNRESOLVED
        committed = sorted(s for s, lev in by_slot.items() if lev == 2)
        if not committed:
            return UNRESOLVED
        value = yield ops.Read(self._val(committed[0]))
        return value


class CasAgreement:
    """Never-blocking agreement from one compare-and-swap register.

    Same interface as :class:`SafeAgreement`; ``resolve`` returns
    :data:`UNRESOLVED` only before the first propose completes.
    """

    def __init__(self, name: str, parties: int) -> None:
        self.name = name
        self.parties = parties

    def _winner(self) -> str:
        return f"{self.name}/winner"

    def propose(self, slot: int, value: Any):
        if value is None:
            raise ValueError("cannot propose None")
        yield ops.CompareAndSwap(self._winner(), None, (slot, value))
        return None

    def resolve(self):
        cell = yield ops.Read(self._winner())
        if cell is None:
            return UNRESOLVED
        return cell[1]


def agree(agreement, slot: int, value: Any):
    """Subroutine: propose then spin-resolve; returns the agreed value.

    Only appropriate where the caller may block (it loops on
    :data:`UNRESOLVED`)."""
    yield from agreement.propose(slot, value)
    while True:
        outcome = yield from agreement.resolve()
        if outcome is not UNRESOLVED:
            return outcome
