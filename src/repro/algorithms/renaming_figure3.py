"""Figure 3: a 1-resilient strong j-renaming algorithm built from a
(hypothetical) 2-concurrent solver — the gadget behind Theorem 12.

Theorem 12's proof assumes, for contradiction, an algorithm ``A``
solving strong j-renaming 2-concurrently, and wraps it so that in every
1-resilient run (at least ``j - 1`` of the ``j`` participants keep
taking steps) the inner runs of ``A`` are 2-concurrent: a process takes
steps of ``A`` only while it is among the two smallest-id not-yet-
decided participants (or the single smallest when only ``j - 1``
participate).  Combined with [15], that contradicts Lemma 11.

No such register-only ``A`` exists — that is the theorem.  This module
implements the *wrapper* faithfully and executable; the tests drive it
with a stand-in inner solver that genuinely is 2-concurrently correct
(it uses the modeled compare-and-swap primitive, which register
protocols cannot implement — exactly why the paper's contradiction
machinery never fires on real registers).  The tests verify both of the
wrapper's charges: the inner runs it produces are 2-concurrent, and the
wrapped system solves strong j-renaming in 1-resilient runs.
"""

from __future__ import annotations

from typing import Callable

from ..core.process import ProcessContext
from ..runtime import ops

PARTICIPATION_PREFIX = "f3/R/"


def cas_strong_renaming_factory(ctx: ProcessContext):
    """Stand-in inner solver: strong renaming by fetch-and-increment on a
    compare-and-swap counter.  Correct at any concurrency — but built on
    a primitive strictly stronger than registers, so it does not
    contradict Lemma 11."""
    while True:
        current = yield ops.Read("f3/inner/counter")
        taken = current if current is not None else 0
        prior = yield ops.CompareAndSwap(
            "f3/inner/counter", current, taken + 1
        )
        if prior == current:
            yield ops.Decide(taken + 1)
            return


def figure3_factory(j: int, inner_factory: Callable):
    """Wrap ``inner_factory`` (the presumed 2-concurrent strong
    j-renaming solver) per Figure 3.

    The wrapped process registers (``R_i := 1``), then repeatedly reads
    the participation board: it advances its inner automaton by one step
    only if it is among the two smallest-id undecided participants of a
    full board (``|S| = j``) or the single smallest of a ``j - 1``
    board.  On an inner decision it publishes ``R_i := 0`` and decides
    the inner name.
    """

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        inner = inner_factory(ctx)
        try:
            pending = next(inner)
        except StopIteration:
            raise RuntimeError("inner solver produced no steps")
        yield ops.Write(f"{PARTICIPATION_PREFIX}{me}", 1)  # line 37
        while True:
            board = yield ops.Snapshot(PARTICIPATION_PREFIX)
            participants = sorted(
                int(name[len(PARTICIPATION_PREFIX):]) for name in board
            )
            undecided = sorted(
                int(name[len(PARTICIPATION_PREFIX):])
                for name, value in board.items()
                if value == 1
            )
            if not undecided:
                continue
            min1 = undecided[0]
            min2 = undecided[1] if len(undecided) > 1 else min1  # line 42
            allowed = (
                len(participants) == j and me in (min1, min2)
            ) or (len(participants) == j - 1 and me == min1)  # line 43
            if not allowed:
                yield ops.Nop()
                continue
            # Take one more step of A (line 44).
            if isinstance(pending, ops.Decide):
                yield ops.Write(f"{PARTICIPATION_PREFIX}{me}", 0)  # line 46
                yield ops.Decide(pending.value)  # line 47
                return
            result = yield pending
            try:
                pending = inner.send(result)
            except StopIteration:
                raise RuntimeError("inner solver halted without deciding")

    return factory


def figure3_factories(n: int, j: int, inner_factory: Callable | None = None):
    inner = inner_factory or cas_strong_renaming_factory
    return [figure3_factory(j, inner)] * n
