"""Theorem 9: anti-Omega-k solves every k-concurrently solvable task.

The paper's double simulation, assembled from this package's parts:

* the ``n`` real C-processes and the ``n`` S-processes (querying
  vector-Omega-k, the equivalent form of anti-Omega-k [28]) run the
  Figure 2 simulation (:mod:`repro.algorithms.kcode_simulation`) of
  ``k`` codes ``p'_1 .. p'_k``;
* those ``k`` codes are BG simulators
  (:mod:`repro.algorithms.bg_simulation`) jointly running the ``n``
  codes ``p''_1 .. p''_n`` of the given *restricted* k-concurrent
  algorithm ``A``, advancing the smallest-id participating undecided
  unblocked code first;
* real task inputs are injected into the simulated world by the log
  entries; BG decision registers are the Figure 2 result registers, so
  real process ``p_i`` departs and decides as soon as simulated
  ``p''_i`` decides.

Progress: vector-Omega-k eventually pins a correct leader on some
position, that position's BG simulator takes infinitely many simulated
steps, and (with the never-blocking agreement — the Extended-BG
substitution of DESIGN.md) it single-handedly drives every participating
code of ``A`` to a decision.  Concurrency: codes are started
smallest-undecided-first by at most ``k`` simulators, so the simulated
run of ``A`` is (at most) k-concurrent, where ``A`` is correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .bg_simulation import BGSpec, bg_factories
from .kcode_simulation import F2Spec, figure2_factories


@dataclass(frozen=True)
class Theorem9Solver:
    """Assembled factories for one Theorem 9 system.

    Attributes:
        c_factories / s_factories: plug into a
            :class:`~repro.core.system.System` with a vector-Omega-k (or
            anti-Omega-k-equivalent) detector.
        bg_spec / f2_spec: the two layers, exposed for inspection.
    """

    c_factories: Sequence[Callable]
    s_factories: Sequence[Callable]
    bg_spec: BGSpec
    f2_spec: F2Spec


def theorem9_solver(
    *,
    n: int,
    k: int,
    algorithm_factories: Sequence[Callable],
    name: str = "t9",
    agreement: str = "cas",
) -> Theorem9Solver:
    """Build the Theorem 9 solver for a k-concurrent algorithm ``A``.

    Args:
        n: number of C-processes (= S-processes = codes of ``A``).
        k: concurrency class; the detector must be (at least)
            vector-Omega-k.
        algorithm_factories: the ``n`` C-automata of the restricted
            algorithm ``A`` (register protocol; correct in k-concurrent
            runs).
        name: register-family prefix (unique per embedded instance).
        agreement: BG agreement flavour (``"cas"`` — default, never
            blocks; or ``"safe"`` — classic, may block and is then only
            live while every simulator keeps taking simulated steps).
    """
    if len(algorithm_factories) != n:
        raise ValueError(
            f"{len(algorithm_factories)} code factories for n={n}"
        )
    bg_spec = BGSpec(
        name=f"{name}/bg",
        code_factories=list(algorithm_factories),
        simulators=k,
        static_inputs=None,
        input_prefix="taskinp/",
        agreement=agreement,
    )
    f2_spec = F2Spec(
        k=k,
        code_factories=bg_factories(bg_spec),
        n=n,
        name=f"{name}/f2",
        input_prefix="taskinp/",
        result_register=bg_spec.decision_register,
    )
    c_factories, s_factories = figure2_factories(f2_spec)
    return Theorem9Solver(
        c_factories=c_factories,
        s_factories=s_factories,
        bg_spec=bg_spec,
        f2_spec=f2_spec,
    )
