"""Section 2.2's observation: ``n`` S-processes solve n-set agreement
with **no** failure-detection at all.

Each S-process waits until at least one C-process has written its input,
then writes that value to a shared variable ``V`` (once).  Each C-process
waits until ``V`` is written and outputs what it read.  Because at least
one S-process is correct, ``V`` is eventually written; because there are
only ``n`` S-processes, at most ``n`` distinct values are ever in ``V``.

This is the reason the paper restricts attention to systems where the
number of C-processes does not exceed the number of S-processes: extra
S-processes add synchronization power even without a detector.
"""

from __future__ import annotations

from typing import Any

from ..core.process import ProcessContext
from ..core.system import INPUT_REGISTER_PREFIX
from ..runtime import ops

_V_REGISTER = "shelper/V"


def _first_input(snapshot: dict[str, Any]) -> Any:
    if not snapshot:
        return None
    name = min(snapshot, key=lambda s: int(s[len(INPUT_REGISTER_PREFIX):]))
    return snapshot[name]


def helper_s_factory(ctx: ProcessContext):
    """S-process: copy the first observed input into ``V`` (once)."""
    while True:
        snapshot = yield ops.Snapshot(INPUT_REGISTER_PREFIX)
        value = _first_input(snapshot)
        if value is not None:
            yield ops.Write(_V_REGISTER, value)
            break
    while True:
        yield ops.Nop()


def helper_c_factory(ctx: ProcessContext):
    """C-process: decide the first value that appears in ``V``."""
    while True:
        value = yield ops.Read(_V_REGISTER)
        if value is not None:
            yield ops.Decide(value)
            return
