"""Splitters and Moir-Anderson grid renaming — the classical wait-free
renaming baseline alongside Figure 4's Attiya-style algorithm.

A *splitter* (Moir-Anderson / Lamport's fast-mutex gadget) is built
from two registers and routes each of ``k`` concurrent visitors to
``stop`` / ``right`` / ``down`` such that at most one stops, at most
``k - 1`` go right, and at most ``k - 1`` go down.

A triangular ``j x j`` grid of splitters renames ``j`` participants
into ``{1, .., j(j+1)/2}`` wait-free: start at (0, 0), move per the
splitter outcome, stop within ``j - 1`` moves (the visitor count
strictly shrinks along every path), and take the stopped cell's index
as the new name.

The renaming benchmarks chart this against Figure 4: Moir-Anderson
needs no concurrency gating at all but pays a *quadratic* namespace,
while Figure 4's namespace is ``j + k - 1`` under a k-concurrency gate
(linear; ``2j - 1`` wait-free) — the series shows exactly where each
wins, mirroring the renaming literature the paper builds on [3, 6].
"""

from __future__ import annotations

from typing import Literal

from ..core.process import ProcessContext
from ..runtime import ops

Outcome = Literal["stop", "right", "down"]


def splitter(name: str, me: int):
    """Subroutine: visit the splitter ``name``; returns an outcome.

    Classic two-register construction: write X := me; if Y is set, go
    right; set Y; if X is still me, stop, else go down.
    """
    yield ops.Write(f"{name}/X", me)
    door = yield ops.Read(f"{name}/Y")
    if door is not None:
        return "right"
    yield ops.Write(f"{name}/Y", True)
    last = yield ops.Read(f"{name}/X")
    if last == me:
        return "stop"
    return "down"


def grid_cell_name(row: int, column: int) -> int:
    """Diagonal-major numbering of the triangular grid, 1-based."""
    diagonal = row + column
    return diagonal * (diagonal + 1) // 2 + row + 1


def moir_anderson_factory(j: int):
    """Automaton factory: Moir-Anderson renaming for at most ``j``
    participants; decides a name in ``{1, .., j(j+1)/2}``."""

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        row = column = 0
        while row + column <= j - 1:
            outcome = yield from splitter(f"ma/{row}/{column}", me)
            if outcome == "stop":
                yield ops.Decide(grid_cell_name(row, column))
                return
            if outcome == "down":
                row += 1
            else:
                column += 1
        raise RuntimeError(
            f"fell off the grid: more than {j} concurrent participants?"
        )

    return factory


def moir_anderson_factories(n: int, j: int) -> list:
    return [moir_anderson_factory(j)] * n


def namespace_size(j: int) -> int:
    """The grid's namespace: j(j+1)/2."""
    return j * (j + 1) // 2
