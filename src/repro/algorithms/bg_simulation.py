"""BG simulation [5, 7]: k simulators run n register-protocol codes.

The paper leans on BG-simulation twice: Figure 2's simulated algorithm
``B`` is a BG simulation of the k-concurrent algorithm ``A`` (Theorem 9),
and the extraction algorithm of Figure 1 BG-simulates the S-part of
``A`` against a failure-detector DAG.

What BG needs from the simulated codes is determinism plus read/write
semantics.  We simulate at *operation* granularity: the codes are
ordinary automata of this package (generators yielding ``Read`` /
``Write`` / ``Snapshot`` / ``Nop`` / ``Decide``), and each executed
operation of each code is funnelled through one (safe-)agreement object,
so all simulators observe identical per-code result sequences and can
deterministically replay the code generators.

The simulated *memory* is virtual: every simulator publishes, in its own
single-writer cell, its current knowledge — for each code, how many
steps it performed and the latest timestamped write it made to each
virtual register.  A snapshot of all cells, merged register-wise by
``(seq, writer)``, is a legal atomic view of the virtual memory (the
folklore construction of MWMR registers from single-writer snapshot
memory).  A simulator computes its *proposal* for a code's next
operation result from such a view and feeds it to the agreement object;
whatever value wins is what every replica replays.

Blocking semantics are inherited from the agreement objects: with the
classic :class:`~repro.algorithms.safe_agreement.SafeAgreement`, a
simulator that stalls inside a propose blocks that one code and BG's
"each stalled simulator blocks at most one code" charge holds; with
:class:`~repro.algorithms.safe_agreement.CasAgreement` nothing ever
blocks (the Extended-BG substitution discussed in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.process import ProcessContext, c_process
from ..core.system import input_register
from ..errors import ProtocolError
from ..runtime import ops
from .safe_agreement import UNRESOLVED, CasAgreement, SafeAgreement

#: Agreement status values (see ``status`` subroutines below).
FREE = "free"
BUSY = "busy"
RESOLVED = "resolved"


def agreement_status(agreement):
    """Subroutine: classify an agreement as FREE / BUSY / RESOLVED.

    BUSY means a propose is (observably) in flight — the blocked state a
    BG simulator must route around.
    """
    if isinstance(agreement, CasAgreement):
        cell = yield ops.Read(f"{agreement.name}/winner")
        return FREE if cell is None else RESOLVED
    levels = yield ops.Snapshot(f"{agreement.name}/lev/")
    values = list(levels.values())
    if any(lev == 1 for lev in values):
        return BUSY
    if any(lev == 2 for lev in values):
        return RESOLVED
    return FREE


@dataclass(frozen=True)
class VWrite:
    """One timestamped virtual-register write."""

    seq: int
    writer: int
    value: Any

    def beats(self, other: "VWrite | None") -> bool:
        if other is None:
            return True
        return (self.seq, self.writer) > (other.seq, other.writer)


@dataclass
class _Knowledge:
    """What a simulator knows about one code."""

    steps: int = 0
    writes: dict[str, VWrite] = field(default_factory=dict)


def _merge_memory(cells: dict[str, Any]) -> dict[str, VWrite]:
    """Merge all published knowledge cells into a virtual memory view."""
    per_code: dict[int, _Knowledge] = {}
    for cell in cells.values():
        if cell is None:
            continue
        for code, knowledge in cell.items():
            best = per_code.get(code)
            if best is None or knowledge.steps > best.steps:
                per_code[code] = knowledge
    memory: dict[str, VWrite] = {}
    for knowledge in per_code.values():
        for register, write in knowledge.writes.items():
            if write.beats(memory.get(register)):
                memory[register] = write
    return memory


class _CodeRunner:
    """Deterministic local replay of one simulated code."""

    def __init__(self, code_index: int, factory, n_codes: int) -> None:
        self.code_index = code_index
        self.factory = factory
        self.n_codes = n_codes
        self.input_value: Any = None
        self.started = False
        self.generator = None
        self.pending: Any = None
        self.steps = 0
        self.writes: dict[str, VWrite] = {}
        self.decision: Any = None
        self.halted = False

    def set_input(self, value: Any) -> None:
        if self.started or value is None:
            return
        self.input_value = value

    @property
    def participating(self) -> bool:
        return self.input_value is not None

    def knowledge(self) -> _Knowledge:
        return _Knowledge(steps=self.steps, writes=dict(self.writes))

    def proposal(self, memory: dict[str, VWrite]) -> tuple:
        """Compute this code's next-step result from a memory view."""
        if not self.started:
            register = input_register(self.code_index)
            seq = memory[register].seq + 1 if register in memory else 1
            return ("input", seq)
        op = self.pending
        if isinstance(op, ops.Write):
            seq = (
                memory[op.register].seq + 1 if op.register in memory else 1
            )
            return ("write", seq)
        if isinstance(op, ops.Read):
            cell = memory.get(op.register)
            return ("read", cell.value if cell is not None else None)
        if isinstance(op, ops.Snapshot):
            view = tuple(
                sorted(
                    (register, write.value)
                    for register, write in memory.items()
                    if register.startswith(op.prefix)
                )
            )
            return ("snap", view)
        if isinstance(op, ops.Nop):
            return ("nop", None)
        if isinstance(op, ops.Decide):
            return ("decide", op.value)
        raise ProtocolError(
            f"BG simulation supports register protocols only, got {op!r}"
        )

    def apply(self, record: tuple) -> None:
        """Replay one agreed step result."""
        kind, payload = record
        if kind == "input":
            if not self.participating:
                raise ProtocolError(
                    f"code {self.code_index} stepped without an input"
                )
            self.started = True
            self.writes[input_register(self.code_index)] = VWrite(
                seq=payload, writer=self.code_index, value=self.input_value
            )
            ctx = ProcessContext(
                pid=c_process(self.code_index),
                n_computation=self.n_codes,
                n_synchronization=0,
                input_value=self.input_value,
            )
            self.generator = self.factory(ctx)
            self._resume(prime=True)
        elif kind == "decide":
            self.decision = payload
            self.halted = True
        else:
            op = self.pending
            if kind == "write":
                self.writes[op.register] = VWrite(
                    seq=payload, writer=self.code_index, value=op.value
                )
                result = None
            elif kind == "read":
                result = payload
            elif kind == "snap":
                result = dict(payload)
            elif kind == "nop":
                result = None
            else:
                raise ProtocolError(f"unknown BG record {record!r}")
            self._resume(result=result)
        self.steps += 1

    def _resume(self, *, result: Any = None, prime: bool = False) -> None:
        try:
            if prime:
                self.pending = next(self.generator)
            else:
                self.pending = self.generator.send(result)
        except StopIteration:
            self.halted = True
            self.pending = None

    @property
    def runnable(self) -> bool:
        return self.participating and not self.halted


@dataclass
class BGSpec:
    """Configuration of one BG simulation.

    Args:
        name: unique register-family prefix.
        code_factories: the ``n`` simulated code automata.
        simulators: number of simulator slots.
        static_inputs: fixed code inputs; or ``None`` to read them
            dynamically from ``input_prefix`` registers (the Theorem 9
            composition injects them there).
        input_prefix: register family holding code inputs when dynamic.
        agreement: ``"cas"`` (never blocks; the Extended-BG substitution)
            or ``"safe"`` (classic blocking safe agreement).
    """

    name: str
    code_factories: Sequence[Callable]
    simulators: int
    static_inputs: Sequence[Any] | None = None
    input_prefix: str = "taskinp/"
    agreement: str = "cas"

    @property
    def n_codes(self) -> int:
        return len(self.code_factories)

    def decision_register(self, code: int) -> str:
        return f"{self.name}/dec/{code}"

    def make_agreement(self, code: int, step: int):
        cls = CasAgreement if self.agreement == "cas" else SafeAgreement
        return cls(f"{self.name}/sa/{code}/{step}", self.simulators)


def bg_simulator_factory(spec: BGSpec, simulator_index: int):
    """Automaton factory for BG simulator ``simulator_index``.

    The simulator loops forever: refresh inputs, catch up on steps other
    simulators agreed, then advance the smallest-id participating
    undecided unblocked code by one step (publish knowledge, snapshot,
    propose, resolve), publishing any decisions it learns.  The
    smallest-id-first rule is what the Theorem 9 construction uses to
    keep the simulated run (at most) k-concurrent.
    """

    def factory(ctx: ProcessContext):
        runners = [
            _CodeRunner(c, f, spec.n_codes)
            for c, f in enumerate(spec.code_factories)
        ]
        if spec.static_inputs is not None:
            for runner, value in zip(runners, spec.static_inputs):
                runner.set_input(value)
        published: set[int] = set()
        while True:
            # Refresh dynamic inputs.
            if spec.static_inputs is None:
                snapshot = yield ops.Snapshot(spec.input_prefix)
                for register, value in snapshot.items():
                    code = int(register[len(spec.input_prefix):])
                    if 0 <= code < spec.n_codes:
                        runners[code].set_input(value)
            # Catch up: apply every already-agreed step of every code.
            for runner in runners:
                while runner.runnable:
                    agreement = spec.make_agreement(
                        runner.code_index, runner.steps
                    )
                    outcome = yield from agreement.resolve()
                    if outcome is UNRESOLVED:
                        break
                    runner.apply(outcome)
            # Publish decisions we learned.
            for runner in runners:
                if runner.decision is not None and (
                    runner.code_index not in published
                ):
                    yield ops.Write(
                        spec.decision_register(runner.code_index),
                        runner.decision,
                    )
                    published.add(runner.code_index)
            # Advance the smallest participating undecided unblocked code.
            advanced = False
            for runner in runners:
                if not runner.runnable:
                    continue
                agreement = spec.make_agreement(
                    runner.code_index, runner.steps
                )
                status = yield from agreement_status(agreement)
                if status is BUSY:
                    continue  # blocked by a stalled simulator; skip it
                if status is RESOLVED:
                    outcome = yield from agreement.resolve()
                    if outcome is not UNRESOLVED:
                        runner.apply(outcome)
                        advanced = True
                        break
                    continue
                # FREE: compute and propose our view of the step result.
                yield ops.Write(
                    f"{spec.name}/sim/{simulator_index}",
                    {r.code_index: r.knowledge() for r in runners},
                )
                cells = yield ops.Snapshot(f"{spec.name}/sim/")
                memory = _merge_memory(cells)
                proposal = runner.proposal(memory)
                yield from agreement.propose(simulator_index, proposal)
                outcome = yield from agreement.resolve()
                if outcome is not UNRESOLVED:
                    runner.apply(outcome)
                advanced = True
                break
            if not advanced:
                yield ops.Nop()

    return factory


def bg_factories(spec: BGSpec) -> list:
    """One automaton factory per simulator slot."""
    return [bg_simulator_factory(spec, s) for s in range(spec.simulators)]
