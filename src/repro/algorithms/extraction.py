"""Figure 1 / Theorem 8: extracting anti-Omega-k from any failure
detector ``D`` that solves a task ``T`` not solvable (k+1)-concurrently.

The reduction has three moving parts, all implemented here:

1. **A_sim** (:class:`AsimRun`) — the restricted algorithm in which the
   C-processes run ``A``'s C-part natively and BG-simulate ``A``'s
   S-part against a DAG of recorded ``D`` samples.  We render the BG
   layer at the fidelity the theorem uses it for: every C-simulator
   turn either *begins* a step of an S-code (claiming it; a claimed code
   is blocked for everyone else) or *commits* its claimed step — so a
   simulator abandoned mid-step blocks exactly one S-code, and a fair
   simulator never blocks anything for long.  A simulated S-step that
   queries the detector consumes the next causally-admissible DAG
   vertex and is stuck if none remains.

2. **The corridor DFS** (:class:`ExtractionEngine`) — Figure 1's
   ``explore``: for each input vector and arrival permutation, runs of
   A_sim are explored depth-first through participation "corridors"
   ``P' ⊆ P``, keeping at most ``k + 1`` concurrently undecided
   C-processes (decided processes are replaced by fresh arrivals).  The
   emulated anti-Omega-k output after each step is the set of ``n - k``
   S-codes that advanced *latest* in the current run — a stalled
   corridor starves the S-codes blocked by the abandoned simulators,
   and exactly those drop out of the output forever.

3. **The online wrapper** (:func:`extraction_s_factory`) — the actual
   reduction algorithm's S-process: sample ``D`` and exchange samples
   through shared memory for a while, then run the (bounded) engine on
   the pooled DAG and publish the emulated output.

Finite rendering of the "eventually" clause: the engine bounds DFS
depth and call count; its report identifies the deepest non-deciding
branch and the processes that branch permanently excludes — when the
premises of Theorem 8 hold, that branch exists and the exclusion set
contains a correct process (the tests check precisely this against
``AntiOmegaK.check_history``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..core.process import ProcessContext, c_process, s_process
from ..core.task import Vector
from ..detectors.dag import DagVertex, SampleDAG
from ..runtime import ops
from ..runtime.simulated import SimulatedWorld


class AsimRun:
    """One deterministic run of A_sim for a fixed input vector.

    Steps are driven externally: :meth:`step_c` performs one step of
    C-process ``i``'s own A-automaton plus one BG turn of the S-part
    simulation on ``i``'s behalf.
    """

    def __init__(
        self,
        *,
        inputs: Vector,
        c_factories: Sequence[Callable],
        s_factories: Sequence[Callable],
        dag: SampleDAG,
    ) -> None:
        self.n_s = len(s_factories)
        self.world = SimulatedWorld(
            inputs=inputs,
            c_factories=list(c_factories),
            s_factories=list(s_factories),
            fd_source=dag.fd_source(),
        )
        self.holding: dict[int, int] = {}  # simulator -> claimed S-code
        self.blocked: set[int] = set()
        self.last_advanced: dict[int, int] = {}
        self._s_cursor = 0
        self._clock = 0

    def step_c(self, i: int) -> None:
        self.world.step(c_process(i))
        self._bg_turn(i)
        self._clock += 1

    def _bg_turn(self, simulator: int) -> None:
        claimed = self.holding.pop(simulator, None)
        if claimed is not None:
            # Commit the claimed S-step.
            self.blocked.discard(claimed)
            if self.world.step(s_process(claimed)):
                self.last_advanced[claimed] = self._clock
            return
        # Claim the next round-robin S-code that is free and can move.
        for offset in range(self.n_s):
            code = (self._s_cursor + offset) % self.n_s
            if code in self.blocked:
                continue
            if not self.world.can_step(s_process(code)):
                continue
            self.holding[simulator] = code
            self.blocked.add(code)
            self._s_cursor = (code + 1) % self.n_s
            return

    def anti_omega_output(self, k: int) -> frozenset[int]:
        """The ``n - k`` S-codes that advanced latest (Figure 1 line 6)."""
        order = sorted(
            range(self.n_s),
            key=lambda code: (self.last_advanced.get(code, -1), code),
        )
        return frozenset(order[k:])

    def undecided_participants(self) -> frozenset[int]:
        started = {
            i
            for i in range(self.world.n_c)
            if self.world.step_counts.get(c_process(i), 0) > 0
        }
        return frozenset(started - set(self.world.decisions))

    def decided(self) -> frozenset[int]:
        return self.world.decided


@dataclass
class ExtractionConfig:
    """Budgets for the bounded corridor DFS.

    ``max_depth`` is the finitized stand-in for "never deciding": a
    branch whose schedule reaches it while some live participant is
    still undecided is classified as non-deciding.  Deciding branches
    end (much) earlier on their own.
    """

    max_depth: int = 400
    max_calls: int = 3_000
    max_permutations: int = 1
    max_inputs: int = 1
    max_recorded_branches: int = 10


@dataclass
class BranchRecord:
    """One explored non-deciding branch."""

    depth: int = 0
    schedule: tuple[int, ...] = ()
    outputs: list[frozenset[int]] = field(default_factory=list)

    def stable_exclusions(self, n_s: int, tail_fraction: float = 0.5):
        """S-codes absent from every emulated output in the branch's
        tail — the processes the emulated anti-Omega-k "eventually never
        outputs" along this branch."""
        if not self.outputs:
            return frozenset()
        start = int(len(self.outputs) * (1 - tail_fraction))
        tail = self.outputs[start:]
        excluded = set(range(n_s))
        for output in tail:
            excluded -= set(output)
        return frozenset(excluded)


class ExtractionEngine:
    """Figure 1's explore loop over a fixed DAG.

    Args:
        n: number of C-processes (= S-processes).
        k: extraction parameter (emulating anti-Omega-k).
        c_factories / s_factories: the algorithm ``A`` solving ``T``.
        dag: recorded detector samples.
        input_vectors: the task input vectors to iterate (Figure 1
            line 1); typically ``task.maximal_input_vectors()``.
        config: exploration budgets.
    """

    def __init__(
        self,
        *,
        n: int,
        k: int,
        c_factories: Sequence[Callable],
        s_factories: Sequence[Callable],
        dag: SampleDAG,
        input_vectors: Iterable[Vector],
        config: ExtractionConfig | None = None,
    ) -> None:
        self.n = n
        self.k = k
        self.c_factories = list(c_factories)
        self.s_factories = list(s_factories)
        self.dag = dag
        self.input_vectors = list(input_vectors)
        self.config = config or ExtractionConfig()
        self.emitted: list[frozenset[int]] = []
        self.nondeciding: list[BranchRecord] = []
        self._calls = 0

    @property
    def first_nondeciding(self) -> BranchRecord | None:
        """The first non-deciding branch in DFS order — the branch the
        paper's (unbounded) exploration would be trapped in, whose tail
        exclusions are the emulated detector's converged behaviour."""
        return self.nondeciding[0] if self.nondeciding else None

    # -- deterministic replay -------------------------------------------
    #
    # DFS mostly *descends* (schedule grows by one process at a time), so
    # we keep the current run alive and extend it incrementally; only a
    # backtrack forces a rebuild from scratch.  Determinism of AsimRun
    # makes the two paths indistinguishable.

    def _replay(self, inputs: Vector, schedule: tuple[int, ...]) -> AsimRun:
        cached = getattr(self, "_cache", None)
        if (
            cached is not None
            and cached[0] == inputs
            and len(schedule) == len(cached[1]) + 1
            and schedule[: len(cached[1])] == cached[1]
        ):
            run = cached[2]
            run.step_c(schedule[-1])
            self._cache = (inputs, schedule, run)
            return run
        run = AsimRun(
            inputs=inputs,
            c_factories=self.c_factories,
            s_factories=self.s_factories,
            dag=self.dag,
        )
        for i in schedule:
            run.step_c(i)
        self._cache = (inputs, schedule, run)
        return run

    # -- Figure 1 -----------------------------------------------------------

    def run(self) -> BranchRecord | None:
        """Explore; returns the first non-deciding branch found (or
        ``None`` when the budgets never exposed one)."""
        inputs_iter = itertools.islice(
            self.input_vectors, self.config.max_inputs
        )
        for inputs in inputs_iter:  # line 1
            participants = [
                i for i, v in enumerate(inputs) if v is not None
            ]
            permutations = itertools.islice(
                itertools.permutations(participants),
                self.config.max_permutations,
            )
            for pi in permutations:  # line 2
                p0 = list(pi[: self.k + 1])  # line 3
                self._explore(inputs, (), p0, list(pi), outputs=[])
                if self._calls >= self.config.max_calls:
                    return self.first_nondeciding
        return self.first_nondeciding

    def _explore(
        self,
        inputs: Vector,
        schedule: tuple[int, ...],
        corridor: list[int],
        pi: list[int],
        outputs: list[frozenset[int]],
    ) -> None:
        self._calls += 1
        if self._calls > self.config.max_calls:
            return
        run = self._replay(inputs, schedule)
        output = run.anti_omega_output(self.k)  # line 6
        self.emitted.append(output)
        outputs = outputs + [output]
        decided = run.decided()
        participants = {i for i, v in enumerate(inputs) if v is not None}
        if len(schedule) >= self.config.max_depth:
            if run.undecided_participants():
                self._record_branch(schedule, outputs)
            return
        # Replace each decided corridor member with the next process of
        # pi that has not appeared in the schedule (lines 11-13).
        fresh = [
            p
            for p in pi
            if p not in schedule and p not in decided and p not in corridor
        ]
        replaced: list[int] = []
        for member in corridor:
            if member in decided:
                if fresh:
                    replaced.append(fresh.pop(0))
            else:
                replaced.append(member)
        corridor = sorted(set(replaced) & participants)
        if not corridor:
            # Everyone decided: a deciding (finite) branch.
            return
        # Sub-corridors, narrowest first (lines 14-16).
        for size in range(1, len(corridor) + 1):
            for sub in itertools.combinations(corridor, size):
                for p in sub:
                    if self._calls > self.config.max_calls:
                        return
                    self._explore(
                        inputs, schedule + (p,), list(sub), pi, outputs
                    )

    def _record_branch(
        self, schedule: tuple[int, ...], outputs: list[frozenset[int]]
    ) -> None:
        if len(self.nondeciding) < self.config.max_recorded_branches:
            self.nondeciding.append(
                BranchRecord(
                    depth=len(schedule),
                    schedule=schedule,
                    outputs=list(outputs),
                )
            )


def extraction_s_factory(
    *,
    n: int,
    k: int,
    engine_builder: Callable[[SampleDAG], ExtractionEngine],
    sample_rounds: int = 50,
):
    """The online reduction algorithm's S-process (Theorem 8).

    Phase 1: query ``D`` for ``sample_rounds`` rounds, publishing every
    sample (the shared-DAG maintenance of Figure 1's first component).
    Phase 2: pool all published samples into one causal chain, run the
    bounded exploration on it, and publish the computed exclusion set.
    Phase 3: adopt the exclusions published by the smallest-index
    process that has published (the executable rendering of Figure 1's
    "adopt q_j's simulation", which makes all correct processes converge
    to the same emulated behaviour) and emit the emulated anti-Omega-k
    output — a fixed ``(n - k)``-set avoiding the adopted exclusions —
    to ``xtr/out/<i>`` forever.

    In a system solving a not-(k+1)-concurrently-solvable task, the
    adopted exclusions contain a correct process, so the emitted history
    satisfies the anti-Omega-k specification from phase 3 on.
    """

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        # Phase 1: sample and publish.
        for r in range(sample_rounds):
            value = yield ops.QueryFD()
            yield ops.Write(f"xtr/dag/{me}/{r}", value)
        # Phase 2: pool the samples deterministically (round-major).
        cells = yield ops.Snapshot("xtr/dag/")
        samples: list[tuple[int, int, Any]] = []
        for register, value in cells.items():
            owner, round_index = register[len("xtr/dag/"):].split("/")
            samples.append((int(round_index), int(owner), value))
        samples.sort()
        vertices = []
        counts = {q: 0 for q in range(n)}
        for position, (_, owner, value) in enumerate(samples):
            vertices.append(
                DagVertex(
                    s_index=owner,
                    value=value,
                    query_index=counts[owner],
                    position=position,
                )
            )
            counts[owner] += 1
        engine = engine_builder(SampleDAG(n, vertices))
        branch = engine.run()
        exclusions = (
            branch.stable_exclusions(n) if branch is not None else frozenset()
        )
        yield ops.Write(f"xtr/result/{me}", tuple(sorted(exclusions)))
        # Phase 3: adopt the smallest publisher and emit forever.
        while True:
            results = yield ops.Snapshot("xtr/result/")
            published = {
                int(register[len("xtr/result/"):]): frozenset(value)
                for register, value in results.items()
            }
            adopted = published[min(published)]
            pool = [q for q in range(n) if q not in adopted]
            pool += sorted(adopted)
            output = frozenset(pool[: n - k])
            yield ops.Write(f"xtr/out/{me}", output)

    return factory
