"""Figure 4: k-concurrent (j, j+k-1)-renaming (Theorem 15).

The algorithm mimics the classic wait-free (j, 2j-1)-renaming of
Attiya et al. [3, 4]: every process repeatedly suggests a name — the
r-th integer not suggested by anybody else, where ``r`` is its rank
among the *not yet decided* participants — and keeps it if nobody else
is suggesting the same name.

Bounds (Theorem 15's proof): at most ``j`` participants means at most
``j - 1`` foreign suggestions; in a k-concurrent run at most ``k``
participants are undecided at once, so the rank is at most ``k``; hence
no suggestion exceeds ``(j - 1) + k``.  With ``k = j`` every run
qualifies (at most ``j`` participants can never exceed j-concurrency),
which recovers the wait-free (j, 2j-1)-renaming baseline.

This is a restricted algorithm (S-processes take null steps); plugged
into the Theorem 9 solver it yields Theorem 16: (j, j+k-1)-renaming is
solvable with anti-Omega-k.
"""

from __future__ import annotations

from ..core.process import ProcessContext
from ..runtime import ops

REGISTER_PREFIX = "f4/R/"


def _first_integers_not_in(taken: set[int], rank: int) -> int:
    """The ``rank``-th positive integer outside ``taken`` (1-based)."""
    candidate = 1
    found = 0
    while True:
        if candidate not in taken:
            found += 1
            if found == rank:
                return candidate
        candidate += 1


def figure4_factory(ctx: ProcessContext):
    """One C-process of the Figure 4 renaming algorithm."""
    me = ctx.pid.index
    suggestion = 1
    while True:
        # Register the new suggestion (line 50).
        yield ops.Write(f"{REGISTER_PREFIX}{me}", (me, suggestion, True))
        board = yield ops.Snapshot(REGISTER_PREFIX)
        entries = list(board.values())
        clash = any(
            owner != me and other == suggestion
            for owner, other, _trying in entries
        )
        if clash:
            trying_ids = sorted(
                owner for owner, _s, trying in entries if trying
            )
            rank = trying_ids.index(me) + 1  # (line 53)
            taken = {
                other for owner, other, _trying in entries if owner != me
            }
            suggestion = _first_integers_not_in(taken, rank)  # (line 54)
        else:
            yield ops.Write(
                f"{REGISTER_PREFIX}{me}", (me, suggestion, False)
            )  # (line 56)
            yield ops.Decide(suggestion)
            return


def figure4_factories(n: int) -> list:
    return [figure4_factory] * n
