"""A restricted algorithm solving (n, j) weak symmetry breaking in
(j-1)-concurrent runs.

WSB's symmetry-breaking constraint binds on runs with exactly ``j``
participants; this algorithm places the task in class ``j - 1`` (upper
bound; the matching lower bound for ``j = 2`` is machine-checked by the
topology module — WSB(n, 2) is not 2-concurrently solvable, by the same
pigeonhole as Lemma 11).

Algorithm: write your input (the executor's first step), snapshot the
input board, decide ``1`` if you see ``j`` inputs and ``0`` otherwise.

Correctness in (j-1)-concurrent runs with ``j`` participants: the last
process to write its input snapshots afterwards and sees all ``j``
inputs, so someone decides ``1``; and because at most ``j - 1``
processes are concurrently undecided, the ``j``-th participant arrives
only after some earlier process decided — and that early decider's
snapshot missed the late arrival's input, so someone decides ``0``.  In
a fully j-concurrent run all snapshots may see everything and the
algorithm can output all ``1``s — the tests exhibit exactly that
violation, matching the task's class.
"""

from __future__ import annotations

from ..core.process import ProcessContext
from ..core.system import INPUT_REGISTER_PREFIX
from ..runtime import ops


def wsb_concurrent_factory(j: int):
    """Automaton factory for (n, j) WSB."""

    def factory(ctx: ProcessContext):
        board = yield ops.Snapshot(INPUT_REGISTER_PREFIX)
        yield ops.Decide(1 if len(board) >= j else 0)

    return factory


def wsb_concurrent_factories(n: int, j: int | None = None) -> list:
    if j is None:
        j = n - 1
    return [wsb_concurrent_factory(j)] * n
