"""k-set agreement from vector-Omega-k (the Proposition 6 upper bound).

The paper's Figure 2 machinery runs a consensus instance per simulated
step, led by the matching position of vector-Omega-k.  Specialized to
plain k-set agreement, that collapses to the direct algorithm below —
one long-lived consensus instance per vector position:

* S-process ``q_i``: query the detector; for every position ``j`` whose
  current value is ``i`` (I am that position's leader), propose the
  smallest written C-input in instance ``j`` with rising ballots.
* C-process ``p_i``: spin over the ``k`` decision registers; decide the
  first decided value found.

Eventually some position holds the same correct leader everywhere
(vector-Omega-k's guarantee), that leader's instance decides, and every
C-process that keeps taking steps decides — wait-free in the EFD sense.
Safety is unconditional: at most ``k`` instances exist, so at most ``k``
distinct values are decided, and Paxos validity keeps every decision
among the written inputs.

With ``k = 1`` and the Omega detector (whose outputs are single ids,
accepted here as 1-vectors) this is the standard leader-based consensus
of [9] in EFD form.
"""

from __future__ import annotations

from typing import Any

from ..core.process import ProcessContext
from ..core.system import INPUT_REGISTER_PREFIX
from ..runtime import ops
from . import paxos

_INSTANCE_PREFIX = "ksetv/cons/"


def _instance(j: int) -> str:
    return f"{_INSTANCE_PREFIX}{j}"


def _smallest_input(snapshot: dict[str, Any]) -> Any:
    if not snapshot:
        return None
    name = min(snapshot, key=lambda s: int(s[len(INPUT_REGISTER_PREFIX):]))
    return snapshot[name]


def kset_c_factory(k: int):
    """C-process: decide the first of the ``k`` instances to decide."""

    def factory(ctx: ProcessContext):
        while True:
            for j in range(k):
                value = yield from paxos.read_decision(_instance(j))
                if value is not None:
                    yield ops.Decide(value)
                    return

    return factory


def kset_s_factory(k: int):
    """S-process: drive the instances whose leader the detector says I am."""

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        n_slots = ctx.n_synchronization
        rounds = [0] * k
        while True:
            advice = yield ops.QueryFD()
            vector = advice if isinstance(advice, tuple) else (advice,)
            led_any = False
            for j in range(min(k, len(vector))):
                if vector[j] != me:
                    continue
                led_any = True
                snapshot = yield ops.Snapshot(INPUT_REGISTER_PREFIX)
                value = _smallest_input(snapshot)
                if value is None:
                    continue  # nobody arrived yet
                decided = yield from paxos.propose(
                    _instance(j),
                    me,
                    n_slots,
                    paxos.make_ballot(rounds[j], me, n_slots),
                    value,
                )
                if decided is None:
                    rounds[j] += 1
            if not led_any:
                yield ops.Nop()

    return factory


def kset_factories(n: int, k: int):
    """(C-factories, S-factories) for an n-process system."""
    return [kset_c_factory(k)] * n, [kset_s_factory(k)] * n
