"""Proposition 2's emulation: folding the S-part into the C-processes.

The proposition's argument (Section 2.2): if ``n >= m`` and a task is
solvable with the trivial detector, each C-process ``p_i`` can execute
alternately the steps of ``A^C_{p_i}`` and of ``A^S_{q_i}``, emulating a
run in which the S-processes ``q_{m+1} .. q_n`` have crashed — turning
the algorithm into a *restricted* one.

:func:`interleave_factories` builds exactly that merged automaton.  The
only S-only operation, the detector query, is answered locally with
bottom (the trivial detector's constant output), so the merged
automaton is a legal C-process.  One subtlety: the emulated run's
failure pattern crashes the unpaired S-processes at time 0, which is
allowed in ``E_{n-1}``.
"""

from __future__ import annotations

from typing import Callable

from ..core.process import ProcessContext
from ..runtime import ops


def _advance(generator, pending, result):
    try:
        return generator.send(result), False
    except StopIteration:
        return None, True


def interleave_factories(
    c_factory: Callable, s_factory: Callable
) -> Callable:
    """One C-automaton alternating steps of a C-part and an S-part.

    Detector queries of the S-part are served bottom locally (trivial
    detector), costing a null step so the step count stays faithful.
    The merged automaton decides when the C-part decides — after which
    the executor stops scheduling it, which also stops the folded
    S-part, exactly as in the paper (a decided C-process's remaining
    steps are null)."""

    def factory(ctx: ProcessContext):
        c_gen = c_factory(ctx)
        s_gen = s_factory(ctx)
        c_pending, c_done = _advance_prime(c_gen)
        s_pending, s_done = _advance_prime(s_gen)
        while True:
            if not c_done:
                if isinstance(c_pending, ops.Decide):
                    yield c_pending
                    c_done = True
                else:
                    result = yield c_pending
                    c_pending, c_done = _advance(c_gen, c_pending, result)
            if not s_done:
                if isinstance(s_pending, ops.QueryFD):
                    yield ops.Nop()  # the trivial detector outputs bottom
                    s_pending, s_done = _advance(s_gen, s_pending, None)
                else:
                    result = yield s_pending
                    s_pending, s_done = _advance(s_gen, s_pending, result)
            if c_done and s_done:
                return

    return factory


def _advance_prime(generator):
    try:
        return next(generator), False
    except StopIteration:
        return None, True
