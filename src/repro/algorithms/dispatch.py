"""Dispatch: pick the right paper algorithm for a task and run it.

Backs the top-level :func:`repro.solve_task` / :func:`repro.solve_task_restricted`
helpers.  The selection encodes the hierarchy:

* class-1 tasks (or any task attacked with Omega-strength advice) use
  the Proposition 1 universal solver;
* k-set agreement uses the announce-or-adopt class-k algorithm;
* (j, l)-renaming uses Figure 4, whose tolerated concurrency is
  ``l - j + 1`` (clamped to ``[1, j]``);
* (n, j)-WSB uses the class-(j-1) quorum-observation algorithm.

With a detector, the task is solved through the full Theorem 9 double
simulation (Figure 2 over BG), so the run really exercises the paper's
machinery rather than a shortcut.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..core.failures import FailurePattern
from ..core.run import RunResult
from ..core.system import System
from ..core.task import Task, Vector
from ..detectors.anti_omega import AntiOmegaK
from ..detectors.omega import Omega
from ..detectors.vector_omega import VectorOmegaK
from ..errors import SpecificationError
from ..runtime import SeededRandomScheduler, execute, k_concurrent
from ..tasks.renaming import RenamingTask
from ..tasks.set_agreement import SetAgreementTask
from ..tasks.wsb import WeakSymmetryBreakingTask
from .kconcurrent_solver import theorem9_solver
from .kset_concurrent import kset_concurrent_factories
from .one_concurrent import one_concurrent_factories
from .renaming_figure4 import figure4_factories
from .wsb_concurrent import wsb_concurrent_factories


def task_concurrency_class(task: Task) -> int:
    """The concurrency level this library can solve ``task`` at (the
    task's class, for the built-in families)."""
    if isinstance(task, SetAgreementTask):
        return task.k
    if isinstance(task, RenamingTask):
        return max(1, min(task.j, task.l - task.j + 1))
    if isinstance(task, WeakSymmetryBreakingTask):
        return max(1, task.j - 1)
    return 1  # Proposition 1 covers everything at level 1.


def algorithm_for_task(task: Task, k: int) -> Sequence[Callable]:
    """A restricted algorithm correct in k-concurrent runs of ``task``.

    Raises if ``k`` exceeds what the library can honour for this task.
    """
    limit = task_concurrency_class(task)
    if k > limit:
        raise SpecificationError(
            f"{task!r} is only supported up to concurrency {limit}, "
            f"requested {k}"
        )
    if k == 1:
        return one_concurrent_factories(task)
    if isinstance(task, SetAgreementTask):
        return kset_concurrent_factories(task.n, task.k)
    if isinstance(task, RenamingTask):
        return figure4_factories(task.n)
    if isinstance(task, WeakSymmetryBreakingTask):
        return wsb_concurrent_factories(task.n, task.j)
    raise SpecificationError(
        f"no level-{k} algorithm for {task!r} in this library"
    )


def detector_level(detector: Any) -> int:
    """The set-agreement strength ``k`` of a supported detector."""
    if isinstance(detector, Omega):
        return 1
    if isinstance(detector, VectorOmegaK):
        return detector.k
    if isinstance(detector, AntiOmegaK):
        raise SpecificationError(
            "solve_task consumes the vector form: anti-Omega-k and "
            "vector-Omega-k are equivalent [28]; pass "
            f"VectorOmegaK(n={detector.n}, k={detector.k}) instead"
        )
    raise SpecificationError(
        f"unsupported detector for the generic solver: {detector!r}"
    )


def default_inputs(task: Task) -> Vector:
    """A canonical full-participation input vector."""
    if isinstance(task, SetAgreementTask):
        members = sorted(task.member_set)
        return tuple(
            task.domain[members.index(i) % len(task.domain)]
            if i in members
            else None
            for i in range(task.n)
        )
    if isinstance(task, RenamingTask):
        names = list(task.namespace)[: task.j]
        return tuple(
            names[i] if i < task.j else None for i in range(task.n)
        )
    if isinstance(task, WeakSymmetryBreakingTask):
        return tuple(
            i + 1 if i < task.j else None for i in range(task.n)
        )
    return next(iter(task.input_vectors()))


def build_solver_system(
    task: Task,
    *,
    detector: Any,
    inputs: Vector | None = None,
    pattern: FailurePattern | None = None,
    seed: int = 0,
) -> System:
    """Assemble the Theorem 9 double-simulation system for ``task``.

    Shared by :func:`solve_with_detector` and the chaos engine, which
    runs the same systems under injected faults and explicit schedules.
    """
    k = detector_level(detector)
    limit = task_concurrency_class(task)
    level = min(k, limit)  # stronger advice than needed is fine
    inputs = default_inputs(task) if inputs is None else tuple(inputs)
    factories = algorithm_for_task(task, level)
    solver = theorem9_solver(
        n=task.n, k=level, algorithm_factories=list(factories)
    )
    # The simulation layer consumes vector advice of length `level`.
    run_detector = detector
    if isinstance(detector, VectorOmegaK) and detector.k != level:
        run_detector = VectorOmegaK(
            detector.n,
            level,
            stabilization_time=detector.stabilization_time,
        )
    return System(
        inputs=inputs,
        c_factories=list(solver.c_factories),
        s_factories=list(solver.s_factories),
        detector=run_detector,
        pattern=pattern,
        seed=seed,
    )


def solve_with_detector(
    task: Task,
    *,
    detector: Any,
    inputs: Vector | None = None,
    pattern: FailurePattern | None = None,
    scheduler: Any = None,
    seed: int = 0,
    max_steps: int = 400_000,
    trace: bool = False,
    check: bool = True,
) -> RunResult:
    """Solve ``task`` via the Theorem 9 double simulation."""
    system = build_solver_system(
        task, detector=detector, inputs=inputs, pattern=pattern, seed=seed
    )
    result = execute(
        system,
        scheduler or SeededRandomScheduler(seed),
        max_steps=max_steps,
        trace=trace,
    )
    if check:
        result.require_all_decided().require_satisfies(task)
    return result


def solve_restricted(
    task: Task,
    *,
    inputs: Vector | None = None,
    concurrency: int = 1,
    scheduler: Any = None,
    seed: int = 0,
    max_steps: int = 200_000,
    check: bool = True,
) -> RunResult:
    """Solve ``task`` with a restricted algorithm in a
    ``concurrency``-concurrent run (no detector, null S-processes)."""
    inputs = default_inputs(task) if inputs is None else tuple(inputs)
    factories = algorithm_for_task(task, concurrency)
    system = System(inputs=inputs, c_factories=list(factories))
    gated = k_concurrent(
        scheduler or SeededRandomScheduler(seed), concurrency
    )
    result = execute(system, gated, max_steps=max_steps)
    if check:
        result.require_all_decided().require_satisfies(task)
    return result
