"""Theorem 7: k-set agreement among one fixed set of k+1 C-processes is
as strong as k-set agreement among all n.

Two executable artifacts:

* :func:`ax_factories` — the construction named ``A_x`` in the proof:
  the members of ``U = {p_1, .., p_{k+1}}`` run the (U, k)-agreement
  black box and return its decision, while ``p_{k+2} .. p_x`` simply
  return their own inputs; at most ``(x - 1)`` distinct values can be
  returned, i.e. ``A_x`` solves ``(U_x, x-1)``-agreement.

* :func:`theorem7_factories` — the end-to-end statement made
  executable: given a detector-backed (U, k)-agreement capability (the
  leader-consensus S-part of
  :mod:`repro.algorithms.kset_vector`), all ``n`` C-processes obtain
  k-set agreement by colorless adoption — every process proposes on
  behalf of the U-instance (any participant's written input is a legal
  proposal for a colorless task, exactly the move the proof makes when
  each simulator "proposes its input value as an input value for each
  simulated process") and adopts the instance's decisions.  The
  downward induction of the proof collapses here because adoption is
  transitive; the heavy simulation machinery it leans on in general is
  exercised separately by E-T9 (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..core.process import ProcessContext
from ..errors import SpecificationError
from ..runtime import ops
from .kset_vector import kset_c_factory, kset_s_factory


def ax_factories(
    x: int,
    n: int,
    u_factories: Sequence[Callable],
    *,
    member_set: Iterable[int] | None = None,
) -> list:
    """The proof's ``A_x``: U-members run the (U, k) black box,
    ``p_{|U|+1} .. p_x`` return their own inputs, ``p_{x+1} .. p_n``
    never participate (their factories still exist but only matter if
    scheduled, which ``(U_x, x-1)``-agreement inputs forbid).

    Args:
        x: size of the participating prefix ``U_x``.
        n: total number of C-processes.
        u_factories: factories of the black box, one per U-member.
        member_set: U (defaults to the first ``len(u_factories)``
            indices, as in the proof).
    """
    members = (
        list(range(len(u_factories)))
        if member_set is None
        else sorted(member_set)
    )
    if len(members) != len(u_factories):
        raise SpecificationError("one factory per U-member required")
    if x < len(members) or x > n:
        raise SpecificationError(f"need |U| <= x <= n, got x={x}")

    def own_input_factory(ctx: ProcessContext):
        yield ops.Decide(ctx.input_value)

    factories: list[Callable] = []
    by_member = dict(zip(members, u_factories))
    for i in range(n):
        factories.append(by_member.get(i, own_input_factory))
    return factories


def theorem7_factories(n: int, k: int, member_set: Iterable[int]):
    """(C-factories, S-factories): extend a (U, k)-agreement capability
    to (Pi, k)-agreement for all ``n`` C-processes.

    The S-part is the vector-Omega-k-driven leader consensus of the
    (U, k) instance; every C-process — member of U or not — adopts the
    instance's decisions.  The detector only ever needs to be strong
    enough for the (U, k) instance.
    """
    members = frozenset(member_set)
    if len(members) != k + 1:
        raise SpecificationError(
            f"U must have k+1 = {k + 1} members, got {len(members)}"
        )
    if not members <= frozenset(range(n)):
        raise SpecificationError("member_set out of range")
    c_factories = [kset_c_factory(k)] * n
    s_factories = [kset_s_factory(k)] * n
    return c_factories, s_factories
