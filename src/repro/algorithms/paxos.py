"""Leader-based shared-memory consensus (single decree).

Figure 2 of the paper simulates each step of a simulated process through
"an instance of a leader-based consensus algorithm [10]".  We implement
the classic register-based single-decree protocol (the shared-memory
rendering of Paxos [24], a la Disk Paxos with one block per proposer):

* every potential proposer owns a *block* register holding
  ``(mbal, bal, val)``;
* a proposer with ballot ``b`` first announces ``mbal = b`` and reads
  all blocks (phase 1); if nobody moved past ``b`` it adopts the value
  of the highest accepted ballot (or its own proposal), accepts
  ``bal = b`` (phase 2), re-reads, and on success publishes the decision.

Safety (agreement + validity) holds under any interleaving and any
number of competing proposers; termination needs a proposer that
eventually runs alone — which is exactly what the paper's leader oracles
(Omega, positions of vector-Omega-k) provide.

All entry points are subroutine generators (compose with ``yield from``).
Ballots are made unique by ``ballot = round * n_slots + slot + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..memory.collect import collect_array
from ..runtime import ops

#: Value used to mark "no decision yet" in decision registers.  ``None``
#: would be ambiguous because ``None`` is the unwritten-register value —
#: which is exactly what we want here, so decisions simply use ``None``
#: for "undecided" and wrap decided values.
_DECIDED = "decided"


@dataclass(frozen=True)
class Block:
    """One proposer's state in an instance."""

    mbal: int
    bal: int
    val: Any


def _block_register(name: str, slot: int) -> str:
    return f"{name}/blk/{slot}"


def _decision_register(name: str) -> str:
    return f"{name}/dec"


def make_ballot(round_number: int, slot: int, n_slots: int) -> int:
    """A ballot unique to ``slot`` and increasing in ``round_number``."""
    return round_number * n_slots + slot + 1


def read_decision(name: str):
    """Subroutine: the decided value, or ``None`` if undecided."""
    cell = yield ops.Read(_decision_register(name))
    if cell is None:
        return None
    return cell[1]


def propose(name: str, slot: int, n_slots: int, ballot: int, value: Any):
    """Subroutine: one proposal attempt with the given ballot.

    Returns the decided value on success and ``None`` on abort (a higher
    ballot was observed; retry with a larger one).  ``value`` must not be
    ``None``.
    """
    if value is None:
        raise ValueError("cannot propose None")
    # A decision may already exist; adopt it.
    existing = yield from read_decision(name)
    if existing is not None:
        return existing
    # Phase 1: announce the ballot on our own block.
    own: Block | None = yield ops.Read(_block_register(name, slot))
    bal = own.bal if own is not None else 0
    val = own.val if own is not None else None
    yield ops.Write(
        _block_register(name, slot), Block(mbal=ballot, bal=bal, val=val)
    )
    blocks = yield from collect_array(f"{name}/blk/", n_slots)
    if any(
        b is not None and (b.mbal > ballot or b.bal > ballot) for b in blocks
    ):
        return None
    # Choose the value of the highest accepted ballot, else our own.
    accepted = [b for b in blocks if b is not None and b.bal > 0]
    chosen = max(accepted, key=lambda b: b.bal).val if accepted else value
    # Phase 2: accept.
    yield ops.Write(
        _block_register(name, slot),
        Block(mbal=ballot, bal=ballot, val=chosen),
    )
    blocks = yield from collect_array(f"{name}/blk/", n_slots)
    if any(b is not None and b.mbal > ballot for b in blocks):
        return None
    yield ops.Write(_decision_register(name), (_DECIDED, chosen))
    return chosen


def propose_until_decided(
    name: str, slot: int, n_slots: int, value: Any, *, start_round: int = 0
):
    """Subroutine: keep proposing with rising ballots until decided.

    Only terminates if this proposer eventually runs uncontested; callers
    gate it behind a leader oracle.  Returns the decided value.
    """
    round_number = start_round
    while True:
        decided = yield from propose(
            name, slot, n_slots, make_ballot(round_number, slot, n_slots), value
        )
        if decided is not None:
            return decided
        round_number += 1


def await_decision(name: str):
    """Subroutine: spin reading the decision register until decided."""
    while True:
        decided = yield from read_decision(name)
        if decided is not None:
            return decided
