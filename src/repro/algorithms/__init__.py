"""Every algorithm of the paper plus its cited substrates.

Paper map:

* Proposition 1  -> :mod:`.one_concurrent`
* Section 2.2    -> :mod:`.s_helper`
* Theorem 7      -> :mod:`.set_agreement_ext`
* Figure 1/Thm 8 -> :mod:`.extraction`
* Figure 2/Thm 14-> :mod:`.kcode_simulation`
* Theorem 9      -> :mod:`.kconcurrent_solver`
* Figure 3/Thm 12-> :mod:`.renaming_figure3`
* Figure 4/Thm 15-> :mod:`.renaming_figure4`
* substrates     -> :mod:`.paxos`, :mod:`.safe_agreement`,
                    :mod:`.bg_simulation`, :mod:`.kset_vector`,
                    :mod:`.kset_concurrent`, :mod:`.wsb_concurrent`
"""

from . import (
    bg_simulation,
    dispatch,
    extraction,
    kcode_simulation,
    kconcurrent_solver,
    kset_concurrent,
    kset_vector,
    one_concurrent,
    paxos,
    renaming_figure3,
    renaming_figure4,
    s_helper,
    safe_agreement,
    self_synchronization,
    set_agreement_ext,
    splitters,
    wsb_concurrent,
)

__all__ = [
    "bg_simulation",
    "dispatch",
    "extraction",
    "kcode_simulation",
    "kconcurrent_solver",
    "kset_concurrent",
    "kset_vector",
    "one_concurrent",
    "paxos",
    "renaming_figure3",
    "renaming_figure4",
    "s_helper",
    "safe_agreement",
    "self_synchronization",
    "set_agreement_ext",
    "splitters",
    "wsb_concurrent",
]


from ..lint.schema import ModuleSchema, RegisterSchema

#: Lint declarations for every algorithm module: which functions are
#: C-/S-automata or kind-neutral subroutines, which register families
#: the module owns, and which deliberate deviations from the paper's
#: step model are allowlisted.  ``python -m repro lint`` verifies the
#: declared code against the EFD model rules; see
#: ``docs/static_analysis.md`` for the rule catalogue.
LINT_SCHEMAS: dict[str, ModuleSchema] = {
    "bg_simulation": ModuleSchema(
        c_automata=("bg_simulator_factory",),
        subroutines=("agreement_status",),
        non_deciding=("bg_simulator_factory",),
        notes="simulators run forever; decisions surface through the "
        "spec's decision registers, not a Decide step",
    ),
    "dispatch": ModuleSchema(
        notes="task-to-algorithm routing; defines no automata",
    ),
    "extraction": ModuleSchema(
        s_automata=("extraction_s_factory",),
        registers=RegisterSchema(
            prefixes=("xtr/",),
            single_writer=("xtr/",),
            write_once=("xtr/result/",),
        ),
        notes="the Theorem 8 reduction is pure S-part; its C-part is "
        "the null automaton",
    ),
    "kcode_simulation": ModuleSchema(
        c_automata=("figure2_c_factory",),
        s_automata=("figure2_s_factory",),
        registers=RegisterSchema(prefixes=("inp/",)),
        notes="instance register families are spec-relative (dynamic); "
        "only the input board is statically nameable",
    ),
    "kconcurrent_solver": ModuleSchema(
        notes="assembles Figure 2 over BG; defines no automata",
    ),
    "kset_concurrent": ModuleSchema(
        c_automata=("kset_concurrent_factory",),
        registers=RegisterSchema(
            prefixes=("ksetc/ann/",),
            single_writer=("ksetc/ann/",),
            write_once=("ksetc/ann/",),
        ),
    ),
    "kset_vector": ModuleSchema(
        c_automata=("kset_c_factory",),
        s_automata=("kset_s_factory",),
        registers=RegisterSchema(prefixes=("inp/", "ksetv/cons/")),
    ),
    "one_concurrent": ModuleSchema(
        c_automata=("one_concurrent_factory",),
        registers=RegisterSchema(
            prefixes=("p1c/out/", "inp/"),
            single_writer=("p1c/out/",),
            write_once=("p1c/out/",),
        ),
    ),
    "paxos": ModuleSchema(
        subroutines=(
            "read_decision",
            "propose",
            "propose_until_decided",
            "await_decision",
        ),
        notes="instance names are caller-chosen (dynamic); register "
        "checking happens at the call sites' modules",
    ),
    "renaming_figure3": ModuleSchema(
        c_automata=("figure3_factory", "cas_strong_renaming_factory"),
        registers=RegisterSchema(
            prefixes=("f3/R/",),
            exact=("f3/inner/counter",),
            single_writer=("f3/R/",),
        ),
        cas_allowlist=("cas_strong_renaming_factory",),
        notes="the CAS stand-in deliberately exceeds register power — "
        "that is Theorem 12's point (see module docstring)",
    ),
    "renaming_figure4": ModuleSchema(
        c_automata=("figure4_factory",),
        registers=RegisterSchema(
            prefixes=("f4/R/",), single_writer=("f4/R/",)
        ),
    ),
    "s_helper": ModuleSchema(
        c_automata=("helper_c_factory",),
        s_automata=("helper_s_factory",),
        registers=RegisterSchema(
            prefixes=("inp/",),
            exact=("shelper/V",),
            write_once=("shelper/V",),
        ),
    ),
    "safe_agreement": ModuleSchema(
        subroutines=(
            "SafeAgreement.propose",
            "SafeAgreement.resolve",
            "CasAgreement.propose",
            "CasAgreement.resolve",
            "agree",
        ),
        cas_allowlist=("CasAgreement.propose",),
        notes="CasAgreement is the documented Extended-BG substitution "
        "(DESIGN.md) used by the Theorem 9 solver",
    ),
    "self_synchronization": ModuleSchema(
        c_automata=("interleave_factories",),
        non_deciding=("interleave_factories",),
        notes="forwards the folded C-part's Decide dynamically; the "
        "executor enforces decide-once at run time",
    ),
    "set_agreement_ext": ModuleSchema(
        c_automata=("ax_factories.own_input_factory",),
        notes="the (U,k) black box and adoption layer reuse the "
        "kset_vector automata, which are checked there",
    ),
    "splitters": ModuleSchema(
        c_automata=("moir_anderson_factory",),
        subroutines=("splitter",),
        registers=RegisterSchema(prefixes=("ma/",)),
    ),
    "wsb_concurrent": ModuleSchema(
        c_automata=("wsb_concurrent_factory",),
        registers=RegisterSchema(prefixes=("inp/",)),
    ),
}
