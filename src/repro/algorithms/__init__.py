"""Every algorithm of the paper plus its cited substrates.

Paper map:

* Proposition 1  -> :mod:`.one_concurrent`
* Section 2.2    -> :mod:`.s_helper`
* Theorem 7      -> :mod:`.set_agreement_ext`
* Figure 1/Thm 8 -> :mod:`.extraction`
* Figure 2/Thm 14-> :mod:`.kcode_simulation`
* Theorem 9      -> :mod:`.kconcurrent_solver`
* Figure 3/Thm 12-> :mod:`.renaming_figure3`
* Figure 4/Thm 15-> :mod:`.renaming_figure4`
* substrates     -> :mod:`.paxos`, :mod:`.safe_agreement`,
                    :mod:`.bg_simulation`, :mod:`.kset_vector`,
                    :mod:`.kset_concurrent`, :mod:`.wsb_concurrent`
"""

from . import (
    bg_simulation,
    dispatch,
    extraction,
    kcode_simulation,
    kconcurrent_solver,
    kset_concurrent,
    kset_vector,
    one_concurrent,
    paxos,
    renaming_figure3,
    renaming_figure4,
    s_helper,
    safe_agreement,
    self_synchronization,
    set_agreement_ext,
    splitters,
    wsb_concurrent,
)

__all__ = [
    "bg_simulation",
    "dispatch",
    "extraction",
    "kcode_simulation",
    "kconcurrent_solver",
    "kset_concurrent",
    "kset_vector",
    "one_concurrent",
    "paxos",
    "renaming_figure3",
    "renaming_figure4",
    "s_helper",
    "safe_agreement",
    "self_synchronization",
    "set_agreement_ext",
    "splitters",
    "wsb_concurrent",
]
