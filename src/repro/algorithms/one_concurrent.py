"""Proposition 1: every task is 1-concurrently solvable (Appendix A).

The algorithm, for C-process ``p_i``: (1) write the input (done by the
executor's first step), (2) read the inputs already written, obtaining a
vector ``I``, (3) read the outputs already announced, obtaining ``O``;
then pick an output value ``v`` for itself such that ``(I', O[i -> v])``
is in Delta, where ``I'`` is ``I`` completed with its own input; announce
``v`` and decide it.

In a 1-concurrent run, processes effectively execute this one at a time,
and the task's closure condition (3) guarantees a suitable ``v`` always
exists — the easy induction in the paper's Appendix A.  In a *more*
concurrent run nothing is guaranteed (and tests demonstrate actual
violations for consensus), exactly matching the proposition's scope.

This is a *restricted* algorithm: S-processes take null steps.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.process import ProcessContext
from ..core.system import INPUT_REGISTER_PREFIX
from ..core.task import Task, Vector
from ..errors import SpecificationError
from ..runtime import ops

#: Register family where participants announce their chosen outputs.
OUTPUT_PREFIX = "p1c/out/"


def choose_output(
    task: Task, inputs: Vector, outputs: Vector, index: int
) -> Any:
    """A value ``v`` such that ``outputs[index -> v]`` stays in Delta.

    Searches the task's declared output values.  Raises if none fits —
    which cannot happen in a 1-concurrent run of a well-formed task, but
    gives a crisp error on misuse.
    """
    getter = getattr(task, "output_values", None)
    if getter is None:
        raise SpecificationError(
            f"{task!r} exposes no output_values(); Proposition 1 needs a "
            "finite candidate set"
        )
    for candidate in getter():
        attempt = tuple(
            candidate if j == index else v for j, v in enumerate(outputs)
        )
        if task.allows(inputs, attempt):
            return candidate
    raise SpecificationError(
        f"no output extends {outputs} for participant p{index + 1} of "
        f"{task!r} on inputs {inputs} (run not 1-concurrent?)"
    )


def _parse_family(snapshot: dict[str, Any], prefix: str, n: int) -> Vector:
    vector: list[Any] = [None] * n
    for name, value in snapshot.items():
        index = int(name[len(prefix):])
        vector[index] = value
    return tuple(vector)


def one_concurrent_factory(task: Task):
    """Automaton factory for the Proposition 1 solver."""

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        n = ctx.n_computation
        # Outputs first, inputs second: any process whose output we see
        # wrote its input earlier, so the later input snapshot includes
        # it.  (The paper reads inputs first; either order is correct
        # 1-concurrently, this one also degrades gracefully outside the
        # envelope instead of hitting an input-less output.)
        outputs_snap = yield ops.Snapshot(OUTPUT_PREFIX)
        outputs = _parse_family(outputs_snap, OUTPUT_PREFIX, n)
        inputs_snap = yield ops.Snapshot(INPUT_REGISTER_PREFIX)
        inputs = _parse_family(inputs_snap, INPUT_REGISTER_PREFIX, n)
        value = choose_output(task, inputs, outputs, me)
        yield ops.Write(f"{OUTPUT_PREFIX}{me}", value)
        yield ops.Decide(value)

    return factory


def one_concurrent_factories(task: Task) -> Sequence:
    """One factory per C-process (they are identical by symmetry)."""
    return [one_concurrent_factory(task)] * task.n
