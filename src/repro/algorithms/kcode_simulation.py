"""Figure 2: n simulators run k codes using vector-Omega-k (Theorem 14).

The paper's construction decides "the next state of simulated process
``p'_j``" through a leader-based consensus instance per simulated step,
with the leader for position ``j`` being either the j-th smallest
registered simulator (while at most ``k`` simulators are registered) or
the S-process named by position ``j`` of vector-Omega-k.

Our executable rendering agrees on a *step log* instead of on state
vectors: consensus instance ``t`` decides the t-th log entry
``("step", j, inputs)`` — "simulated process ``p'_j`` takes the next
step; these task inputs have been written so far".  Every simulator
replays the agreed log in its own deterministic replica
(:class:`~repro.runtime.simulated.SimulatedWorld`), so agreeing on the
log is equivalent to agreeing on the state evolution, with two bonuses:
proposals are tiny, and S-process leaders can propose without running
replicas (they read the real input registers and name a position).
Each entry carries the proposer's snapshot of the real input registers,
which is how task inputs flow into the simulated world (the replica
writes them to ``input_prefix`` registers before applying the step).

Liveness: eventually some vector position ``j*`` pins the same correct
S-process everywhere; that leader's proposals stop being contested, the
log grows with steps of ``p'_{j*}``, and at least one simulated process
takes infinitely many steps — Theorem 14's guarantee.  The registered
count also bounds participation: a position ``j`` is only ever proposed
when ``j < min(k, ell)`` where ``ell`` is the number of simulators that
ever registered, giving the ``min(k, ell)`` clause of the theorem.

Simulated-process decisions surface in two ways: through
``result_register`` (a simulated-memory register per real C-process;
when it becomes non-bottom the C-simulator departs and decides — the
Theorem 9 composition points it at the BG layer's decision registers)
and through real ``mirror`` registers (for tests and observability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.process import ProcessContext, c_process
from ..core.system import INPUT_REGISTER_PREFIX
from ..runtime import ops
from ..runtime.simulated import SimulatedWorld
from . import paxos

#: Placeholder input for the (input-less) simulated codes; the paper's
#: abstract simulation runs "restricted input-less algorithms" (App. C.1).
CODE_TOKEN = "f2-token"

#: Leader patience window, in own-loop iterations per position of rank.
#: A rank-``j`` leader watches the current log instance for ``j *
#: PATIENCE`` of its own iterations before contending it, giving the
#: rank-0 leader (who needs about one proposal's worth of steps) room to
#: decide uncontested.  Purely a liveness/performance device: consensus
#: safety never depends on who proposes when.
PATIENCE = 8


@dataclass
class F2Spec:
    """Configuration of one Figure 2 simulation.

    Args:
        k: number of simulated codes (and detector vector length).
        code_factories: the ``k`` simulated automata (algorithm ``B``).
        n: number of real C-simulators (= S-processes).
        name: unique register-family prefix.
        input_prefix: simulated-memory register family into which the
            real task inputs are injected (code ``B`` reads them there).
        result_register: maps a real C-process index to the
            simulated-memory register whose value, once set, is that
            process's decision; ``None`` disables deciding (the
            simulators then run forever, which standalone tests bound
            with ``stop_when``).
    """

    k: int
    code_factories: Sequence[Callable]
    n: int
    name: str = "f2"
    input_prefix: str = "taskinp/"
    result_register: Callable[[int], str] | None = None

    def log_instance(self, t: int) -> str:
        return f"{self.name}/log/{t}"

    def active_register(self, i: int) -> str:
        return f"{self.name}/R/{i}"

    def ever_register(self, i: int) -> str:
        return f"{self.name}/Rever/{i}"

    def mirror_register(self, j: int) -> str:
        return f"{self.name}/mirror/{j}"

    @property
    def slots(self) -> int:
        return 2 * self.n  # C-simulators then S-processes

    def make_replica(self) -> SimulatedWorld:
        return SimulatedWorld(
            inputs=(CODE_TOKEN,) * self.k,
            c_factories=list(self.code_factories),
        )


def _entry(j: int, inputs_snapshot: dict[str, Any]) -> tuple:
    return ("step", j, tuple(sorted(inputs_snapshot.items())))


def _apply_entry(spec: F2Spec, replica: SimulatedWorld, entry: tuple) -> None:
    _, j, input_items = entry
    for register, value in input_items:
        index = register[len(INPUT_REGISTER_PREFIX):]
        target = f"{spec.input_prefix}{index}"
        if replica.memory.read(target) is None:
            replica.memory.write(target, value)
    replica.step(c_process(j))


def figure2_c_factory(spec: F2Spec, simulator_index: int):
    """Automaton for real C-simulator ``p_{simulator_index+1}``.

    Registers itself, then loops: depart if its result appeared in the
    replica; apply newly decided log entries; act as position-``j``
    leader while at most ``k`` simulators are registered and it is the
    j-th smallest of them (Figure 2's Task 2, lines 33-34).
    """

    def factory(ctx: ProcessContext):
        me = simulator_index
        yield ops.Write(spec.active_register(me), 1)
        yield ops.Write(spec.ever_register(me), 1)
        replica = spec.make_replica()
        t = 0
        ballot_round = 0
        waited = 0
        backoff = 0
        mirrored: set[int] = set()
        while True:
            # Depart as soon as our own result exists (Figure 2 line 28).
            if spec.result_register is not None:
                value = replica.memory.read(spec.result_register(me))
                if value is not None:
                    yield ops.Write(spec.active_register(me), "departed")
                    yield ops.Decide(value)
                    return
            # Mirror simulated decisions for observers.
            for j in range(spec.k):
                if j not in mirrored and j in replica.decided:
                    yield ops.Write(
                        spec.mirror_register(j), replica.decisions[j]
                    )
                    mirrored.add(j)
            # Catch up on the agreed log.
            entry = yield from paxos.read_decision(spec.log_instance(t))
            if entry is not None:
                _apply_entry(spec, replica, entry)
                t += 1
                ballot_round = 0
                waited = 0
                backoff = 0
                continue
            # Lead while few simulators are registered.
            active_cells = yield ops.Snapshot(f"{spec.name}/R/")
            active = sorted(
                int(name[len(f"{spec.name}/R/"):])
                for name, value in active_cells.items()
                if value == 1
            )
            if len(active) <= spec.k and me in active:
                j = active.index(me)
                # Defer to lower-ranked leaders first, and after an
                # aborted proposal hold back for a stretch that grows
                # with the round at a per-slot slope — two persistent
                # rivals' retry cadences diverge until one proposal
                # lands uncontested (the E-CHAOS lock-step livelock).
                if waited < j * PATIENCE:
                    waited += 1
                    yield ops.Nop()
                    continue
                if backoff > 0:
                    backoff -= 1
                    yield ops.Nop()
                    continue
                inputs_snapshot = yield ops.Snapshot(INPUT_REGISTER_PREFIX)
                decided = yield from paxos.propose(
                    spec.log_instance(t),
                    me,
                    spec.slots,
                    paxos.make_ballot(ballot_round, me, spec.slots),
                    _entry(j, inputs_snapshot),
                )
                if decided is None:
                    ballot_round += 1
                    backoff = (me + 1) * ballot_round
                continue
            yield ops.Nop()

    return factory


def figure2_s_factory(spec: F2Spec, s_index: int):
    """Automaton for S-process ``q_{s_index+1}``.

    Queries the detector; for each vector position naming it — and lying
    below ``min(k, ell)`` where ``ell`` simulators ever registered —
    proposes a step of that position's code at the first undecided log
    instance.
    """

    def factory(ctx: ProcessContext):
        me = s_index
        slot = spec.n + me
        t = 0
        ballot_round = 0
        waited = 0
        backoff = 0
        while True:
            advice = yield ops.QueryFD()
            vector = advice if isinstance(advice, tuple) else (advice,)
            entry = yield from paxos.read_decision(spec.log_instance(t))
            if entry is not None:
                t += 1
                ballot_round = 0
                waited = 0
                backoff = 0
                continue
            ever_cells = yield ops.Snapshot(f"{spec.name}/Rever/")
            ell = len(ever_cells)
            limit = min(spec.k, ell)
            positions = [
                j
                for j in range(min(spec.k, len(vector)))
                if vector[j] == me and j < limit
            ]
            if not positions:
                yield ops.Nop()
                continue
            j = positions[0]
            # Same contention damping as the C-simulators: patience
            # proportional to the led position (two stable vector
            # positions can pin *different* correct leaders, who would
            # otherwise duel forever at one log instance — the E-CHAOS
            # vecOmega-2 livelock under lock-step round-robin), plus a
            # slot-sloped growing backoff after every aborted proposal.
            if waited < j * PATIENCE:
                waited += 1
                yield ops.Nop()
                continue
            if backoff > 0:
                backoff -= 1
                yield ops.Nop()
                continue
            inputs_snapshot = yield ops.Snapshot(INPUT_REGISTER_PREFIX)
            decided = yield from paxos.propose(
                spec.log_instance(t),
                slot,
                spec.slots,
                paxos.make_ballot(ballot_round, slot, spec.slots),
                _entry(j, inputs_snapshot),
            )
            if decided is None:
                ballot_round += 1
                backoff = (slot + 1) * ballot_round

    return factory


def figure2_factories(spec: F2Spec):
    """(C-factories, S-factories) for a complete Figure 2 system."""
    c_factories = [figure2_c_factory(spec, i) for i in range(spec.n)]
    s_factories = [figure2_s_factory(spec, i) for i in range(spec.n)]
    return c_factories, s_factories


def replay_log(spec: F2Spec, memory) -> SimulatedWorld:
    """Rebuild the replica state from the decided log in ``memory``
    (observability helper for tests and experiment reports)."""
    replica = spec.make_replica()
    t = 0
    while True:
        cell = memory.read(f"{spec.log_instance(t)}/dec")
        if cell is None:
            return replica
        _apply_entry(spec, replica, cell[1])
        t += 1
