"""(U, k)-agreement, k-set agreement, and consensus (paper Section 2.1).

In ``(U, k)``-agreement only the C-processes in ``U`` participate; input
values come from a finite domain (the paper uses ``{0, .., k}``); the
non-bottom output values must be a subset of the proposed values of size
at most ``k``.  ``(Pi, k)``-agreement is the conventional k-set
agreement task [11]; ``(Pi, 1)``-agreement is consensus [14].
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from ..core.task import Task, Vector, participants
from ..errors import SpecificationError


class SetAgreementTask(Task):
    """(U, k)-agreement.

    Args:
        n: number of C-processes.
        k: at most ``k`` distinct values may be decided.
        member_set: the set ``U`` of allowed participants (indices);
            defaults to all C-processes.
        domain: finite input domain; defaults to ``{0, .., k}`` as in the
            paper.
    """

    colorless = True

    def __init__(
        self,
        n: int,
        k: int,
        *,
        member_set: Iterable[int] | None = None,
        domain: Sequence[object] | None = None,
    ) -> None:
        if n < 1:
            raise SpecificationError(f"need n >= 1, got {n}")
        if k < 1:
            raise SpecificationError(f"need k >= 1, got {k}")
        self.n = n
        self.k = k
        self.member_set = (
            frozenset(range(n)) if member_set is None else frozenset(member_set)
        )
        if not self.member_set <= frozenset(range(n)):
            raise SpecificationError("member_set contains out-of-range indices")
        if not self.member_set:
            raise SpecificationError("member_set must be non-empty")
        self.domain = tuple(range(k + 1)) if domain is None else tuple(domain)
        if not self.domain:
            raise SpecificationError("domain must be non-empty")
        if self.member_set == frozenset(range(n)):
            self.name = "consensus" if k == 1 else f"{k}-set-agreement"
        else:
            u = "{" + ",".join(f"p{i + 1}" for i in sorted(self.member_set)) + "}"
            self.name = f"({u},{k})-agreement"

    def is_input(self, vector: Vector) -> bool:
        if len(vector) != self.n:
            return False
        present = participants(vector)
        if not present or not present <= self.member_set:
            return False
        return all(vector[i] in self.domain for i in present)

    def allows(self, inputs: Vector, outputs: Vector) -> bool:
        if not self.is_input(inputs):
            return False
        if len(outputs) != self.n:
            return False
        present = participants(inputs)
        proposed = {inputs[i] for i in present}
        decided_values = set()
        for i, v in enumerate(outputs):
            if v is None:
                continue
            if i not in present:
                return False  # a non-participant decided
            if v not in proposed:
                return False  # validity: decisions come from proposals
            decided_values.add(v)
        return len(decided_values) <= self.k

    def input_vectors(self) -> Iterator[Vector]:
        members = sorted(self.member_set)
        for size in range(1, len(members) + 1):
            for subset in itertools.combinations(members, size):
                for values in itertools.product(self.domain, repeat=size):
                    vec: list[object | None] = [None] * self.n
                    for i, v in zip(subset, values):
                        vec[i] = v
                    yield tuple(vec)

    def output_values(self) -> tuple[object, ...]:
        """Possible non-bottom output values (for task enumeration)."""
        return self.domain


class ConsensusTask(SetAgreementTask):
    """(Pi, 1)-agreement: all decided values are equal and proposed."""

    def __init__(
        self,
        n: int,
        *,
        member_set: Iterable[int] | None = None,
        domain: Sequence[object] | None = None,
    ) -> None:
        super().__init__(
            n, 1, member_set=member_set, domain=domain or (0, 1)
        )
