"""Task construction utilities.

The topology checker and the classifier work on fully tabulated
:class:`~repro.core.task.EnumeratedTask` instances; :func:`enumerate_task`
converts any predicate-style task with finitely many inputs and a finite
output-value set into that form.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..core.task import EnumeratedTask, Task, Vector, participants
from ..errors import SpecificationError


def enumerate_task(
    task: Task,
    *,
    output_values: Sequence[object] | None = None,
    max_inputs: int = 100_000,
) -> EnumeratedTask:
    """Tabulate a predicate-style task into an :class:`EnumeratedTask`.

    For every input vector, all complete output assignments over the
    participants (drawn from ``output_values``, defaulting to the task's
    ``output_values()`` method) are filtered through ``task.allows``.

    Raises:
        SpecificationError: if the task exposes no output-value set or
            the input enumeration exceeds ``max_inputs``.
    """
    if output_values is None:
        getter = getattr(task, "output_values", None)
        if getter is None:
            raise SpecificationError(
                f"{task!r} has no output_values(); pass output_values="
            )
        output_values = tuple(getter())
    delta: dict[Vector, list[Vector]] = {}
    count = 0
    for inputs in task.input_vectors():
        count += 1
        if count > max_inputs:
            raise SpecificationError(
                f"input enumeration of {task!r} exceeds {max_inputs}"
            )
        present = sorted(participants(inputs))
        complete: list[Vector] = []
        for assignment in itertools.product(output_values, repeat=len(present)):
            outputs: list[object | None] = [None] * task.n
            for i, v in zip(present, assignment):
                outputs[i] = v
            vec = tuple(outputs)
            if task.allows(inputs, vec):
                complete.append(vec)
        if not complete:
            raise SpecificationError(
                f"{task!r} has no complete output for input {inputs}"
            )
        delta[inputs] = complete
    return EnumeratedTask(
        task.n, delta, name=task.name, colorless=task.colorless
    )


def restrict_to_participants(
    task: Task, allowed: Iterable[int]
) -> "ParticipantRestrictedTask":
    """The same task with participation limited to ``allowed`` indices."""
    return ParticipantRestrictedTask(task, allowed)


class ParticipantRestrictedTask(Task):
    """Wraps a task, additionally requiring participants within a set."""

    def __init__(self, inner: Task, allowed: Iterable[int]) -> None:
        self.inner = inner
        self.allowed = frozenset(allowed)
        if not self.allowed <= frozenset(range(inner.n)):
            raise SpecificationError("allowed set out of range")
        self.n = inner.n
        self.colorless = inner.colorless
        names = ",".join(f"p{i + 1}" for i in sorted(self.allowed))
        self.name = f"{inner.name}|{{{names}}}"

    def is_input(self, vector: Vector) -> bool:
        return (
            participants(vector) <= self.allowed
            and self.inner.is_input(vector)
        )

    def allows(self, inputs: Vector, outputs: Vector) -> bool:
        return self.is_input(inputs) and self.inner.allows(inputs, outputs)

    def input_vectors(self):
        for vec in self.inner.input_vectors():
            if participants(vec) <= self.allowed:
                yield vec

    def output_values(self):
        getter = getattr(self.inner, "output_values", None)
        if getter is None:
            raise SpecificationError(f"{self.inner!r} has no output_values()")
        return getter()
