"""The identity task: output your own input.

The trivial end of the hierarchy — wait-free solvable, hence class
``n`` (no concurrency level constrains it).  It anchors the top of the
Theorem 10 table the way consensus anchors the bottom, and by
Proposition 2 it needs no advice at all (its "weakest detector" row is
the trivial detector).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..core.task import Task, Vector, participants
from ..errors import SpecificationError


class IdentityTask(Task):
    """Every participant must decide exactly its own input."""

    colorless = False

    def __init__(self, n: int, *, domain: Sequence[object] = (0, 1)) -> None:
        if n < 1:
            raise SpecificationError(f"need n >= 1, got {n}")
        self.n = n
        self.domain = tuple(domain)
        if not self.domain:
            raise SpecificationError("domain must be non-empty")
        self.name = f"identity-{n}"

    def is_input(self, vector: Vector) -> bool:
        if len(vector) != self.n:
            return False
        present = participants(vector)
        return bool(present) and all(
            vector[i] in self.domain for i in present
        )

    def allows(self, inputs: Vector, outputs: Vector) -> bool:
        if not self.is_input(inputs) or len(outputs) != self.n:
            return False
        return all(
            v is None or v == inputs[i] for i, v in enumerate(outputs)
        )

    def input_vectors(self) -> Iterator[Vector]:
        indices = range(self.n)
        for size in range(1, self.n + 1):
            for subset in itertools.combinations(indices, size):
                for values in itertools.product(self.domain, repeat=size):
                    vec: list[object | None] = [None] * self.n
                    for i, v in zip(subset, values):
                        vec[i] = v
                    yield tuple(vec)

    def output_values(self) -> tuple[object, ...]:
        return self.domain


def identity_factory(ctx):
    """The wait-free solver: decide your own input."""
    from ..runtime import ops

    yield ops.Decide(ctx.input_value)


def identity_factories(n: int) -> list:
    return [identity_factory] * n
