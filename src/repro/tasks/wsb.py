"""Weak symmetry breaking (mentioned in the paper's introduction as a
"colored" task that evaded characterization before EFD).

WSB with parameters ``(n, j)``: at most ``j`` of the ``n > j``
C-processes participate, each outputs a bit, and in runs where exactly
``j`` processes participate and all decide, not all outputs may be
equal.  Requiring ``j < n`` is what makes the task non-trivial: with a
fixed full participant set (``j = n``) the task is solved by the
id-based rule "p1 says 0, everybody else says 1", but when any
``j``-subset may show up, no such static assignment works (two
processes with the same assigned bit can be the participants) — the
same pigeonhole that drives Lemma 11.

WSB is the prototypical colored task: unlike set agreement, a process
cannot simply adopt another's output.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..core.task import Task, Vector, participants
from ..errors import SpecificationError


class WeakSymmetryBreakingTask(Task):
    """(n, j) weak symmetry breaking.

    Inputs are the participants' (distinct) identities — conventionally
    their own index plus one; the symmetry-breaking constraint binds
    only on runs with exactly ``j`` participants, all decided.
    """

    colorless = False

    def __init__(self, n: int, j: int | None = None) -> None:
        if n < 2:
            raise SpecificationError(f"WSB needs n >= 2, got {n}")
        if j is None:
            j = n - 1
        if not 2 <= j <= n:
            raise SpecificationError(f"need 2 <= j <= n, got j={j}")
        self.n = n
        self.j = j
        self.name = f"wsb-{j}of{n}"

    def is_input(self, vector: Vector) -> bool:
        if len(vector) != self.n:
            return False
        present = participants(vector)
        if not present or len(present) > self.j:
            return False
        return all(vector[i] == i + 1 for i in present)

    def allows(self, inputs: Vector, outputs: Vector) -> bool:
        if not self.is_input(inputs):
            return False
        if len(outputs) != self.n:
            return False
        present = participants(inputs)
        for i, v in enumerate(outputs):
            if v is None:
                continue
            if i not in present or v not in (0, 1):
                return False
        decided = [v for v in outputs if v is not None]
        if len(present) == self.j and len(decided) == self.j:
            return len(set(decided)) == 2
        # Partial outputs are fine: an undecided process can always pick
        # the missing bit, so a completion exists.
        return True

    def input_vectors(self) -> Iterator[Vector]:
        indices = range(self.n)
        for size in range(1, self.j + 1):
            for subset in itertools.combinations(indices, size):
                vec: list[int | None] = [None] * self.n
                for i in subset:
                    vec[i] = i + 1
                yield tuple(vec)

    def output_values(self) -> tuple[int, ...]:
        return (0, 1)
