"""Task definitions: set agreement, consensus, renaming, WSB, builders."""

from .builders import (
    ParticipantRestrictedTask,
    enumerate_task,
    restrict_to_participants,
)
from .identity import IdentityTask, identity_factories, identity_factory
from .renaming import RenamingTask, StrongRenamingTask
from .set_agreement import ConsensusTask, SetAgreementTask
from .wsb import WeakSymmetryBreakingTask

__all__ = [
    "ParticipantRestrictedTask",
    "enumerate_task",
    "restrict_to_participants",
    "IdentityTask",
    "identity_factories",
    "identity_factory",
    "RenamingTask",
    "StrongRenamingTask",
    "ConsensusTask",
    "SetAgreementTask",
    "WeakSymmetryBreakingTask",
]
