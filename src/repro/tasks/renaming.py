"""(j, l)-renaming and strong renaming (paper Section 5, [3]).

At most ``j`` of the ``n > j`` C-processes participate; each arrives
with a distinct *original name* from a large namespace and must output a
name in ``{1, .., l}`` distinct from every other output.  Strong
j-renaming is the tight case ``l = j``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..core.task import Task, Vector, participants
from ..errors import SpecificationError


class RenamingTask(Task):
    """(j, l)-renaming.

    Args:
        n: number of C-processes (must exceed ``j``).
        j: maximum number of participants in any run.
        l: size of the target namespace ``{1, .., l}``.
        namespace: finite pool of original names used when enumerating
            input vectors; defaults to ``{1, .., n}``.
    """

    colorless = False

    def __init__(
        self,
        n: int,
        j: int,
        l: int,
        *,
        namespace: Sequence[int] | None = None,
    ) -> None:
        if not 1 <= j < n:
            raise SpecificationError(f"need 1 <= j < n, got j={j}, n={n}")
        if l < j:
            raise SpecificationError(
                f"target namespace {l} cannot fit {j} distinct names"
            )
        self.n = n
        self.j = j
        self.l = l
        self.namespace = (
            tuple(range(1, n + 1)) if namespace is None else tuple(namespace)
        )
        if len(set(self.namespace)) < j:
            raise SpecificationError("namespace too small for j participants")
        self.name = (
            f"strong-{j}-renaming" if l == j else f"({j},{l})-renaming"
        )

    def is_input(self, vector: Vector) -> bool:
        if len(vector) != self.n:
            return False
        present = participants(vector)
        if not present or len(present) > self.j:
            return False
        values = [vector[i] for i in present]
        return len(set(values)) == len(values) and all(
            v in self.namespace for v in values
        )

    def allows(self, inputs: Vector, outputs: Vector) -> bool:
        if not self.is_input(inputs):
            return False
        if len(outputs) != self.n:
            return False
        present = participants(inputs)
        chosen: list[int] = []
        for i, v in enumerate(outputs):
            if v is None:
                continue
            if i not in present:
                return False
            if not isinstance(v, int) or not 1 <= v <= self.l:
                return False
            chosen.append(v)
        return len(set(chosen)) == len(chosen)

    def input_vectors(self) -> Iterator[Vector]:
        indices = range(self.n)
        for size in range(1, self.j + 1):
            for subset in itertools.combinations(indices, size):
                for names in itertools.permutations(self.namespace, size):
                    vec: list[int | None] = [None] * self.n
                    for i, name in zip(subset, names):
                        vec[i] = name
                    yield tuple(vec)

    def output_values(self) -> tuple[int, ...]:
        return tuple(range(1, self.l + 1))


class StrongRenamingTask(RenamingTask):
    """(j, j)-renaming — equivalent to consensus by Corollary 13."""

    def __init__(
        self, n: int, j: int, *, namespace: Sequence[int] | None = None
    ) -> None:
        super().__init__(n, j, j, namespace=namespace)
