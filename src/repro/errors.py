"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SpecificationError(ReproError):
    """A task, environment, or detector specification is malformed."""


class ProtocolError(ReproError):
    """A process automaton violated the step protocol.

    Examples: an S-process issuing a :class:`~repro.runtime.ops.Decide`,
    a C-process issuing a failure-detector query, or an automaton yielding
    an object that is not an operation.
    """


class SchedulingError(ReproError):
    """A scheduler produced an inadmissible choice.

    Examples: scheduling a crashed S-process, or scheduling a fresh
    C-process in a k-concurrent run that is already at its concurrency cap.
    """


class LivenessViolation(ReproError):
    """A bounded execution exhausted its step budget before the required
    processes decided.

    Finite executions cannot witness true non-termination; this error is
    the finitized stand-in for "some live participating C-process never
    decides" and carries the offending run for inspection.
    """

    def __init__(self, message: str, *, result: object | None = None) -> None:
        super().__init__(message)
        self.result = result


class SafetyViolation(ReproError):
    """A run produced an input/output pair outside the task relation."""


class ChaosError(ReproError):
    """The chaos engine was asked something incoherent.

    Examples: shrinking a cell whose run passes, replaying a repro
    bundle in an unknown format version, or a witness whose explicit
    schedule fails to reproduce the recorded outcome.
    """


class ResilienceError(ReproError):
    """The resilience layer was misused or hit unrecoverable state.

    Examples: resuming from a journal whose fingerprint does not match
    the campaign being run, a corrupt (non-trailing) journal line, or an
    explorer checkpoint taken with different reduction knobs.
    """


class CampaignInterrupted(ReproError):
    """A journaled campaign was interrupted (SIGINT/SIGTERM) and shut
    down gracefully: in-flight workers were stopped and every completed
    cell is durable in the journal.  Carries what the caller needs to
    print a resume hint."""

    def __init__(
        self,
        message: str,
        *,
        journal_path: str | None = None,
        completed: int = 0,
        total: int = 0,
    ) -> None:
        super().__init__(message)
        self.journal_path = journal_path
        self.completed = completed
        self.total = total


class ExplorationInterrupted(ReproError):
    """An exhaustive exploration hit its deadline or was signalled; its
    frontier was checkpointed to disk for exact resumption."""

    def __init__(
        self, message: str, *, checkpoint_path: str | None = None
    ) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path


class TraceHazard(ReproError):
    """Strict verification found race/atomicity hazards in a trace.

    Raised by :func:`repro.analysis.verify.verify_run` in strict mode
    when the lint trace analyzer flags lost-update or snapshot-
    linearizability hazards; carries the findings for inspection.
    """

    def __init__(self, message: str, *, findings: tuple = ()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)
