"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SpecificationError(ReproError):
    """A task, environment, or detector specification is malformed."""


class ProtocolError(ReproError):
    """A process automaton violated the step protocol.

    Examples: an S-process issuing a :class:`~repro.runtime.ops.Decide`,
    a C-process issuing a failure-detector query, or an automaton yielding
    an object that is not an operation.
    """


class SchedulingError(ReproError):
    """A scheduler produced an inadmissible choice.

    Examples: scheduling a crashed S-process, or scheduling a fresh
    C-process in a k-concurrent run that is already at its concurrency cap.
    """


class LivenessViolation(ReproError):
    """A bounded execution exhausted its step budget before the required
    processes decided.

    Finite executions cannot witness true non-termination; this error is
    the finitized stand-in for "some live participating C-process never
    decides" and carries the offending run for inspection.
    """

    def __init__(self, message: str, *, result: object | None = None) -> None:
        super().__init__(message)
        self.result = result


class SafetyViolation(ReproError):
    """A run produced an input/output pair outside the task relation."""


class ChaosError(ReproError):
    """The chaos engine was asked something incoherent.

    Examples: shrinking a cell whose run passes, replaying a repro
    bundle in an unknown format version, or a witness whose explicit
    schedule fails to reproduce the recorded outcome.
    """


class TraceHazard(ReproError):
    """Strict verification found race/atomicity hazards in a trace.

    Raised by :func:`repro.analysis.verify.verify_run` in strict mode
    when the lint trace analyzer flags lost-update or snapshot-
    linearizability hazards; carries the findings for inspection.
    """

    def __init__(self, message: str, *, findings: tuple = ()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)
