"""Exact wait-free solvability for 2-participant tasks.

Dimension-1 instance of the Herlihy-Shavit characterization [21] (in
the style of Biran-Moran-Zaks): a task whose runs involve at most two
participants is wait-free read-write solvable if and only if one can
pick a solo decision ``s(p, u)`` for every solo input such that, for
every joint input ``I`` on participants ``p, q`` with values ``u, v``,
the vertices ``(p, s(p, u))`` and ``(q, s(q, v))`` lie in the same
connected component of the allowed-output graph ``H_I``.

Why: the r-round protocol complex of an input edge is an alternating
path with the solo views as endpoints
(:mod:`repro.topology.subdivision`); a protocol is a color-preserving
simplicial map from it into ``H_I`` agreeing with the solo decisions at
the endpoints — i.e. a walk, which exists iff the endpoints are
connected; conversely any walk of length ``<= 3^r`` folds onto the path.
The shortest-walk lengths therefore also give the exact round
complexity, reported as :attr:`SolvabilityResult.rounds`.

This is the machine-checked engine behind the paper's Lemma 11 (strong
2-renaming is not 2-concurrently solvable) and Theorem 12's base case,
and behind the classifier's class-1-versus-class-2 separations.  Note
"solvable 2-concurrently" for a 2-participant task coincides with
wait-free solvability: with at most two participants, every fair run is
2-concurrent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..core.task import Task
from .complexes import Vertex
from .task_complex import TwoProcessTaskData, two_process_task_data


@dataclass(frozen=True)
class SolvabilityResult:
    """Outcome of the decision procedure.

    Attributes:
        solvable: the verdict (exact, not sampled).
        assignment: a witnessing solo-decision map when solvable.
        rounds: rounds of iterated immediate snapshot sufficient for a
            protocol realizing the witness (0 when no joint input needs
            communication).
        obstruction: when unsolvable, a human-readable core reason.
    """

    task_name: str
    solvable: bool
    assignment: dict[tuple[int, Any], Any] | None = None
    rounds: int | None = None
    obstruction: str | None = None


def _joint_constraint_table(data: TwoProcessTaskData):
    """For each joint input: map (solo value of p, solo value of q) ->
    shortest-walk length, for the compatible pairs only."""
    tables = []
    for joint in data.joints:
        u = joint.inputs[joint.p]
        v = joint.inputs[joint.q]
        compatible: dict[tuple[Any, Any], int] = {}
        for a in data.solo_options[(joint.p, u)]:
            va = Vertex(joint.p, a)
            for b in data.solo_options[(joint.q, v)]:
                vb = Vertex(joint.q, b)
                distance = joint.graph.path_distance(va, vb)
                if distance is not None:
                    compatible[(a, b)] = distance
        tables.append((joint, compatible))
    return tables


def decide_two_process_solvability(
    task: Task, *, output_values=None
) -> SolvabilityResult:
    """Decide wait-free solvability of a (<= 2)-participant task.

    Backtracking search over solo assignments, with the binary
    constraints given by connectivity in each joint input's
    allowed-output graph.
    """
    data = two_process_task_data(task, output_values=output_values)
    tables = _joint_constraint_table(data)
    keys = sorted(data.solo_options, key=repr)
    constraints_by_key: dict[tuple[int, Any], list] = {k: [] for k in keys}
    for joint, compatible in tables:
        if not compatible:
            return SolvabilityResult(
                task_name=data.task_name,
                solvable=False,
                obstruction=(
                    f"input {joint.inputs} admits no connected pair of "
                    "solo decisions"
                ),
            )
        ku = (joint.p, joint.inputs[joint.p])
        kv = (joint.q, joint.inputs[joint.q])
        constraints_by_key[ku].append((joint, compatible, True))
        constraints_by_key[kv].append((joint, compatible, False))

    assignment: dict[tuple[int, Any], Any] = {}

    def consistent(key) -> bool:
        for joint, compatible, key_is_p in constraints_by_key[key]:
            ku = (joint.p, joint.inputs[joint.p])
            kv = (joint.q, joint.inputs[joint.q])
            if ku in assignment and kv in assignment:
                if (assignment[ku], assignment[kv]) not in compatible:
                    return False
        return True

    def search(index: int) -> bool:
        if index == len(keys):
            return True
        key = keys[index]
        for value in sorted(data.solo_options[key], key=repr):
            assignment[key] = value
            if consistent(key) and search(index + 1):
                return True
            del assignment[key]
        return False

    if not search(0):
        return SolvabilityResult(
            task_name=data.task_name,
            solvable=False,
            obstruction=(
                "no solo-decision assignment connects all joint inputs "
                "(pigeonhole over the solo choices fails)"
            ),
        )
    # Round complexity: longest shortest-walk among the chosen pairs.
    longest = 0
    for joint, compatible in tables:
        a = assignment[(joint.p, joint.inputs[joint.p])]
        b = assignment[(joint.q, joint.inputs[joint.q])]
        longest = max(longest, compatible[(a, b)])
    rounds = 0 if longest <= 1 else math.ceil(math.log(longest, 3))
    return SolvabilityResult(
        task_name=data.task_name,
        solvable=True,
        assignment=dict(assignment),
        rounds=rounds,
    )


def solvable_in_rounds(
    task: Task, rounds: int, *, output_values=None
) -> bool:
    """Cross-validation: is there a decision map from the ``rounds``-round
    protocol complex?  Dynamic programming over each joint input's path
    (walks of length ``3^rounds``), joined across joint inputs through
    the shared solo decisions.

    Agrees with :func:`decide_two_process_solvability` once ``rounds``
    reaches the reported bound; used by tests and by the solvability
    benchmarks to chart the round/reachability crossover.
    """
    data = two_process_task_data(task, output_values=output_values)
    length = 3**rounds
    tables = []
    for joint in data.joints:
        u = joint.inputs[joint.p]
        v = joint.inputs[joint.q]
        compatible: set[tuple[Any, Any]] = set()
        for a in data.solo_options[(joint.p, u)]:
            va = Vertex(joint.p, a)
            for b in data.solo_options[(joint.q, v)]:
                vb = Vertex(joint.q, b)
                distance = joint.graph.path_distance(va, vb)
                if distance is not None and distance <= length:
                    compatible.add((a, b))
        if not compatible:
            return False
        tables.append((joint, compatible))
    keys = sorted(data.solo_options, key=repr)
    assignment: dict[tuple[int, Any], Any] = {}

    def ok() -> bool:
        for joint, compatible in tables:
            ku = (joint.p, joint.inputs[joint.p])
            kv = (joint.q, joint.inputs[joint.q])
            if ku in assignment and kv in assignment:
                if (assignment[ku], assignment[kv]) not in compatible:
                    return False
        return True

    def search(index: int) -> bool:
        if index == len(keys):
            return True
        key = keys[index]
        for value in sorted(data.solo_options[key], key=repr):
            assignment[key] = value
            if ok() and search(index + 1):
                return True
            del assignment[key]
        return False

    return search(0)
