"""Combinatorial topology: complexes, chromatic subdivision, and the
exact 2-process solvability checker used for the paper's lower bounds."""

from .complexes import Complex, Vertex, path_complex
from .solvability import (
    SolvabilityResult,
    decide_two_process_solvability,
    solvable_in_rounds,
)
from .subdivision import (
    iterated_subdivision,
    protocol_complex,
    subdivide_edge_path,
)
from .synthesis import (
    SynthesizedProtocol,
    path_index,
    shortest_walk,
    synthesize_protocol,
)
from .task_complex import (
    JointInput,
    TwoProcessTaskData,
    output_graph,
    two_process_task_data,
)

__all__ = [
    "Complex",
    "Vertex",
    "path_complex",
    "SolvabilityResult",
    "decide_two_process_solvability",
    "solvable_in_rounds",
    "iterated_subdivision",
    "protocol_complex",
    "subdivide_edge_path",
    "SynthesizedProtocol",
    "path_index",
    "shortest_walk",
    "synthesize_protocol",
    "JointInput",
    "TwoProcessTaskData",
    "output_graph",
    "two_process_task_data",
]
