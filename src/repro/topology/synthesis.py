"""Protocol synthesis from solvability certificates.

The dimension-1 decision procedure
(:mod:`repro.topology.solvability`) does not just answer
solvable/unsolvable — its witness (a solo-decision assignment plus, per
joint input, a walk in the allowed-output graph) *is* a protocol.  This
module materializes it: ``synthesize_protocol(task)`` returns automaton
factories that solve the task wait-free, built from ``r`` rounds of
one-shot immediate snapshots (:mod:`repro.memory.immediate`) followed by
a decision read off the walk.

The geometry at work: after ``r`` rounds of iterated immediate
snapshot, a process's full-information history pins it to one vertex of
the ``r``-th chromatic subdivision of the input edge — an alternating
path with ``3^r`` edges (:mod:`repro.topology.subdivision`).  The
synthesized decision map is the simplicial map that walks the witness:
vertex ``i`` of the path maps to walk vertex ``min(i, L)``, with a
parity bounce past the walk's end (``L`` and ``3^r`` are both odd, so
the endpoints land exactly on the pinned solo decisions).

The vertex-index computation is the classic correspondence: a process
starts at its endpoint of the path; seeing only itself in a round
multiplies its index by 3 (the old vertices survive subdivision at
tripled indices); seeing both pins the pair to the edge between their
(necessarily adjacent) round-``t`` vertices, and the process moves to
its colored interior vertex of that edge's subdivision — index
``3m + 2`` for the left occupant, ``3m + 1`` for the right, where ``m``
is the edge's left index.  Histories are full-information (each round's
snapshot value carries everything), so a process that ever saw its peer
can also compute the peer's index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.process import ProcessContext
from ..core.task import Task
from ..errors import SpecificationError
from ..memory.immediate import ImmediateSnapshot
from ..runtime import ops
from .complexes import Complex, Vertex
from .solvability import decide_two_process_solvability
from .task_complex import two_process_task_data

#: A history is a list of per-round observations: ``None`` (saw only
#: myself) or the peer's ``(index, input, history-prefix)``.
History = list


def shortest_walk(graph: Complex, start: Vertex, goal: Vertex):
    """BFS walk (vertex list) from ``start`` to ``goal``; ``None`` if
    disconnected."""
    if start == goal:
        return [start]
    adjacency: dict[Vertex, set[Vertex]] = {v: set() for v in graph.vertices}
    for edge in graph.edges():
        a, b = tuple(edge)
        adjacency[a].add(b)
        adjacency[b].add(a)
    if start not in adjacency or goal not in adjacency:
        return None
    parents: dict[Vertex, Vertex] = {}
    frontier = [start]
    seen = {start}
    while frontier:
        nxt: list[Vertex] = []
        for vertex in frontier:
            for neighbour in sorted(adjacency[vertex]):
                if neighbour in seen:
                    continue
                parents[neighbour] = vertex
                if neighbour == goal:
                    walk = [goal]
                    while walk[-1] != start:
                        walk.append(parents[walk[-1]])
                    return list(reversed(walk))
                seen.add(neighbour)
                nxt.append(neighbour)
        frontier = nxt
    return None


def path_index(is_left: bool, history: Sequence[Any]) -> int:
    """The subdivision-path index pinned by a full-information history.

    ``is_left`` says whether this process is the path's left endpoint
    (the smaller participant index, by convention).
    """
    index = 0 if is_left else 1
    for rounds_done, observation in enumerate(history):
        if observation is None:
            index *= 3
            continue
        peer_index = observation[0]
        if abs(index - peer_index) != 1:
            raise SpecificationError(
                f"incompatible round-{rounds_done} positions "
                f"{index} / {peer_index}"
            )
        left = min(index, peer_index)
        if index == left:
            index = 3 * left + 2
        else:
            index = 3 * left + 1
    return index


def _bounced(walk, index: int):
    last = len(walk) - 1
    if index <= last:
        return walk[index]
    over = index - last
    return walk[last - (over % 2)]


@dataclass(frozen=True)
class SynthesizedProtocol:
    """The synthesis artifact: factories plus the witness data."""

    task_name: str
    rounds: int
    factories: Sequence[Callable]
    assignment: dict


def synthesize_protocol(
    task: Task, *, output_values=None, name: str = "synth"
) -> SynthesizedProtocol:
    """Build a wait-free protocol for a solvable (<= 2)-participant task.

    Raises :class:`SpecificationError` when the task is unsolvable (the
    certificate says so exactly).
    """
    verdict = decide_two_process_solvability(
        task, output_values=output_values
    )
    if not verdict.solvable:
        raise SpecificationError(
            f"{task.name} is not 2-process wait-free solvable: "
            f"{verdict.obstruction}"
        )
    data = two_process_task_data(task, output_values=output_values)
    assignment = dict(verdict.assignment or {})
    rounds = verdict.rounds or 0

    # Per joint input: the witness walk between the pinned solo vertices.
    walks: dict[tuple, list[Vertex]] = {}
    for joint in data.joints:
        u = joint.inputs[joint.p]
        v = joint.inputs[joint.q]
        start = Vertex(joint.p, assignment[(joint.p, u)])
        goal = Vertex(joint.q, assignment[(joint.q, v)])
        walk = shortest_walk(joint.graph, start, goal)
        if walk is None:  # pragma: no cover - contradicts the verdict
            raise SpecificationError("witness walk vanished")
        walks[(joint.p, u, joint.q, v)] = walk

    snapshots = [
        ImmediateSnapshot(f"{name}/round/{r}", task.n) for r in range(rounds)
    ]

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        my_input = ctx.input_value
        history: History = []
        peer: tuple[int, Any] | None = None  # (index, input)
        for r in range(rounds):
            payload = (me, my_input, list(history))
            view = yield from snapshots[r].participate(me, payload)
            others = {i: cell for i, cell in view.items() if i != me}
            if not others:
                history.append(None)
                continue
            if len(others) > 1:
                raise SpecificationError(
                    "synthesized protocols support two participants"
                )
            peer_id, (peer_me, peer_input, peer_history) = next(
                iter(others.items())
            )
            peer = (peer_id, peer_input)
            peer_position = path_index(peer_id < me, peer_history)
            history.append((peer_position, peer_input, peer_history))
        if peer is None:
            yield ops.Decide(assignment[(me, my_input)])
            return
        peer_id, peer_input = peer
        p, q = (me, peer_id) if me < peer_id else (peer_id, me)
        u = my_input if me == p else peer_input
        v = peer_input if me == p else my_input
        walk = walks[(p, u, q, v)]
        index = path_index(me == p, history)
        vertex = _bounced(walk, index)
        if vertex.color != me:  # pragma: no cover - sanity guard
            raise SpecificationError(
                f"decision map broke color preservation at index {index}"
            )
        yield ops.Decide(vertex.view)

    return SynthesizedProtocol(
        task_name=task.name,
        rounds=rounds,
        factories=[factory] * task.n,
        assignment=assignment,
    )
