"""Standard chromatic subdivision in dimension one.

One round of immediate snapshot turns the input edge
``{(p, u), (q, v)}`` into the three-edge path

    (p, u-solo) -- (q, saw-both) -- (p, saw-both) -- (q, v-solo)

whose endpoints are the solo views.  ``r`` rounds give an alternating
path of ``3^r`` edges: the protocol complex of the r-round
full-information protocol for two processes [21].  Decision maps are
color-preserving simplicial maps from this path, which is why
connectivity of the allowed-output graph is the exact solvability
criterion in dimension 1 (see :mod:`repro.topology.solvability`).
"""

from __future__ import annotations

from typing import Hashable

from ..errors import SpecificationError
from .complexes import Complex, Vertex, path_complex


def subdivide_edge_path(path: list[Vertex]) -> list[Vertex]:
    """One chromatic subdivision of an alternating-color vertex path.

    Each edge ``A -- B`` becomes ``A -- B' -- A' -- B`` where the primed
    vertices carry the "saw both" view ``(A.view, B.view)``.
    """
    if len(path) < 2:
        raise SpecificationError("need at least one edge")
    out: list[Vertex] = [path[0]]
    for a, b in zip(path, path[1:]):
        if a.color == b.color:
            raise SpecificationError("path must alternate colors")
        both_b = Vertex(b.color, ("both", a.view, b.view))
        both_a = Vertex(a.color, ("both", a.view, b.view))
        out.extend([both_b, both_a, b])
    return out


def iterated_subdivision(
    p_color: int,
    q_color: int,
    p_view: Hashable,
    q_view: Hashable,
    rounds: int,
) -> list[Vertex]:
    """The vertex path of the r-round protocol complex of one input
    edge.  Length ``3^rounds`` edges; endpoints are the solo views."""
    path = [Vertex(p_color, ("solo", p_view)), Vertex(q_color, ("solo", q_view))]
    for _ in range(rounds):
        path = subdivide_edge_path(path)
    return path


def protocol_complex(
    p_color: int,
    q_color: int,
    p_view: Hashable,
    q_view: Hashable,
    rounds: int,
) -> Complex:
    """The r-round 2-process protocol complex as a :class:`Complex`."""
    return path_complex(
        iterated_subdivision(p_color, q_color, p_view, q_view, rounds)
    )
