"""Tasks as complexes: output graphs and carrier data for the 2-process
decision procedure.

For a task whose inputs involve at most two participants, each joint
input vector ``I`` (participants ``p, q``) induces the *allowed-output
graph* ``H_I``: vertices ``(p, a)`` / ``(q, b)`` for output values the
task permits, edges exactly the pairs ``(a, b)`` with the complete
output vector in ``Delta(I)``.  Solo inputs induce the sets of allowed
solo decisions.  These are the data the Biran-Moran-Zaks-style checker
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..core.task import Task, Vector, participants
from ..errors import SpecificationError
from .complexes import Complex, Vertex


@dataclass(frozen=True)
class JointInput:
    """One two-participant input with its allowed-output graph."""

    inputs: Vector
    p: int
    q: int
    graph: Complex


@dataclass(frozen=True)
class TwoProcessTaskData:
    """Everything the 2-process solvability checker needs."""

    task_name: str
    n: int
    solo_options: dict[tuple[int, Any], frozenset]
    joints: tuple[JointInput, ...]


def _solo_vector(n: int, p: int, value: Any) -> Vector:
    return tuple(value if i == p else None for i in range(n))


def _pair_vector(n: int, p: int, u: Any, q: int, v: Any) -> Vector:
    return tuple(
        u if i == p else v if i == q else None for i in range(n)
    )


def output_graph(task: Task, inputs: Vector, output_values: Iterable) -> Complex:
    """The allowed-output graph ``H_I`` of a two-participant input."""
    present = sorted(participants(inputs))
    if len(present) != 2:
        raise SpecificationError(f"{inputs} does not have two participants")
    p, q = present
    graph = Complex()
    values = list(output_values)
    n = len(inputs)
    for a in values:
        for b in values:
            candidate = tuple(
                a if i == p else b if i == q else None for i in range(n)
            )
            if task.allows(inputs, candidate):
                graph.add({Vertex(p, a), Vertex(q, b)})
    return graph


def two_process_task_data(
    task: Task, *, output_values: Iterable | None = None
) -> TwoProcessTaskData:
    """Extract solo options and joint-input output graphs from a task
    whose inputs have at most two participants.

    Inputs with more than two participants are rejected — restrict the
    task first (e.g. via
    :func:`repro.tasks.builders.restrict_to_participants`).
    """
    if output_values is None:
        getter = getattr(task, "output_values", None)
        if getter is None:
            raise SpecificationError(f"{task!r} has no output_values()")
        output_values = tuple(getter())
    values = tuple(output_values)
    solo_options: dict[tuple[int, Any], set] = {}
    joints: list[JointInput] = []
    for inputs in task.input_vectors():
        present = sorted(participants(inputs))
        if len(present) > 2:
            raise SpecificationError(
                f"{task!r} has an input with {len(present)} participants; "
                "the 2-process checker requires at most two"
            )
        if len(present) == 1:
            p = present[0]
            key = (p, inputs[p])
            allowed = {
                a
                for a in values
                if task.allows(inputs, _solo_vector(task.n, p, a))
            }
            if not allowed:
                raise SpecificationError(
                    f"no solo output for p{p + 1} on input {inputs[p]!r}"
                )
            solo_options.setdefault(key, set()).update(allowed)
        else:
            p, q = present
            joints.append(
                JointInput(
                    inputs=inputs,
                    p=p,
                    q=q,
                    graph=output_graph(task, inputs, values),
                )
            )
    return TwoProcessTaskData(
        task_name=task.name,
        n=task.n,
        solo_options={
            key: frozenset(allowed) for key, allowed in solo_options.items()
        },
        joints=tuple(joints),
    )
