"""Chromatic simplicial complexes (the combinatorial-topology substrate
behind the paper's impossibility citations [21, 27, 5]).

A *chromatic* complex colors every vertex by a process id, and every
simplex has distinctly colored vertices.  For the paper's 2-process
arguments (Lemma 11, the consensus reduction) only dimension <= 1
matters — graphs — where the relevant topological invariant is plain
connectivity; this module nevertheless keeps the general vocabulary so
the structures read like the literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from ..errors import SpecificationError


@dataclass(frozen=True, order=True)
class Vertex:
    """A colored vertex: ``color`` is a process index, ``view`` its
    local value (input, output, or full-information view)."""

    color: int
    view: Hashable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.color}:{self.view!r}>"


class Complex:
    """A chromatic simplicial complex, closed under taking faces."""

    def __init__(self, simplices: Iterable[frozenset[Vertex]] = ()) -> None:
        self._simplices: set[frozenset[Vertex]] = set()
        for simplex in simplices:
            self.add(simplex)

    def add(self, simplex: Iterable[Vertex]) -> None:
        simplex = frozenset(simplex)
        colors = [v.color for v in simplex]
        if len(set(colors)) != len(colors):
            raise SpecificationError(
                f"simplex {set(simplex)} repeats a color"
            )
        # Close under faces.
        items = list(simplex)
        for mask in range(1, 2 ** len(items)):
            face = frozenset(
                items[i] for i in range(len(items)) if mask >> i & 1
            )
            self._simplices.add(face)

    @property
    def vertices(self) -> frozenset[Vertex]:
        return frozenset(
            v for s in self._simplices if len(s) == 1 for v in s
        )

    def simplices(self, dimension: int | None = None) -> Iterator:
        for s in self._simplices:
            if dimension is None or len(s) == dimension + 1:
                yield s

    def facets(self) -> Iterator[frozenset[Vertex]]:
        """Maximal simplices."""
        for s in self._simplices:
            if not any(
                s < other for other in self._simplices
            ):
                yield s

    @property
    def dimension(self) -> int:
        return max((len(s) - 1 for s in self._simplices), default=-1)

    def has_simplex(self, simplex: Iterable[Vertex]) -> bool:
        return frozenset(simplex) in self._simplices

    def edges(self) -> Iterator[frozenset[Vertex]]:
        return self.simplices(dimension=1)

    def __contains__(self, simplex) -> bool:
        return self.has_simplex(simplex)

    def __len__(self) -> int:
        return len(self._simplices)

    # -- connectivity (the dimension-1 invariant) -----------------------

    def connected_components(self) -> list[frozenset[Vertex]]:
        """Components of the 1-skeleton."""
        adjacency: dict[Vertex, set[Vertex]] = {
            v: set() for v in self.vertices
        }
        for edge in self.edges():
            a, b = tuple(edge)
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen: set[Vertex] = set()
        components: list[frozenset[Vertex]] = []
        for start in sorted(adjacency):
            if start in seen:
                continue
            stack = [start]
            component: set[Vertex] = set()
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                stack.extend(adjacency[vertex] - component)
            seen |= component
            components.append(frozenset(component))
        return components

    def same_component(self, a: Vertex, b: Vertex) -> bool:
        for component in self.connected_components():
            if a in component:
                return b in component
        return False

    def path_distance(self, a: Vertex, b: Vertex) -> int | None:
        """Shortest walk length between two vertices (``None`` if
        disconnected); used to bound protocol round complexity."""
        if a == b:
            return 0
        adjacency: dict[Vertex, set[Vertex]] = {
            v: set() for v in self.vertices
        }
        for edge in self.edges():
            x, y = tuple(edge)
            adjacency[x].add(y)
            adjacency[y].add(x)
        if a not in adjacency or b not in adjacency:
            return None
        frontier = {a}
        seen = {a}
        distance = 0
        while frontier:
            distance += 1
            frontier = {
                nxt
                for v in frontier
                for nxt in adjacency[v]
                if nxt not in seen
            }
            if b in frontier:
                return distance
            seen |= frontier
        return None


def path_complex(vertices: list[Vertex]) -> Complex:
    """The 1-dimensional complex of a vertex path."""
    complex_ = Complex()
    for a, b in zip(vertices, vertices[1:]):
        complex_.add({a, b})
    return complex_
