"""repro — executable reproduction of *Wait-Freedom with Advice*
(Delporte-Gallet, Fauconnier, Gafni, Kuznetsov; PODC 2012).

The package implements the paper's external-failure-detection (EFD)
model — computation processes solving tasks wait-free with advice from
failure-detector-equipped synchronization processes — together with
every algorithm the paper presents (Figures 1-4, the Theorem 7 and
Theorem 9 constructions) and the substrates those algorithms rely on
(BG simulation, safe agreement, leader-based shared-memory consensus,
atomic snapshots), plus an exact 2-process solvability checker for the
paper's impossibility results and a classifier that regenerates the
Theorem 10 task hierarchy.  :mod:`repro.chaos` turns the reproduction
into an adversarial testbed: fault-injection campaigns over failure
patterns, perturbed detector histories, and mutated schedules, with
counterexample shrinking and replayable failure bundles.

Quickstart::

    from repro import solve_task
    from repro.tasks import SetAgreementTask
    from repro.detectors import VectorOmegaK

    task = SetAgreementTask(n=4, k=2)
    result = solve_task(task, detector=VectorOmegaK(n=4, k=2), seed=7)
    print(result.outputs)
"""

from .api import solve_task, solve_task_restricted, verify_run
from .core import (
    Environment,
    FailurePattern,
    ProcessId,
    RunResult,
    System,
    Task,
)

__version__ = "1.0.0"

__all__ = [
    "solve_task",
    "solve_task_restricted",
    "verify_run",
    "Environment",
    "FailurePattern",
    "ProcessId",
    "RunResult",
    "System",
    "Task",
    "__version__",
]
