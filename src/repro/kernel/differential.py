"""Kernel/interpreter differential harness: the compiled kernel's
correctness gate.

The compiled kernel (:mod:`repro.kernel.engine`) claims *exact*
equivalence with the interpreted executor.  This module is the
enforcement mechanism:

* :func:`all_cases` enumerates differential workloads — mirrors of the
  strict-lint battery (:mod:`repro.lint.battery`), the ten
  ``tests/checker/test_reduction.py`` workloads, randomized
  crash-schedule sweeps, and one specimen per module in
  :data:`repro.algorithms.LINT_SCHEMAS` (so every schema either
  compiles or demonstrably falls back — never silently diverges);
* :func:`run_case` executes one case through both kernels, traced and
  untraced, and canonicalizes each :class:`~repro.core.run.RunResult`
  with :func:`canonical_result` — byte-comparable strings covering
  outputs, step counts, stop reason, final memory, extras, and every
  trace event;
* :func:`footprint_crosscheck` compares the compiler's per-site
  register metadata (:class:`~repro.kernel.compiler.OpSite`) against
  the linter's :class:`~repro.lint.ir.footprint.StaticFootprint` for
  the same automata, so the footprints the partial-order reduction
  trusts stay sound for compiled code;
* :func:`run_differential` drives the whole gate (CI entry point:
  ``repro kernel --differential``).

A mismatch raises :class:`DifferentialFailure` carrying the first
divergent canonical line — loud by design; the deliberately
miscompiled specimen in ``tests/kernel/test_differential.py`` proves
the gate trips.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..core.failures import FailurePattern
from ..core.process import c_process
from ..core.run import RunResult
from ..core.system import INPUT_REGISTER_PREFIX, System
from ..runtime import ops
from ..runtime.executor import execute
from ..runtime.scheduler import (
    AdversarialScheduler,
    RoundRobinScheduler,
    SeededRandomScheduler,
)
from .compiler import cached_programs
from .engine import CompiledRun

__all__ = [
    "DiffCase",
    "CaseOutcome",
    "DifferentialFailure",
    "canonical_result",
    "run_case",
    "all_cases",
    "run_differential",
    "footprint_crosscheck",
    "campaign_differential",
]


class DifferentialFailure(AssertionError):
    """The two kernels produced observably different runs."""


@dataclass(frozen=True)
class DiffCase:
    """One differential workload: a fresh (system, scheduler) builder.

    ``build`` must construct *everything* fresh on each call — systems
    and schedulers are stateful.  ``full_only`` cases are skipped in
    smoke mode (CI per-push); the nightly full battery runs them all.
    """

    name: str
    build: Callable[[], tuple[System, Any]]
    max_steps: int = 50_000
    full_only: bool = False


@dataclass
class CaseOutcome:
    """Both kernels' canonical outputs for one case (one trace mode)."""

    case: str
    traced: bool
    interp: str
    compiled: str
    compiled_pids: tuple[str, ...] = ()
    fallback_pids: tuple[str, ...] = ()

    @property
    def identical(self) -> bool:
        return self.interp == self.compiled

    def first_divergence(self) -> str:
        for i, (a, b) in enumerate(
            zip(self.interp.splitlines(), self.compiled.splitlines())
        ):
            if a != b:
                return f"line {i}: interp {a!r} != compiled {b!r}"
        return (
            f"lengths differ: interp {len(self.interp)} chars, "
            f"compiled {len(self.compiled)} chars"
        )


def canonical_result(result: RunResult) -> str:
    """Byte-comparable canonical form of a run (trace included)."""
    lines = [
        repr(result.inputs),
        repr(result.outputs),
        repr(sorted(result.participants)),
        repr(result.steps),
        repr(
            sorted((p.name, c) for p, c in result.step_counts.items())
        ),
        result.reason,
        repr(result.pattern.crash_times),
        repr(sorted(result.memory.snapshot("").items())),
        repr(sorted(result.extras.items())),
    ]
    if result.trace is not None:
        lines.extend(
            f"{e.time} {e.pid.name} {e.op!r} {e.result!r}"
            for e in result.trace.events
        )
    return "\n".join(lines)


def run_case(case: DiffCase, *, trace: bool) -> CaseOutcome:
    """Execute ``case`` through both kernels; canonicalize both runs."""
    system, scheduler = case.build()
    interp = execute(
        system, scheduler, max_steps=case.max_steps, trace=trace
    )
    system, scheduler = case.build()
    run = CompiledRun(
        system, scheduler, max_steps=case.max_steps, trace=trace
    )
    compiled = run.run()
    return CaseOutcome(
        case=case.name,
        traced=trace,
        interp=canonical_result(interp),
        compiled=canonical_result(compiled),
        compiled_pids=tuple(
            sorted(p.name for p in run.compiled_pids)
        ),
        fallback_pids=tuple(
            sorted(p.name for p in run.fallback_pids)
        ),
    )


def verify_case(case: DiffCase) -> list[CaseOutcome]:
    """Run ``case`` traced and untraced; raise on any divergence."""
    outcomes = []
    for trace in (False, True):
        outcome = run_case(case, trace=trace)
        if not outcome.identical:
            raise DifferentialFailure(
                f"{case.name} (traced={trace}): "
                f"{outcome.first_divergence()}"
            )
        outcomes.append(outcome)
    return outcomes


# -- workloads: battery mirrors ------------------------------------------


def _battery_cases() -> Iterator[DiffCase]:
    """Mirrors of the seven strict-lint battery recipes
    (:func:`repro.lint.battery.battery_runs` — same factories, same
    seeds, same envelopes)."""
    from ..algorithms.kset_concurrent import kset_concurrent_factories
    from ..algorithms.kset_vector import kset_factories
    from ..algorithms.one_concurrent import one_concurrent_factories
    from ..algorithms.renaming_figure4 import figure4_factories
    from ..algorithms.s_helper import helper_c_factory, helper_s_factory
    from ..algorithms.splitters import moir_anderson_factories
    from ..algorithms.wsb_concurrent import wsb_concurrent_factories
    from ..detectors import VectorOmegaK
    from ..runtime import k_concurrent
    from ..tasks import ConsensusTask

    yield DiffCase(
        "battery:one_concurrent@1",
        lambda: (
            System(
                inputs=(0, 1, 1),
                c_factories=one_concurrent_factories(ConsensusTask(3)),
            ),
            k_concurrent(SeededRandomScheduler(7), 1),
        ),
    )
    yield DiffCase(
        "battery:kset_concurrent@1",
        lambda: (
            System(
                inputs=(3, 4, 5),
                c_factories=kset_concurrent_factories(3, 2),
            ),
            k_concurrent(SeededRandomScheduler(11), 1),
        ),
    )
    yield DiffCase(
        "battery:s_helper",
        lambda: (
            System(
                inputs=(6, 7, 8),
                c_factories=[helper_c_factory] * 3,
                s_factories=[helper_s_factory] * 3,
            ),
            SeededRandomScheduler(13),
        ),
    )
    yield DiffCase(
        "battery:figure4",
        lambda: (
            System(inputs=(1, 2, None), c_factories=figure4_factories(3)),
            SeededRandomScheduler(17),
        ),
    )
    yield DiffCase(
        "battery:wsb@2",
        lambda: (
            System(
                inputs=(1, None, 3),
                c_factories=wsb_concurrent_factories(3, 2),
            ),
            k_concurrent(SeededRandomScheduler(19), 2),
        ),
    )
    yield DiffCase(
        "battery:moir_anderson",
        lambda: (
            System(
                inputs=(1, 2, 3, None, None),
                c_factories=moir_anderson_factories(5, 3),
            ),
            SeededRandomScheduler(23),
        ),
    )

    def build_kset_vector() -> tuple[System, Any]:
        c_factories, s_factories = kset_factories(2, 1)
        return (
            System(
                inputs=(0, 1),
                c_factories=c_factories,
                s_factories=s_factories,
                detector=VectorOmegaK(2, 1),
                seed=3,
            ),
            SeededRandomScheduler(29),
        )

    # Smoke bound keeps CI fast; the full battery replays the linter's
    # exact 200k budget.
    yield DiffCase(
        "battery:kset_vector", build_kset_vector, max_steps=20_000
    )
    yield DiffCase(
        "battery:kset_vector-full",
        build_kset_vector,
        max_steps=200_000,
        full_only=True,
    )


# -- workloads: reduction-test mirrors -----------------------------------


def _reduction_cases() -> Iterator[DiffCase]:
    """Mirrors of the ten ``tests/checker/test_reduction.py`` workloads
    (same tasks, inputs, and crash patterns), each run under both a
    round-robin and a seeded scheduler."""
    from ..algorithms.kset_concurrent import kset_concurrent_factories
    from ..algorithms.renaming_figure4 import figure4_factories
    from ..algorithms.wsb_concurrent import wsb_concurrent_factories
    from ..tasks import identity_factories

    builders: dict[str, Callable[[], System]] = {
        "figure4": lambda: System(
            inputs=(1, 2, None), c_factories=figure4_factories(3)
        ),
        "figure4-violating": lambda: System(
            inputs=(1, 2, None), c_factories=figure4_factories(3)
        ),
        "kset-mixed": lambda: System(
            inputs=(1, 1, 0), c_factories=kset_concurrent_factories(3, 2)
        ),
        "kset-symmetric": lambda: System(
            inputs=(1, 1, 1), c_factories=kset_concurrent_factories(3, 2)
        ),
        "kset-violating": lambda: System(
            inputs=(0, 1, 2), c_factories=kset_concurrent_factories(3, 1)
        ),
        "identity": lambda: System(
            inputs=(0, 1, 0), c_factories=identity_factories(3)
        ),
        "wsb": lambda: System(
            inputs=(1, None, 3), c_factories=wsb_concurrent_factories(3, 2)
        ),
    }
    for seed in range(3):
        rng = random.Random(seed)
        times = tuple(
            rng.randrange(1, 8) if rng.random() < 0.7 else None
            for _ in range(3)
        )
        builders[f"crashes-{seed}"] = (
            lambda times=times: System(
                inputs=(1, 2, None),
                c_factories=figure4_factories(3),
                pattern=FailurePattern(3, times),
            )
        )
    for name, build_system in builders.items():
        for sched_name, make_sched in (
            ("rr", RoundRobinScheduler),
            ("seeded", lambda: SeededRandomScheduler(5)),
        ):
            yield DiffCase(
                f"reduction:{name}/{sched_name}",
                lambda b=build_system, m=make_sched: (b(), m()),
                max_steps=5_000,
            )


# -- workloads: crash-schedule sweeps ------------------------------------


def _crash_sweep_cases() -> Iterator[DiffCase]:
    """Randomized S-crash patterns over the s_helper system — the
    workload where crash retirement, candidate-list maintenance, and
    the seeded-scheduler RNG stream all interact."""
    from ..algorithms.s_helper import helper_c_factory, helper_s_factory

    rng = random.Random(0xC0FFEE)
    for i in range(6):
        times = [
            rng.randrange(1, 80) if rng.random() < 0.6 else None
            for _ in range(3)
        ]
        if all(t is not None for t in times):
            times[rng.randrange(3)] = None  # >=1 correct S-process
        pattern = tuple(times)

        def build(pattern=pattern) -> System:
            return System(
                inputs=(6, 7, 8),
                c_factories=[helper_c_factory] * 3,
                s_factories=[helper_s_factory] * 3,
                pattern=FailurePattern(3, pattern),
            )

        for sched_name, make_sched in (
            ("rr", RoundRobinScheduler),
            ("seeded", lambda i=i: SeededRandomScheduler(100 + i)),
            (
                "adversarial",
                lambda i=i: AdversarialScheduler(
                    [c_process(i % 3)], period=5 + i
                ),
            ),
        ):
            yield DiffCase(
                f"crash-sweep:{i}/{sched_name}",
                lambda b=build, m=make_sched: (b(), m()),
                max_steps=4_000,
            )


# -- workloads: one specimen per LINT_SCHEMAS module ---------------------


def _echo_code(ctx):
    """Simulated BG code: decide own (virtual) input."""
    value = yield ops.Read(f"{INPUT_REGISTER_PREFIX}{ctx.pid.index}")
    yield ops.Decide(value)


def _counting_code(ctx):
    """Simulated Figure 2 code: bump own counter forever."""
    count = 0
    while True:
        yield ops.Write(f"count/{ctx.pid.index}", count)
        count += 1


def _null_c(ctx):
    while True:
        yield ops.Nop()


def _catalog_cases(*, smoke: bool) -> Iterator[DiffCase]:
    """One executable specimen per ``LINT_SCHEMAS`` module not already
    exercised by the battery/reduction mirrors, so the differential
    gate covers every declared schema (directly or as a subroutine of
    one): bg_simulation (+ safe_agreement), dispatch
    (+ kconcurrent_solver, kset_vector, paxos), extraction,
    kcode_simulation, renaming_figure3, self_synchronization,
    set_agreement_ext.
    """
    from ..algorithms.bg_simulation import BGSpec, bg_factories
    from ..algorithms.extraction import (
        ExtractionConfig,
        ExtractionEngine,
        extraction_s_factory,
    )
    from ..algorithms.kcode_simulation import F2Spec, figure2_factories
    from ..algorithms.kset_concurrent import kset_concurrent_factories
    from ..algorithms.kset_vector import kset_c_factory, kset_s_factory
    from ..algorithms.renaming_figure3 import figure3_factories
    from ..algorithms.self_synchronization import interleave_factories
    from ..algorithms.s_helper import helper_c_factory, helper_s_factory
    from ..algorithms.set_agreement_ext import ax_factories
    from ..algorithms.dispatch import build_solver_system
    from ..detectors import Omega, VectorOmegaK
    from ..runtime import k_concurrent
    from ..tasks import ConsensusTask

    for agreement in ("cas", "safe"):

        def build_bg(agreement=agreement) -> tuple[System, Any]:
            spec = BGSpec(
                name="bg",
                code_factories=[_echo_code] * 4,
                simulators=2,
                static_inputs=(10, 11, 12, 13),
                agreement=agreement,
            )
            return (
                System(inputs=(0, 1), c_factories=bg_factories(spec)),
                RoundRobinScheduler(),
            )

        yield DiffCase(
            f"catalog:bg_simulation/{agreement}",
            build_bg,
            max_steps=6_000,
        )

    def build_extraction() -> tuple[System, Any]:
        n, k = 2, 1

        def engine_builder(dag: Any) -> ExtractionEngine:
            return ExtractionEngine(
                n=n,
                k=k,
                c_factories=[kset_c_factory(k)] * n,
                s_factories=[kset_s_factory(k)] * n,
                dag=dag,
                input_vectors=[(0, 1)],
                config=ExtractionConfig(max_depth=120, max_calls=400),
            )

        s_factories = [
            extraction_s_factory(
                n=n, k=k, engine_builder=engine_builder, sample_rounds=12
            )
            for _ in range(n)
        ]
        return (
            System(
                inputs=(1, 1),
                c_factories=[_null_c] * n,
                s_factories=s_factories,
                detector=Omega(leader=0),
                pattern=FailurePattern.all_correct(n),
            ),
            RoundRobinScheduler(),
        )

    yield DiffCase(
        "catalog:extraction", build_extraction, max_steps=2_000
    )

    def build_kcode() -> tuple[System, Any]:
        spec = F2Spec(
            k=2, code_factories=[_counting_code] * 2, n=3
        )
        c_factories, s_factories = figure2_factories(spec)
        return (
            System(
                inputs=(0, 1, 2),
                c_factories=c_factories,
                s_factories=s_factories,
                detector=VectorOmegaK(spec.n, spec.k),
                seed=0,
            ),
            SeededRandomScheduler(0),
        )

    yield DiffCase("catalog:kcode_simulation", build_kcode,
                   max_steps=4_000)

    yield DiffCase(
        "catalog:renaming_figure3",
        lambda: (
            System(
                inputs=(1, 2, None),
                c_factories=figure3_factories(3, 2),
            ),
            SeededRandomScheduler(41),
        ),
        max_steps=30_000,
    )

    yield DiffCase(
        "catalog:self_synchronization",
        lambda: (
            System(
                inputs=(6, 7, 8),
                c_factories=[
                    interleave_factories(
                        helper_c_factory, helper_s_factory
                    )
                ]
                * 3,
            ),
            SeededRandomScheduler(43),
        ),
        max_steps=10_000,
    )

    def build_ax() -> tuple[System, Any]:
        n, k, x = 5, 2, 3
        factories = ax_factories(
            x, n, kset_concurrent_factories(k + 1, k)
        )
        inputs = tuple(i if i < x else None for i in range(n))
        return (
            System(inputs=inputs, c_factories=factories),
            k_concurrent(SeededRandomScheduler(3), k),
        )

    yield DiffCase(
        "catalog:set_agreement_ext",
        build_ax,
        max_steps=8_000 if smoke else 60_000,
    )

    def build_dispatch() -> tuple[System, Any]:
        system = build_solver_system(
            ConsensusTask(3), detector=Omega(), seed=1
        )
        return system, SeededRandomScheduler(9)

    yield DiffCase(
        "catalog:dispatch",
        build_dispatch,
        max_steps=6_000 if smoke else 40_000,
    )


def all_cases(*, smoke: bool = True) -> list[DiffCase]:
    """Every differential workload (``smoke`` drops ``full_only`` ones
    and shortens the heavy catalog budgets)."""
    cases = [
        *_battery_cases(),
        *_reduction_cases(),
        *_crash_sweep_cases(),
        *_catalog_cases(smoke=smoke),
    ]
    if smoke:
        cases = [case for case in cases if not case.full_only]
    return cases


# -- the footprint cross-check -------------------------------------------


def footprint_crosscheck(
    programs: list | None = None,
) -> tuple[int, list[str]]:
    """Check compiled op-site metadata against the linter's static
    footprints.

    For every cached :class:`~repro.kernel.compiler.CompiledProgram`
    whose source function is a declared ``LINT_SCHEMAS`` automaton, each
    compiled suspension site must be *covered* by the corresponding
    :class:`~repro.lint.ir.footprint.StaticFootprint` — otherwise the
    compiler found a register access the linter (and therefore the
    partial-order reduction) does not know about.  Returns
    ``(n_checked_sites, mismatches)``.
    """
    from ..lint.runner import build_units

    units, _findings = build_units()
    footprints: dict[tuple[str, str], Any] = {}
    for unit in units:
        for name, air in unit.irs.items():
            footprints[(unit.module.__name__, name.split(".")[0])] = (
                air.footprint
            )

    checked = 0
    mismatches: list[str] = []
    for program in programs if programs is not None else cached_programs():
        root = program.qualname.split(".<locals>.")[0]
        footprint = footprints.get((program.module, root))
        if footprint is None:
            continue  # not a declared automaton (test helper, inline)
        for site in program.sites:
            checked += 1
            if not _site_covered(site, footprint):
                mismatches.append(
                    f"{program.module}.{root} site {site.site} "
                    f"({site.kind} {site.register or site.register_prefix!r})"
                    f" not covered by static footprint"
                )
    return checked, mismatches


def _site_covered(site: Any, fp: Any) -> bool:
    if site.kind == "nop":
        return True
    if site.kind == "query":
        return fp.queries
    if site.kind == "decide":
        return fp.decides
    if site.kind == "delegate":
        # A dynamic ``yield from`` site drives an unresolvable callee
        # and may perform any operation at runtime; only an *open*
        # footprint (the linter admits unresolved delegation too) can
        # soundly cover it.
        return not fp.closed
    if not fp.closed:
        # The linter itself admits unresolved/delegated sites; nothing
        # stronger can be asserted for this automaton.
        return True
    reads = fp.reads | fp.read_prefixes
    writes = fp.writes | fp.write_prefixes

    def overlaps(text: str | None, declared: frozenset) -> bool:
        if text is None:
            return False
        return any(
            text.startswith(d) or d.startswith(text) for d in declared
        )

    if site.kind == "read":
        if site.register is not None:
            return fp.covers_read(site.register)
        return overlaps(site.register_prefix, reads)
    if site.kind == "snapshot":
        prefix = (
            site.register
            if site.register is not None
            else site.register_prefix
        )
        return prefix is not None and (
            prefix == "" or fp.covers_snapshot(prefix)
            or overlaps(prefix, fp.read_prefixes)
        )
    if site.kind == "write":
        if site.register is not None:
            return fp.covers_write(site.register)
        return overlaps(site.register_prefix, writes)
    if site.kind == "cas":
        if site.register is not None:
            return fp.covers_read(site.register) and fp.covers_write(
                site.register
            )
        return overlaps(site.register_prefix, reads) and overlaps(
            site.register_prefix, writes
        )
    return False  # unknown kind: fail loudly


# -- campaign-report differential ----------------------------------------


def campaign_differential(*, limit: int = 6) -> tuple[str, str]:
    """Render the smoke campaign through both kernels; the two reports
    must be byte-identical.  Returns (interp_render, compiled_render).
    """
    from ..chaos.campaign import run_campaign, smoke_campaign

    interp = run_campaign(
        smoke_campaign(), limit=limit, kernel="interp"
    )
    compiled = run_campaign(
        smoke_campaign(), limit=limit, kernel="compiled"
    )
    return interp.render(), compiled.render()


# -- orchestration -------------------------------------------------------


@dataclass
class DifferentialReport:
    """Summary of one full differential sweep."""

    cases: int = 0
    compared: int = 0
    failures: list[str] = field(default_factory=list)
    fallbacks: dict[str, tuple[str, ...]] = field(default_factory=dict)
    footprint_sites: int = 0
    footprint_mismatches: list[str] = field(default_factory=list)
    campaign_identical: bool | None = None

    @property
    def ok(self) -> bool:
        return (
            not self.failures
            and not self.footprint_mismatches
            and self.campaign_identical is not False
        )

    def render(self) -> str:
        lines = [
            f"kernel differential: {self.compared} comparisons over "
            f"{self.cases} cases — "
            f"{'OK' if self.ok else 'DIVERGED'}",
        ]
        fallback = {
            name: pids for name, pids in self.fallbacks.items() if pids
        }
        lines.append(
            f"  fallback automata in {len(fallback)}/{self.cases} cases"
        )
        lines.append(
            f"  footprint cross-check: {self.footprint_sites} sites, "
            f"{len(self.footprint_mismatches)} mismatches"
        )
        if self.campaign_identical is not None:
            lines.append(
                "  campaign reports: "
                + (
                    "byte-identical"
                    if self.campaign_identical
                    else "DIVERGED"
                )
            )
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        for mismatch in self.footprint_mismatches:
            lines.append(f"  FOOTPRINT {mismatch}")
        return "\n".join(lines)


def run_differential(
    *,
    smoke: bool = True,
    campaign: bool = True,
    on_case: Callable[[str], None] | None = None,
) -> DifferentialReport:
    """Run the full gate: every case traced+untraced, the footprint
    cross-check over everything that compiled, and (optionally) the
    campaign-report byte-compare."""
    report = DifferentialReport()
    for case in all_cases(smoke=smoke):
        report.cases += 1
        if on_case is not None:
            on_case(case.name)
        for trace in (False, True):
            outcome = run_case(case, trace=trace)
            report.compared += 1
            if not outcome.identical:
                report.failures.append(
                    f"{case.name} (traced={trace}): "
                    f"{outcome.first_divergence()}"
                )
            report.fallbacks[case.name] = outcome.fallback_pids
    report.footprint_sites, report.footprint_mismatches = (
        footprint_crosscheck()
    )
    if campaign:
        interp_render, compiled_render = campaign_differential()
        report.campaign_identical = interp_render == compiled_render
    return report
