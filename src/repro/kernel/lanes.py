"""Batched campaign lanes: many campaign cells advanced in lockstep
through the compiled kernel.

The serial in-process backend of :func:`repro.chaos.run_campaign`
(``kernel="compiled"``) routes through :func:`run_cells_compiled`: every
cell's :class:`~repro.kernel.engine.CompiledRun` becomes a *lane*, and
the driver round-robins ``advance(CHUNK)`` over the live lanes instead
of running each cell to completion before touching the next.  Cells are
independent (each owns its system, scheduler, and seeds), so lockstep
interleaving cannot change any verdict — it exists so that

* compilation is amortized up front: the first lane to use an automaton
  compiles it, every other lane reuses the cached program;
* a campaign's progress is breadth-first: early cells of a long sweep
  produce records at roughly the same time, which keeps journals and
  ``on_cell`` streams live even when one cell is step-budget heavy;
* lanes of one system *shape* (same cell spec modulo seeds — the
  many-seed sweep case) share copy-on-write register state through a
  :class:`~repro.kernel.engine.LaneState`: epoch-0 snapshots are served
  from a group-shared cache until a lane's first write bumps its
  private epoch, and byte-identical final register files are interned
  once per group and handed out as O(1) COW copies instead of being
  re-materialized per cell.

Records are delivered through the same ``record_result(index, record)``
callback the pool backends use, so reports stay byte-identical to a
serial interpreted run (enforced by
:func:`repro.kernel.differential.campaign_differential`).
"""

from __future__ import annotations

import json
from typing import Callable, Sequence

from .engine import CompiledRun, LaneState

__all__ = ["CHUNK", "lane_shape_key", "run_cells_compiled"]

#: Scheduler turns granted to one lane before moving to the next.
#: Large enough that per-switch overhead vanishes against per-step
#: work, small enough that a 12-cell smoke campaign interleaves.
CHUNK = 2048


def lane_shape_key(cell) -> str:
    """Canonical key of a cell's system *shape*: its JSON spec with the
    detector seed and scheduler seed stripped.  Cells agreeing on this
    key differ only in seeds, start from the identical empty register
    file, and may therefore share one :class:`LaneState`."""
    data = cell.to_json()
    data.pop("seed", None)
    scheduler = dict(data.get("scheduler") or {})
    scheduler.pop("seed", None)
    data["scheduler"] = scheduler
    return json.dumps(data, sort_keys=True, default=repr)


def run_cells_compiled(
    jobs: Sequence[tuple[int, object]],
    *,
    strict_traces: bool,
    record_result: Callable[[int, object], None],
    chunk: int = CHUNK,
) -> None:
    """Run ``jobs`` — ``(index, CellSpec)`` pairs — through compiled
    lanes, delivering one :class:`~repro.chaos.campaign.CellRecord` per
    cell via ``record_result``.

    Failure containment matches the serial interpreted path: a cell
    whose construction or execution raises is recorded with outcome
    ``"error"`` and the sweep continues.
    """
    from ..chaos import campaign as _campaign
    from ..chaos.registry import build_scheduler

    lanes: list[list] = []  # [index, cell, task, run]
    groups: dict[str, LaneState] = {}
    for index, cell in jobs:
        try:
            task, system, invalid = _campaign._prepare_cell(cell)
            if invalid is not None:
                record_result(index, invalid)
                continue
            shape = lane_shape_key(cell)
            state = groups.get(shape)
            if state is None:
                state = groups[shape] = LaneState()
            run = CompiledRun(
                system,
                build_scheduler(cell.scheduler),
                max_steps=cell.max_steps,
                # Classification only reads the trace under strict mode
                # (lint trace rules); plain lanes run untraced so the
                # compiled step functions skip event materialization.
                trace=strict_traces,
                lane_state=state,
            )
        except Exception as exc:  # noqa: BLE001 - triage, don't abort
            record_result(
                index,
                _campaign.CellRecord(
                    cell,
                    _campaign.OUTCOME_ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                ),
            )
            continue
        lanes.append([index, cell, task, run])

    while lanes:
        still_running: list[list] = []
        for lane in lanes:
            index, cell, task, run = lane
            try:
                if not run.advance(chunk):
                    still_running.append(lane)
                    continue
                record = _campaign._classify_record(
                    cell, task, run.result(), strict_traces=strict_traces
                )
            except Exception as exc:  # noqa: BLE001 - triage
                record = _campaign.CellRecord(
                    cell,
                    _campaign.OUTCOME_ERROR,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            record_result(index, record)
        lanes = still_running
