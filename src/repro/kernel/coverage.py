"""Compiled-coverage report: which declared automata compile, which
are reached only as inlined subroutines, and which still fall back.

``repro kernel --coverage`` renders the per-automaton table;
``--coverage --check`` compares it against the committed manifest
(:data:`MANIFEST`, ``KERNEL_COVERAGE.json`` at the repo root) and fails
if the compiled set *shrank* — an automaton that used to compile (or
inline) now falls back.  New automata may appear freely; refresh the
manifest with ``--coverage --write`` after deliberate compiler changes.

Statuses:

* ``compiled`` — the automaton itself lowers to a flat step program;
* ``inlined`` — not independently compilable (e.g. a multi-argument
  subroutine, which is not an automaton factory), but statically
  inlined into at least one compiled caller via ``yield from`` — it
  never runs on the interpreter either;
* ``fallback`` — executes on the interpreter fallback path.

The manifest records only names and statuses (no content hashes —
those churn with every codegen tweak and would make the check
meaningless noise).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .compiler import COMPILER_TAG, UnsupportedAutomaton

__all__ = [
    "MANIFEST",
    "CoverageRow",
    "coverage_rows",
    "render_coverage",
    "check_manifest",
    "write_manifest",
]

#: Repo-root manifest file name committed next to ``pyproject.toml``.
MANIFEST = "KERNEL_COVERAGE.json"

_RANK = {"compiled": 2, "inlined": 1, "fallback": 0}


@dataclass(frozen=True)
class CoverageRow:
    name: str  # "module.automaton" from LINT_SCHEMAS
    status: str  # "compiled" | "inlined" | "fallback"
    detail: str  # sites / inliners / fallback reason


def coverage_rows() -> list[CoverageRow]:
    """One row per declared schema automaton, cache warmed first."""
    from . import cached_programs, iter_schema_programs, warm_cache

    warm_cache()
    inlined_into: dict[str, list[str]] = {}
    for program in cached_programs():
        root = program.qualname.split(".<locals>.")[0]
        caller = f"{program.module.rsplit('.', 1)[-1]}.{root}"
        for sub in program.inlined:
            inlined_into.setdefault(sub, []).append(caller)

    rows: list[CoverageRow] = []
    for module, name, program in iter_schema_programs():
        full = f"repro.algorithms.{module}.{name}"
        if not isinstance(program, UnsupportedAutomaton):
            detail = f"{program.n_sites} sites"
            if program.inlined:
                short = sorted(
                    sub.rsplit(".", 1)[-1] for sub in program.inlined
                )
                detail += f", inlines {', '.join(short)}"
            rows.append(CoverageRow(f"{module}.{name}", "compiled", detail))
            continue
        callers = sorted(
            set(
                caller
                for sub, by in inlined_into.items()
                if sub == full or sub.endswith(f".{name}")
                for caller in by
            )
        )
        if callers:
            rows.append(
                CoverageRow(
                    f"{module}.{name}",
                    "inlined",
                    f"into {', '.join(callers)}",
                )
            )
        else:
            rows.append(
                CoverageRow(f"{module}.{name}", "fallback", str(program))
            )
    return rows


def render_coverage(rows: list[CoverageRow]) -> str:
    width = max(len(row.name) for row in rows) + 2
    lines = [
        f"{row.name:{width}} {row.status:9} {row.detail}" for row in rows
    ]
    counts = {status: 0 for status in _RANK}
    for row in rows:
        counts[row.status] += 1
    lines.append(
        f"-- {counts['compiled']} compiled, {counts['inlined']} inlined, "
        f"{counts['fallback']} fallback (compiler {COMPILER_TAG})"
    )
    return "\n".join(lines)


def _manifest_path(root: str | Path | None = None) -> Path:
    if root is not None:
        return Path(root) / MANIFEST
    # The repo root: three levels above src/repro/kernel/coverage.py.
    return Path(__file__).resolve().parents[3] / MANIFEST


def write_manifest(
    rows: list[CoverageRow], root: str | Path | None = None
) -> Path:
    path = _manifest_path(root)
    payload = {
        "compiler": COMPILER_TAG,
        "automata": {row.name: row.status for row in rows},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def check_manifest(
    rows: list[CoverageRow], root: str | Path | None = None
) -> list[str]:
    """Compare ``rows`` against the committed manifest; return problem
    strings for every automaton whose coverage *regressed* (compiled or
    inlined before, worse now, or vanished entirely).  New automata and
    upgrades pass; refresh the manifest with ``--coverage --write``."""
    path = _manifest_path(root)
    if not path.exists():
        return [f"coverage manifest missing: {path}"]
    recorded = json.loads(path.read_text(encoding="utf-8"))["automata"]
    current = {row.name: row.status for row in rows}
    problems: list[str] = []
    for name, status in sorted(recorded.items()):
        now = current.get(name)
        if now is None:
            problems.append(
                f"{name}: recorded {status!r} but no longer declared "
                f"(schema removed? update {MANIFEST})"
            )
        elif _RANK[now] < _RANK[status]:
            problems.append(
                f"{name}: coverage regressed {status!r} -> {now!r}"
            )
    return problems
