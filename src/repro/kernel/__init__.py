"""Compiled execution kernel: schema-to-Python codegen + batched lanes.

The kernel lowers automaton generators into flat step functions
(:mod:`.compiler`), drives whole systems through them with exact
interpreter semantics (:mod:`.engine`), batches campaign cells into
lockstep lanes (:mod:`.lanes`), and proves equivalence against the
interpreter (:mod:`.differential`).  See ``docs/performance.md``
("Compiled execution kernel") for the architecture.
"""

from __future__ import annotations

from typing import Iterator

from .compiler import (
    CompiledProgram,
    OpSite,
    UnsupportedAutomaton,
    cached_programs,
    clear_cache,
    compile_automaton,
    compiled_source,
)
from .engine import CompiledRun, LaneState, execute_compiled
from .lanes import run_cells_compiled

__all__ = [
    "CompiledProgram",
    "OpSite",
    "UnsupportedAutomaton",
    "CompiledRun",
    "LaneState",
    "execute_compiled",
    "compile_automaton",
    "compiled_source",
    "cached_programs",
    "clear_cache",
    "run_cells_compiled",
    "dump_source",
    "dump_all",
    "warm_cache",
    "iter_schema_programs",
]


def warm_cache() -> int:
    """Compile every automaton of the differential catalog's specimen
    systems (without running them), so the cache — and therefore
    ``dump_source``/``dump_all`` — reflects what a differential sweep
    would execute.  Returns the number of compiled programs cached."""
    from .differential import all_cases

    for case in all_cases(smoke=True):
        system, _scheduler = case.build()
        for factory in (*system.c_factories, *system.s_factories):
            try:
                compile_automaton(factory)
            except UnsupportedAutomaton:
                pass
    return len(cached_programs())


def iter_schema_programs() -> Iterator[tuple[str, str, object]]:
    """Yield ``(module_name, automaton_name, program_or_error)`` for
    every automaton declared in :data:`repro.algorithms.LINT_SCHEMAS`.

    A declared name whose factory was already compiled (any closure it
    produced shares one cached program) yields that cached program;
    otherwise compilation of the declared object itself is attempted,
    and the resulting :class:`UnsupportedAutomaton` is yielded for
    factory-of-factory declarations that were never instantiated — call
    :func:`warm_cache` first for full coverage.
    """
    import importlib

    from .. import algorithms

    by_root: dict[tuple[str, str], CompiledProgram] = {}
    for program in cached_programs():
        module = program.module.rsplit(".", 1)[-1]
        root = program.qualname.split(".<locals>.")[0]
        by_root.setdefault((module, root), program)

    for module_name, schema in sorted(algorithms.LINT_SCHEMAS.items()):
        module = importlib.import_module(
            f"repro.algorithms.{module_name}"
        )
        for name in sorted(schema.checked_functions):
            cached = by_root.get((module_name, name.split(".")[0]))
            if cached is not None:
                yield module_name, name, cached
                continue
            obj: object = module
            for part in name.split("."):
                obj = getattr(obj, part, None)
                if obj is None:
                    break
            if obj is None:
                continue
            try:
                yield module_name, name, compile_automaton(obj)
            except UnsupportedAutomaton as exc:
                yield module_name, name, exc


def dump_source(name: str) -> str:
    """Human-readable dump of generated source for ``name``.

    ``name`` selects automata by ``module``, ``module.automaton``, or a
    bare automaton name; compiled cache entries (closures instantiated
    by factories) are searched too, so post-run dumps show exactly what
    executed.  Each program is prefixed with its content hash.
    """
    wanted = name.strip()
    sections: list[str] = []
    seen: set[str] = set()

    def emit(module: str, automaton: str, program: object) -> None:
        key = f"{module}.{automaton}"
        if key in seen:
            return
        seen.add(key)
        if isinstance(program, UnsupportedAutomaton):
            sections.append(
                f"# {key}: falls back to the interpreter "
                f"({program})\n"
            )
            return
        sections.append(
            f"# {key}\n"
            f"# content-hash: sha256:{program.content_hash}\n"
            f"{program.source}"
        )

    def scan_cache() -> None:
        # Cached programs are what actually ran (or would run).
        for program in cached_programs():
            module = program.module.rsplit(".", 1)[-1]
            root = program.qualname.split(".<locals>.")[0]
            if wanted in (module, root, f"{module}.{root}"):
                emit(module, root, program)

    scan_cache()
    if not sections:
        warm_cache()
        scan_cache()
    if not sections:
        for module_name, automaton, program in iter_schema_programs():
            if wanted in (
                module_name,
                automaton,
                f"{module_name}.{automaton}",
            ):
                emit(module_name, automaton, program)
    if not sections:
        raise KeyError(
            f"no compiled automaton matches {name!r} (try a module "
            f"name from repro.algorithms.LINT_SCHEMAS, or run a "
            f"workload first so its programs are cached)"
        )
    return "\n".join(sections)


def dump_all() -> str:
    """Every compiled program (cache warmed from the differential
    catalog first), plus the declared automata that fall back — the
    generated-source artifact CI uploads."""
    warm_cache()
    sections: list[str] = []
    for program in sorted(
        cached_programs(), key=lambda p: (p.module, p.qualname)
    ):
        root = program.qualname.split(".<locals>.")[0]
        sections.append(
            f"# {program.module}.{root}\n"
            f"# content-hash: sha256:{program.content_hash}\n"
            f"{program.source}"
        )
    for module_name, automaton, program in iter_schema_programs():
        if isinstance(program, UnsupportedAutomaton):
            sections.append(
                f"# {module_name}.{automaton}: falls back to the "
                f"interpreter ({program})\n"
            )
    return "\n".join(sections)
