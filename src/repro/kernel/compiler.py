"""Schema-to-Python codegen: lower an automaton generator to a flat
step function dispatched by an integer program counter.

The interpreted executor drives each automaton as a Python generator:
every step pays a ``send`` through the generator machinery, an exact-type
dispatch over the yielded operation object, and the allocation of that
operation object itself.  This module compiles the *source* of an
automaton into a specialized closure that performs the same steps with
none of that overhead:

* each ``yield`` becomes a numbered *suspension site*; the generated
  step function resumes at the site recorded in ``_K_pc``, performs the
  pending operation inline (``_K_write(...)`` instead of constructing a
  ``Write`` and dispatching on it), binds the result, and runs the
  automaton's own code verbatim until the next site;
* control flow that contains no yield is emitted verbatim
  (``ast.unparse``), so straight-line computation runs at native Python
  speed; only yield-bearing ``if``/``while``/``for`` statements are
  split into trampoline blocks;
* operation objects are never allocated on the untraced path, and reads
  or snapshots whose result the automaton discards are eliminated
  (their effect is observationally a no-op — ``QueryFD`` and
  ``CompareAndSwap`` are always performed because they raise or write).

Equivalence discipline: anything this compiler cannot *prove* it lowers
faithfully raises :class:`UnsupportedAutomaton` and the engine falls
back to driving the generator — an automaton is either compiled exactly
or not at all, never approximately.  The accepted (documented)
deviations from generator semantics are:

* operation *arguments* are evaluated when the operation is performed
  (the process's next step) rather than when the generator constructed
  the object (its previous step).  The process is suspended in between
  and only its own locals feed the expression, so no other process can
  observe or affect the difference.
* reading a never-assigned local yields the ``_K_UNBOUND`` sentinel
  instead of ``UnboundLocalError``; correct automata never do this.
* a *statically inlined* subroutine (see below) resolves its module
  globals through the defining module's live ``__globals__`` dict, but
  a builtin it references is frozen to the builtin object unless the
  defining module shadows it at compile time; rebinding builtins after
  compilation is not tracked.

``yield from`` delegation is lowered in two tiers.  When the callee is
a statically resolvable module-level generator function, its body is
*inlined* into the caller's dispatch loop: locals are renamed with a
per-inline-site prefix, parameters become assignments evaluated in call
order, ``return expr`` plumbs through a per-frame result temp, and the
callee's module globals are read through an injected reference to its
live ``__globals__``.  Inlining recurses (``propose`` →
``collect_array``) with a call-depth guard; recursive delegation and
anything unresolvable (e.g. ``yield from agreement.resolve()`` on a
runtime-typed object) drops to the second tier: a *delegate site* that
drives the sub-iterator with the interpreter's exact PEP-380 protocol
and operation dispatch, still inside the compiled step function.
Pathological inline expansion raises :class:`UnsupportedAutomaton`.

See ``docs/performance.md`` ("Compiled execution kernel") for the
architecture overview and fallback rules.
"""

from __future__ import annotations

import ast
import builtins
import hashlib
import importlib
import inspect
import textwrap
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ProtocolError
from ..runtime import ops as _ops

__all__ = [
    "COMPILER_TAG",
    "UnsupportedAutomaton",
    "OpSite",
    "CompiledProgram",
    "compile_automaton",
    "compiled_source",
    "clear_cache",
    "cached_programs",
]

#: Version/feature tag of this compiler.  The compilation cache —
#: including *negative* entries — is keyed on ``(code, COMPILER_TAG)``,
#: so a cached "unsupported" verdict from an older compiler cannot pin
#: an automaton to the interpreter once the compiler learns new shapes.
#: Bump when the compilable subset or generated code changes.
COMPILER_TAG = "3:yield-from-inline+tree-dispatch"


class UnsupportedAutomaton(Exception):
    """The automaton lies outside the compilable subset; the engine
    must fall back to driving its generator directly."""


class _Unbound:
    """Sentinel held by automaton locals before their first assignment."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unbound>"


class _Stop:
    """Sentinel marking iterator exhaustion in lowered ``for`` loops."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<stop>"


_UNBOUND = _Unbound()
_STOP = _Stop()

#: Constructor field order per operation class (mirrors the frozen
#: dataclass definitions in :mod:`repro.runtime.ops`).
_OP_FIELDS: dict[type, tuple[str, ...]] = {
    _ops.Read: ("register",),
    _ops.Write: ("register", "value"),
    _ops.Snapshot: ("prefix",),
    _ops.QueryFD: (),
    _ops.Decide: ("value",),
    _ops.Nop: (),
    _ops.CompareAndSwap: ("register", "expected", "new"),
}

_OP_KIND: dict[type, str] = {
    _ops.Read: "read",
    _ops.Write: "write",
    _ops.Snapshot: "snapshot",
    _ops.QueryFD: "query",
    _ops.Decide: "decide",
    _ops.Nop: "nop",
    _ops.CompareAndSwap: "cas",
}

def _generic_delegate(op, ctx, mem, write, snap, query, cas, time):
    """Perform an unusual operation object yielded through a delegate
    site.  Mirrors the engine fallback's ``generic`` (and therefore
    ``Executor._perform``) exactly, including its error messages."""
    if op is None:
        raise ProtocolError(f"{ctx.pid} has no pending operation")
    if isinstance(op, _ops.QueryFD):
        return query(time)
    if isinstance(op, _ops.Read):
        return mem.get(op.register)
    if isinstance(op, _ops.Write):
        write(op.register, op.value)
        return None
    if isinstance(op, _ops.Snapshot):
        return snap(op.prefix)
    if isinstance(op, _ops.CompareAndSwap):
        return cas(op.register, op.expected, op.new)
    if isinstance(op, _ops.Nop):
        return None
    raise ProtocolError(f"{ctx.pid} yielded a non-operation: {op!r}")


#: Names injected into the generated ``_K_make`` as defaulted keyword
#: parameters, so the generated module never leaks names into (or reads
#: stale copies of) the automaton's real module globals.
_INJECTED: dict[str, Any] = {
    "_K_UNBOUND": _UNBOUND,
    "_K_STOP": _STOP,
    "_K_Read": _ops.Read,
    "_K_Write": _ops.Write,
    "_K_Snapshot": _ops.Snapshot,
    "_K_CAS": _ops.CompareAndSwap,
    "_K_Decide": _ops.Decide,
    "_K_NopT": _ops.Nop,
    "_K_QueryT": _ops.QueryFD,
    "_K_NOP": _ops.Nop(),
    "_K_QUERY": _ops.QueryFD(),
    "_K_generic": _generic_delegate,
}

#: First block id used for internal blocks (entry, loop heads, joins).
#: Suspension sites are numbered from 0 as they are discovered — with
#: inlining their total is unknown until lowering finishes — and the
#: high base keeps ``sorted(blocks)`` emitting the hot sites first.
_INTERNAL_BASE = 1 << 20

#: Maximum depth of nested static inlining; deeper chains drop to the
#: dynamic delegate tier (which handles them exactly, just slower).
_MAX_INLINE_DEPTH = 8

#: Hard cap on yield-from expansions (inline frames + delegate sites)
#: per automaton — the clean escape for pathological expansion.
_MAX_INLINE_EXPANSIONS = 128

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class OpSite:
    """One suspension site of a compiled automaton.

    ``register`` is the statically-constant register operand (or
    snapshot prefix) when the source expression is a string literal;
    ``register_prefix`` is the longest constant leading part when it is
    an f-string.  Both are ``None``/``""`` for fully dynamic operands.
    The static-footprint cross-check consumes these.

    ``kind == "delegate"`` marks a dynamic ``yield from`` site: the
    operations performed there come from a runtime sub-iterator, so the
    site's register metadata is unknown (``None``) and the engine must
    assume it may snapshot.
    """

    site: int
    kind: str
    source: str
    register: str | None = None
    register_prefix: str | None = None
    result_used: bool = True


@dataclass(frozen=True)
class CompiledProgram:
    """A compiled automaton: generated source plus its instantiator.

    ``make(ctx, rt, *freevars)`` returns ``(step, step_traced)`` — two
    closures sharing the same program state; the engine calls exactly
    one of them.  ``rt`` is the 7-tuple
    ``(mem, write, snap, query, cas, out, ev)`` of engine runtime hooks.
    """

    name: str
    qualname: str
    module: str
    n_sites: int
    sites: tuple[OpSite, ...]
    freevars: tuple[str, ...]
    source: str
    content_hash: str
    make: Callable[..., tuple[Callable[[int], int], Callable[[int], int]]]
    #: ``module.qualname`` of every statically inlined subroutine
    #: (deduplicated; the coverage report uses this to mark subroutines
    #: as compiled-via-inlining).
    inlined: tuple[str, ...] = ()


# -- AST scanning helpers -------------------------------------------------


def _scan(node: ast.AST, *, skip_loops: bool = False):
    """Own-scope descendants of ``node`` (nested function scopes — and,
    with ``skip_loops``, inner loops — excluded)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        if isinstance(n, _SCOPE_BARRIERS):
            continue
        if skip_loops and isinstance(n, (ast.While, ast.For)):
            continue
        yield n
        stack.extend(ast.iter_child_nodes(n))


def _contains_yield(node: ast.AST) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _scan(node)
    )


def _needs_lowering(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` must be split into trampoline blocks.

    A statement is emitted verbatim only when nothing inside it can
    transfer control out of the generated dispatch loop: no yield, no
    ``return``, and no ``break``/``continue`` that would bind to the
    trampoline's own ``while True`` instead of a user loop.
    """
    if _contains_yield(stmt):
        return True
    if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
        return True  # the scans below only see descendants
    if any(isinstance(n, ast.Return) for n in _scan(stmt)):
        return True
    if isinstance(stmt, (ast.While, ast.For)):
        return False  # its own breaks/continues are bound by it
    return any(
        isinstance(n, (ast.Break, ast.Continue))
        for n in _scan(stmt, skip_loops=True)
    )


class _StripAnnotations(ast.NodeTransformer):
    """Rewrite ``x: T = v`` to ``x = v`` (and bare ``x: T`` to ``pass``).

    Function-body annotations are never evaluated or stored at runtime,
    but an annotated name cannot appear in the generated functions'
    ``nonlocal`` declarations — so the annotations must go.
    """

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.stmt:
        self.generic_visit(node)
        if node.value is None:
            return ast.copy_location(ast.Pass(), node)
        return ast.copy_location(
            ast.Assign(targets=[node.target], value=node.value), node
        )


def _is_effect_free(node: ast.expr) -> bool:
    """Conservatively: evaluating ``node`` has no side effects, so it
    may be skipped when the operation's result is discarded."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return True
    if isinstance(node, ast.Attribute):
        return _is_effect_free(node.value)
    if isinstance(node, ast.Subscript):
        return _is_effect_free(node.value) and _is_effect_free(node.slice)
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(_is_effect_free(e) for e in node.elts)
    if isinstance(node, ast.BinOp):
        return _is_effect_free(node.left) and _is_effect_free(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_effect_free(node.operand)
    if isinstance(node, ast.JoinedStr):
        return all(_is_effect_free(v) for v in node.values)
    if isinstance(node, ast.FormattedValue):
        return _is_effect_free(node.value)
    if isinstance(node, ast.IfExp):
        return (
            _is_effect_free(node.test)
            and _is_effect_free(node.body)
            and _is_effect_free(node.orelse)
        )
    return False


def _const_register(node: ast.expr) -> tuple[str | None, str | None]:
    """``(exact, prefix)`` statically known about a register operand."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, None
    if isinstance(node, ast.JoinedStr):
        first = node.values[0] if node.values else None
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return None, first.value
        return None, ""
    return None, ""


# -- static name resolution ----------------------------------------------


class _Resolver:
    """Resolves operation-constructor expressions against the
    automaton's *static* environment: module globals, builtins, and
    import statements inside the function body whose bound names are
    never reassigned."""

    def __init__(self, fn: Callable, local_names: set[str]) -> None:
        self._globals = fn.__globals__
        self._locals = set(local_names)
        self._static_locals = {}
        self._package = fn.__globals__.get("__package__") or ""
        #: injected name -> module ``__globals__`` dict; inlined bodies
        #: read callee-module globals as ``_K_mN['name']`` subscripts,
        #: which resolve statically through this table.
        self._dicts: dict[str, dict] = {}

    def register_dict(self, name: str, mapping: dict) -> None:
        self._dicts[name] = mapping

    def learn_imports(self, fnode: ast.AST) -> None:
        assigned: set[str] = set()
        imports: list[tuple[str, tuple]] = []
        for n in _scan(fnode):
            if isinstance(n, ast.ImportFrom):
                for alias in n.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    imports.append(
                        (bound, (n.module or "", n.level, alias.name))
                    )
            elif isinstance(n, ast.Import):
                for alias in n.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    imports.append((bound, (alias.name, 0, None)))
            elif isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                assigned.add(n.id)
        for bound, (module, level, attr) in imports:
            if bound in assigned:
                continue
            try:
                target = importlib.import_module(
                    "." * level + module,
                    package=self._package if level else None,
                )
                self._static_locals[bound] = (
                    target if attr is None else getattr(target, attr)
                )
            except Exception:  # noqa: BLE001 - stays dynamic
                continue

    def resolve(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Name):
            name = node.id
            if name in self._static_locals:
                return self._static_locals[name]
            if name in self._locals:
                return None  # dynamic: bound at run time
            if name in self._globals:
                return self._globals[name]
            return getattr(builtins, name, None)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return getattr(base, node.attr, None)
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in self._dicts
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            return self._dicts[node.value.id].get(node.slice.value)
        return None


def _normalize_op_args(
    call: ast.Call, op_cls: type
) -> list[ast.expr]:
    """Map a constructor call's arguments onto the op's field order."""
    fields = _OP_FIELDS[op_cls]
    if any(isinstance(a, ast.Starred) for a in call.args):
        raise UnsupportedAutomaton(f"*args in {op_cls.__name__}(...)")
    if any(kw.arg is None for kw in call.keywords):
        raise UnsupportedAutomaton(f"**kwargs in {op_cls.__name__}(...)")
    slots: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if i >= len(fields):
            raise UnsupportedAutomaton(
                f"too many arguments to {op_cls.__name__}(...)"
            )
        slots[fields[i]] = arg
    for kw in call.keywords:
        if kw.arg not in fields or kw.arg in slots:
            raise UnsupportedAutomaton(
                f"bad keyword {kw.arg!r} to {op_cls.__name__}(...)"
            )
        slots[kw.arg] = kw.value
    if set(slots) != set(fields):
        raise UnsupportedAutomaton(
            f"missing arguments to {op_cls.__name__}(...)"
        )
    return [slots[f] for f in fields]


# -- yield-from inlining helpers ------------------------------------------


class _Default:
    """Marks a parameter bound to its (already-evaluated) default."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class _ScopeInfo(ast.NodeVisitor):
    """Collects, over one function body, every referenced ``Name`` and
    the names bound by nested scopes (lambdas, defs, comprehension
    targets).  The inliner's rename/rewrite pass is purely textual over
    ``Name`` nodes, so any nested-scope binding that collides with a
    name it would rewrite forces the dynamic tier instead."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.nested_bound: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        self.names.add(node.id)

    def _bind_args(self, args: ast.arguments) -> None:
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.nested_bound.add(a.arg)
        if args.vararg:
            self.nested_bound.add(args.vararg.arg)
        if args.kwarg:
            self.nested_bound.add(args.kwarg.arg)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._bind_args(node.args)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.nested_bound.add(node.name)
        self._bind_args(node.args)
        for n in ast.walk(node):
            if isinstance(n, ast.Name) and isinstance(
                n.ctx, (ast.Store, ast.Del)
            ):
                self.nested_bound.add(n.id)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            for n in ast.walk(gen.target):
                if isinstance(n, ast.Name):
                    self.nested_bound.add(n.id)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def _bind_call(fn: Callable, code: Any, call: ast.Call):
    """Map a call's arguments onto the callee's parameters.

    Returns ``[(param_name, ast_node | _Default)]`` in *evaluation*
    order (explicit arguments as written, defaults after), or ``None``
    when the call cannot be bound statically — the dynamic tier then
    reproduces whatever ``TypeError`` the real call would raise.
    """
    pos = list(code.co_varnames[: code.co_argcount])
    kwonly = list(
        code.co_varnames[
            code.co_argcount : code.co_argcount + code.co_kwonlyargcount
        ]
    )
    if len(call.args) > len(pos):
        return None
    out: list[tuple[str, Any]] = []
    bound: set[str] = set()
    for name, arg in zip(pos, call.args):
        out.append((name, arg))
        bound.add(name)
    for kw in call.keywords:
        if kw.arg in bound or (kw.arg not in pos and kw.arg not in kwonly):
            return None
        out.append((kw.arg, kw.value))
        bound.add(kw.arg)
    defaults = fn.__defaults__ or ()
    for name, value in zip(pos[len(pos) - len(defaults) :], defaults):
        if name not in bound:
            out.append((name, _Default(value)))
            bound.add(name)
    kwdefaults = fn.__kwdefaults__ or {}
    for name in kwonly:
        if name not in bound:
            if name not in kwdefaults:
                return None
            out.append((name, _Default(kwdefaults[name])))
            bound.add(name)
    if set(pos) - bound:
        return None
    return out


class _InlineTransform(ast.NodeTransformer):
    """Rewrites an inlined callee body into the caller's scope: locals
    renamed with the inline-site prefix, module globals read through the
    injected ``__globals__`` reference, shadowed builtins pinned to
    injected constants, everything else (unshadowed builtins) bare."""

    def __init__(
        self,
        rename: dict[str, str],
        global_name: str | None,
        gdict: dict,
        const_map: dict[str, str],
    ) -> None:
        self._rename = rename
        self._global_name = global_name
        self._gdict = gdict
        self._const_map = const_map

    def visit_Name(self, node: ast.Name) -> ast.expr:
        new = self._rename.get(node.id)
        if new is not None:
            return ast.copy_location(ast.Name(id=new, ctx=node.ctx), node)
        if node.id in self._gdict and self._global_name is not None:
            return ast.copy_location(
                ast.Subscript(
                    value=ast.Name(id=self._global_name, ctx=ast.Load()),
                    slice=ast.Constant(value=node.id),
                    ctx=ast.Load(),
                ),
                node,
            )
        const = self._const_map.get(node.id)
        if const is not None:
            return ast.copy_location(
                ast.Name(id=const, ctx=ast.Load()), node
            )
        return node


class _CompileEnv:
    """Shared per-compilation state for both lowering passes: the name
    resolver, the automaton's parameter name, and the injected-value
    registry (callee-module ``__globals__`` dicts, default-argument
    objects, pinned builtins).  Values are interned by identity so the
    traced and untraced passes allocate identical names."""

    def __init__(self, resolver: _Resolver, param: str) -> None:
        self.resolver = resolver
        self.param = param
        self.inject: dict[str, Any] = dict(_INJECTED)
        self._mod_names: dict[int, str] = {}
        self._const_names: dict[int, str] = {}

    def module_dict_name(self, gdict: dict) -> str:
        name = self._mod_names.get(id(gdict))
        if name is None:
            name = f"_K_m{len(self._mod_names)}"
            self._mod_names[id(gdict)] = name
            self.inject[name] = gdict
            self.resolver.register_dict(name, gdict)
        return name

    def const_name(self, value: Any) -> str:
        name = self._const_names.get(id(value))
        if name is None:
            name = f"_K_v{len(self._const_names)}"
            self._const_names[id(value)] = name
            self.inject[name] = value
        return name


# -- lowering -------------------------------------------------------------


class _Lowerer:
    """Lowers one automaton body into trampoline blocks.

    Block ids: suspension sites are numbered from 0 in discovery order
    (hottest, first in the dispatch chain); the entry prologue and
    internal blocks (loop heads, joins) start at ``_INTERNAL_BASE``.
    ``_K_pc`` holds the site to resume at (``-2`` once halted).
    """

    def __init__(self, env: _CompileEnv, *, traced: bool) -> None:
        self.env = env
        self.resolver = env.resolver
        self.traced = traced
        self.entry_id = _INTERNAL_BASE
        self._next_id = _INTERNAL_BASE + 1
        self._next_temp = 0
        self.blocks: dict[int, list[str]] = {}
        self.sites: list[OpSite] = []
        self.extra_locals: list[str] = []
        self.inlined: list[str] = []
        self._cur: list[str] = []
        self._loops: list[tuple[int, int]] = []  # (head, after)
        self._frames: list[tuple[str, int]] = []  # (ret_var, exit_block)
        self._inline_stack: list[Any] = []  # callee code objects
        self._next_inline = 0
        self.blocks[self.entry_id] = self._cur

    # -- emission helpers ----------------------------------------------

    def _emit(self, line: str) -> None:
        self._cur.append(line)

    def _start(self, bid: int) -> None:
        self._cur = self.blocks.setdefault(bid, [])

    def _new_id(self) -> int:
        bid = self._next_id
        self._next_id += 1
        return bid

    def _new_temp(self) -> str:
        # Both lowering passes allocate temps in the same deterministic
        # order, so the traced and untraced bodies share declarations.
        name = f"_K_t{self._next_temp}"
        self._next_temp += 1
        self._declare(name)
        return name

    def _declare(self, name: str) -> None:
        if name not in self.extra_locals:
            self.extra_locals.append(name)

    def _goto(self, bid: int) -> None:
        self._emit(f"_K_b = {bid}")
        self._emit("continue")

    def _goto_if(self, cond: str, bid: int) -> None:
        self._emit(f"if {cond}:")
        self._emit(f"    _K_b = {bid}")
        self._emit("    continue")

    def _halt(self) -> None:
        self._emit("_K_pc = -2")
        self._emit("return 1")

    # -- statement lowering --------------------------------------------

    def lower_function(self, body: list[ast.stmt]) -> None:
        if self.lower_stmts(body):
            self._halt()
        # Unreachable-but-created blocks (e.g. the after-block of a
        # terminal ``while True``) must still parse — and must fail
        # loudly if control ever reaches one.
        for lines in self.blocks.values():
            if not lines:
                lines.append(
                    "raise RuntimeError('unreachable compiled block')"
                )

    def lower_stmts(self, stmts: list[ast.stmt]) -> bool:
        for stmt in stmts:
            if not self.lower_stmt(stmt):
                return False
        return True

    def lower_stmt(self, stmt: ast.stmt) -> bool:
        if not _needs_lowering(stmt):
            if isinstance(stmt, (ast.Global, ast.Nonlocal)):
                raise UnsupportedAutomaton(
                    "global/nonlocal inside an automaton"
                )
            for line in ast.unparse(stmt).splitlines():
                self._emit(line)
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield):
            return self.lower_yield(stmt.value, None)
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.YieldFrom
        ):
            return self.lower_yield_from(stmt.value, None)
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.value, ast.Yield)
        ):
            return self.lower_yield(
                stmt.value, ast.unparse(stmt.targets[0])
            )
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.value, ast.YieldFrom)
        ):
            return self.lower_yield_from(
                stmt.value, ast.unparse(stmt.targets[0])
            )
        if isinstance(stmt, ast.While):
            return self.lower_while(stmt)
        if isinstance(stmt, ast.For):
            return self.lower_for(stmt)
        if isinstance(stmt, ast.If):
            return self.lower_if(stmt)
        if isinstance(stmt, ast.Return):
            if self._frames:
                # Inside an inline frame ``return expr`` becomes the
                # frame's result: assign the ret temp, jump to the
                # frame's continuation.
                ret, exit_id = self._frames[-1]
                value = (
                    "None"
                    if stmt.value is None
                    else ast.unparse(stmt.value)
                )
                self._emit(f"{ret} = {value}")
                self._goto(exit_id)
                return False
            if stmt.value is not None and not (
                isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None
            ):
                raise UnsupportedAutomaton("return with a value")
            self._halt()
            return False
        if isinstance(stmt, ast.Break):
            if not self._loops:
                raise UnsupportedAutomaton("break outside loop")
            self._goto(self._loops[-1][1])
            return False
        if isinstance(stmt, ast.Continue):
            if not self._loops:
                raise UnsupportedAutomaton("continue outside loop")
            self._goto(self._loops[-1][0])
            return False
        raise UnsupportedAutomaton(
            f"cannot lower a yield inside {type(stmt).__name__}"
        )

    def lower_while(self, stmt: ast.While) -> bool:
        head = self._new_id()
        after = self._new_id()
        exit_target = self._new_id() if stmt.orelse else after
        self._goto(head)
        self._start(head)
        test = stmt.test
        if not (isinstance(test, ast.Constant) and test.value):
            self._goto_if(f"not ({ast.unparse(test)})", exit_target)
        self._loops.append((head, after))
        reachable = self.lower_stmts(stmt.body)
        self._loops.pop()
        if reachable:
            self._goto(head)
        if stmt.orelse:
            self._start(exit_target)
            if self.lower_stmts(stmt.orelse):
                self._goto(after)
        self._start(after)
        return True

    def lower_for(self, stmt: ast.For) -> bool:
        iterator = self._new_temp()
        current = self._new_temp()
        self._emit(f"{iterator} = iter({ast.unparse(stmt.iter)})")
        head = self._new_id()
        after = self._new_id()
        exit_target = self._new_id() if stmt.orelse else after
        self._goto(head)
        self._start(head)
        self._emit(f"{current} = next({iterator}, _K_STOP)")
        self._goto_if(f"{current} is _K_STOP", exit_target)
        self._emit(f"{ast.unparse(stmt.target)} = {current}")
        self._loops.append((head, after))
        reachable = self.lower_stmts(stmt.body)
        self._loops.pop()
        if reachable:
            self._goto(head)
        if stmt.orelse:
            self._start(exit_target)
            if self.lower_stmts(stmt.orelse):
                self._goto(after)
        self._start(after)
        return True

    def lower_if(self, stmt: ast.If) -> bool:
        then_id = self._new_id()
        after = self._new_id()
        self._goto_if(f"{ast.unparse(stmt.test)}", then_id)
        if self.lower_stmts(stmt.orelse):
            self._goto(after)
        self._start(then_id)
        if self.lower_stmts(stmt.body):
            self._goto(after)
        self._start(after)
        return True

    # -- yield lowering -------------------------------------------------

    def lower_yield(self, node: ast.Yield, target: str | None) -> bool:
        value = node.value
        if value is None:
            raise UnsupportedAutomaton("bare yield")
        if not isinstance(value, ast.Call):
            raise UnsupportedAutomaton(
                "yield of a non-constructor expression"
            )
        op_cls = self.resolver.resolve(value.func)
        if op_cls not in _OP_FIELDS:
            raise UnsupportedAutomaton(
                f"cannot statically resolve operation "
                f"{ast.unparse(value.func)!r}"
            )
        args = _normalize_op_args(value, op_cls)
        site = len(self.sites)
        kind = _OP_KIND[op_cls]
        reg_node = args[0] if kind in ("read", "write", "snapshot", "cas") else None
        exact, prefix = (
            _const_register(reg_node) if reg_node is not None else (None, None)
        )
        self.sites.append(
            OpSite(
                site=site,
                kind=kind,
                source=ast.unparse(value),
                register=exact,
                register_prefix=prefix,
                result_used=target is not None,
            )
        )
        # Suspend: the *next* step performs this operation.
        self._emit(f"_K_pc = {site}")
        self._emit("return 0")
        self._start(site)
        srcs = [ast.unparse(a) for a in args]
        if self.traced:
            return self._emit_traced_effect(kind, srcs, target)
        return self._emit_effect(kind, args, srcs, target)

    def _emit_effect(
        self,
        kind: str,
        args: list[ast.expr],
        srcs: list[str],
        target: str | None,
    ) -> bool:
        e = self._emit
        if kind == "write":
            e(f"_K_write({srcs[0]}, {srcs[1]})")
            if target:
                e(f"{target} = None")
        elif kind == "read":
            if target:
                e(f"{target} = _K_mem.get({srcs[0]})")
            elif not _is_effect_free(args[0]):
                e(f"{srcs[0]}")
        elif kind == "snapshot":
            if target:
                e(f"{target} = _K_snap({srcs[0]})")
            elif not _is_effect_free(args[0]):
                e(f"{srcs[0]}")
        elif kind == "nop":
            if target:
                e(f"{target} = None")
        elif kind == "query":
            # Always performed: the engine's query hook enforces the
            # C-processes-cannot-query rule even when the result is
            # discarded.
            e(f"{target or '_K_r'} = _K_query(_K_time)")
        elif kind == "cas":
            e(f"{target or '_K_r'} = _K_cas({srcs[0]}, {srcs[1]}, {srcs[2]})")
        else:  # decide
            e(f"_K_out[0] = {srcs[0]}")
            e("_K_pc = -2")
            e("return 2")
            return False
        return True

    def _emit_traced_effect(
        self, kind: str, srcs: list[str], target: str | None
    ) -> bool:
        e = self._emit
        if kind == "write":
            e(f"_K_a0 = {srcs[0]}")
            e(f"_K_a1 = {srcs[1]}")
            e("_K_write(_K_a0, _K_a1)")
            e("_K_ev[0] = _K_Write(_K_a0, _K_a1)")
            e("_K_ev[1] = None")
            if target:
                e(f"{target} = None")
        elif kind == "read":
            e(f"_K_a0 = {srcs[0]}")
            e("_K_r = _K_mem.get(_K_a0)")
            e("_K_ev[0] = _K_Read(_K_a0)")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        elif kind == "snapshot":
            e(f"_K_a0 = {srcs[0]}")
            e("_K_r = _K_snap(_K_a0)")
            e("_K_ev[0] = _K_Snapshot(_K_a0)")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        elif kind == "nop":
            e("_K_ev[0] = _K_NOP")
            e("_K_ev[1] = None")
            if target:
                e(f"{target} = None")
        elif kind == "query":
            e("_K_r = _K_query(_K_time)")
            e("_K_ev[0] = _K_QUERY")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        elif kind == "cas":
            e(f"_K_a0 = {srcs[0]}")
            e(f"_K_a1 = {srcs[1]}")
            e(f"_K_a2 = {srcs[2]}")
            e("_K_r = _K_cas(_K_a0, _K_a1, _K_a2)")
            e("_K_ev[0] = _K_CAS(_K_a0, _K_a1, _K_a2)")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        else:  # decide
            e(f"_K_a0 = {srcs[0]}")
            e("_K_ev[0] = _K_Decide(_K_a0)")
            e("_K_ev[1] = None")
            e("_K_out[0] = _K_a0")
            e("_K_pc = -2")
            e("return 2")
            return False
        return True

    # -- yield-from lowering --------------------------------------------

    def lower_yield_from(
        self, node: ast.YieldFrom, target: str | None
    ) -> bool:
        if self._next_inline >= _MAX_INLINE_EXPANSIONS:
            raise UnsupportedAutomaton(
                "yield-from expansion exceeds the inline budget"
            )
        plan = self._inline_plan(node)
        if plan is not None:
            return self._lower_inline(plan, target)
        return self._lower_delegate(node, target)

    def _inline_plan(self, node: ast.YieldFrom):
        """Statically analyze a ``yield from`` callee; ``None`` routes
        the site to the dynamic delegate tier."""
        call = node.value
        if not isinstance(call, ast.Call):
            return None
        fn = self.resolver.resolve(call.func)
        code = getattr(fn, "__code__", None)
        if (
            fn is None
            or code is None
            or not inspect.isgeneratorfunction(fn)
            or code.co_freevars
            or code.co_flags & (inspect.CO_VARARGS | inspect.CO_VARKEYWORDS)
        ):
            return None
        if any(c is code for c in self._inline_stack):
            return None  # recursive delegation: drive it dynamically
        if len(self._inline_stack) >= _MAX_INLINE_DEPTH:
            return None
        if any(isinstance(a, ast.Starred) for a in call.args):
            return None
        if any(kw.arg is None for kw in call.keywords):
            return None
        binding = _bind_call(fn, code, call)
        if binding is None:
            return None
        try:
            fnode = _function_node(fn)
        except UnsupportedAutomaton:
            return None
        fnode = ast.fix_missing_locations(_StripAnnotations().visit(fnode))
        if any(
            isinstance(
                n, (ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal)
            )
            for n in _scan(fnode)
        ):
            return None
        local_names = {*code.co_varnames, *code.co_cellvars}
        info = _ScopeInfo()
        for stmt in fnode.body:
            info.visit(stmt)
        gdict = fn.__globals__
        if info.nested_bound & local_names or info.nested_bound & set(
            gdict
        ):
            return None  # textual rename/rewrite would capture
        global_refs = info.names - local_names - info.nested_bound
        caller_ns = self.resolver._globals
        const_map: dict[str, str] = {}
        mod_refs = False
        for name in sorted(global_refs):
            if name in gdict:
                mod_refs = True
            elif hasattr(builtins, name):
                if name in caller_ns:
                    # The caller's module shadows this builtin: pin the
                    # real builtin as an injected constant.
                    const_map[name] = self.env.const_name(
                        getattr(builtins, name)
                    )
            else:
                return None  # would NameError; keep generator semantics
        return (fn, code, fnode, binding, local_names, gdict, mod_refs, const_map)

    def _lower_inline(self, plan, target: str | None) -> bool:
        fn, code, fnode, binding, local_names, gdict, mod_refs, const_map = plan
        seq = self._next_inline
        self._next_inline += 1
        prefix = f"_K_i{seq}_"
        self.inlined.append(f"{fn.__module__}.{fn.__qualname__}")
        # Deterministic declaration order: varnames, then cellvars.
        for name in dict.fromkeys((*code.co_varnames, *code.co_cellvars)):
            self._declare(prefix + name)
        ret = f"{prefix}ret"
        self._declare(ret)
        rename = {name: prefix + name for name in local_names}
        gname = self.env.module_dict_name(gdict) if mod_refs else None
        transform = _InlineTransform(rename, gname, gdict, const_map)
        body = [
            ast.fix_missing_locations(transform.visit(stmt))
            for stmt in fnode.body
        ]
        # Bind parameters in evaluation order (argument expressions are
        # caller-scope; defaults are injected already-evaluated objects).
        for name, item in binding:
            src = (
                self.env.const_name(item.value)
                if isinstance(item, _Default)
                else ast.unparse(item)
            )
            self._emit(f"{prefix}{name} = {src}")
        exit_id = self._new_id()
        self._frames.append((ret, exit_id))
        self._inline_stack.append(code)
        reachable = self.lower_stmts(body)
        self._inline_stack.pop()
        self._frames.pop()
        if reachable:
            self._emit(f"{ret} = None")
            self._goto(exit_id)
        self._start(exit_id)
        if target:
            self._emit(f"{target} = {ret}")
        return True

    def _lower_delegate(
        self, node: ast.YieldFrom, target: str | None
    ) -> bool:
        """One reusable suspension site driving a runtime sub-iterator
        with the interpreter's exact PEP-380 protocol."""
        seq = self._next_inline
        self._next_inline += 1
        gen = f"_K_g{seq}"
        pend = f"_K_p{seq}"
        self._declare(gen)
        self._declare(pend)
        site = len(self.sites)
        self.sites.append(
            OpSite(
                site=site,
                kind="delegate",
                source=ast.unparse(node),
                register=None,
                register_prefix=None,
                result_used=target is not None,
            )
        )
        after = self._new_id()
        e = self._emit
        e(f"{gen} = iter({ast.unparse(node.value)})")
        e("try:")
        e(f"    {pend} = next({gen})")
        e("except StopIteration as _K_e:")
        e(f"    {gen} = None")
        if target:
            e(f"    {target} = _K_e.value")
        e(f"    _K_b = {after}")
        e("    continue")
        e(f"_K_pc = {site}")
        e("return 0")
        self._start(site)
        self._emit_delegate_perform(gen, pend, target, after)
        self._start(after)
        return True

    def _emit_delegate_perform(
        self, gen: str, pend: str, target: str | None, after: int
    ) -> None:
        """The delegate site body: exact-type dispatch mirroring the
        engine fallback, then advance the sub-iterator."""
        e = self._emit
        ctx = self.env.param
        e(f"_K_o = type({pend})")
        e("if _K_o is _K_Write:")
        e(f"    _K_write({pend}.register, {pend}.value)")
        e("    _K_r = None")
        e("elif _K_o is _K_Read:")
        e(f"    _K_r = _K_mem.get({pend}.register)")
        e("elif _K_o is _K_Snapshot:")
        e(f"    _K_r = _K_snap({pend}.prefix)")
        e("elif _K_o is _K_NopT:")
        e("    _K_r = None")
        e("elif _K_o is _K_QueryT:")
        e("    _K_r = _K_query(_K_time)")
        e("elif _K_o is _K_CAS:")
        e(
            f"    _K_r = _K_cas({pend}.register, {pend}.expected, "
            f"{pend}.new)"
        )
        e("elif _K_o is _K_Decide:")
        if self.traced:
            e(f"    _K_ev[0] = {pend}")
            e("    _K_ev[1] = None")
        e(f"    _K_out[0] = {pend}.value")
        e("    _K_pc = -2")
        e("    return 2")
        e("else:")
        e(
            f"    _K_r = _K_generic({pend}, {ctx}, _K_mem, _K_write, "
            f"_K_snap, _K_query, _K_cas, _K_time)"
        )
        if self.traced:
            e(f"_K_ev[0] = {pend}")
            e("_K_ev[1] = _K_r")
        e("try:")
        e(
            f"    {pend} = next({gen}) if _K_r is None "
            f"else {gen}.send(_K_r)"
        )
        e("except StopIteration as _K_e:")
        e(f"    {gen} = None")
        if target:
            e(f"    {target} = _K_e.value")
        e(f"    _K_b = {after}")
        e("    continue")
        e("return 0")


# -- compilation ----------------------------------------------------------


def _function_node(fn: Callable) -> ast.FunctionDef:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise UnsupportedAutomaton(f"source unavailable: {exc}") from exc
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - defensive
        raise UnsupportedAutomaton(f"unparseable source: {exc}") from exc
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        raise UnsupportedAutomaton("not a plain function definition")
    fnode = tree.body[0]
    if fnode.decorator_list:
        raise UnsupportedAutomaton("decorated automaton")
    return fnode


def _render(
    fnode: ast.FunctionDef,
    param: str,
    freevars: tuple[str, ...],
    declared: list[str],
    untraced: _Lowerer,
    traced: _Lowerer,
    inject_names: list[str],
) -> str:
    inject = ", ".join(f"{name}={name}" for name in inject_names)
    fv = "".join(f", {name}" for name in freevars)
    lines = [
        f"def _K_make({param}, _K_rt{fv}, *, {inject}):",
        "    (_K_mem, _K_write, _K_snap, _K_query, _K_cas, _K_out, _K_ev)"
        " = _K_rt",
    ]
    for name in declared:
        lines.append(f"    {name} = _K_UNBOUND")
    lines.append(f"    _K_pc = {untraced.entry_id}")
    nl = ", ".join(["_K_pc", param] + declared)
    # The runtime helpers are bound once in ``_K_make`` and never
    # reassigned; passing them as positional defaults turns every access
    # in the step body into a fast-local load instead of a cell deref.
    rt_defaults = ", ".join(
        f"{name}={name}"
        for name in (
            "_K_mem", "_K_write", "_K_snap", "_K_query",
            "_K_cas", "_K_out", "_K_ev",
        )
    )
    for fname, low in (("_K_step", untraced), ("_K_step_traced", traced)):
        lines.append(f"    def {fname}(_K_time, {rt_defaults}):")
        lines.append(f"        nonlocal {nl}")
        lines.append("        _K_b = _K_pc")
        lines.append("        while True:")
        _render_dispatch(lines, low.blocks, sorted(low.blocks), "            ")
    lines.append("    return (_K_step, _K_step_traced)")
    return "\n".join(lines) + "\n"


# Below this width a linear if/elif run beats the comparison overhead of
# further halving; 4 keeps leaf runs at 2-4 arms.
_DISPATCH_LEAF = 4


def _render_dispatch(
    lines: list[str],
    blocks: dict[int, list[str]],
    ids: list[int],
    indent: str,
) -> None:
    """Emit the block dispatch as a binary decision tree.

    A flat ``elif`` chain over every block id costs O(blocks) integer
    comparisons per dispatch — and every intra-step ``continue`` pays it
    again from the top, which dominated campaign profiles for automata
    with dozens of blocks.  Halving on ``<`` keeps each dispatch at
    O(log blocks) while the per-block bodies stay byte-for-byte what the
    lowerer produced.
    """
    if len(ids) <= _DISPATCH_LEAF:
        for j, bid in enumerate(ids):
            kw = "if" if j == 0 else "elif"
            lines.append(f"{indent}{kw} _K_b == {bid}:")
            for line in blocks[bid]:
                lines.append(f"{indent}    {line}")
        lines.append(f"{indent}else:")
        lines.append(
            f"{indent}    raise RuntimeError("
            "f'compiled automaton stepped at invalid pc {_K_b}')"
        )
        return
    mid = len(ids) // 2
    lines.append(f"{indent}if _K_b < {ids[mid]}:")
    _render_dispatch(lines, blocks, ids[:mid], indent + "    ")
    lines.append(f"{indent}else:")
    _render_dispatch(lines, blocks, ids[mid:], indent + "    ")


def _compile(fn: Callable) -> CompiledProgram:
    code = fn.__code__
    if not inspect.isgeneratorfunction(fn):
        raise UnsupportedAutomaton("not a generator function")
    if (
        code.co_argcount != 1
        or code.co_kwonlyargcount
        or code.co_flags & (inspect.CO_VARARGS | inspect.CO_VARKEYWORDS)
    ):
        raise UnsupportedAutomaton(
            "automaton signature is not a single positional (ctx)"
        )
    fnode = _function_node(fn)
    fnode = ast.fix_missing_locations(_StripAnnotations().visit(fnode))
    param = code.co_varnames[0]
    user_locals = [
        name
        for name in (*code.co_varnames[1:], *code.co_cellvars)
        if name != param
    ]
    # de-dup while preserving order (a cellvar can also be a varname)
    seen: set[str] = set()
    user_locals = [
        n for n in user_locals if not (n in seen or seen.add(n))
    ]
    freevars = code.co_freevars
    for name in (param, *user_locals, *freevars):
        if name.startswith("_K_"):
            raise UnsupportedAutomaton(f"reserved name {name!r} in automaton")
    resolver = _Resolver(
        fn, {param, *user_locals, *freevars}
    )
    resolver.learn_imports(fnode)
    env = _CompileEnv(resolver, param)

    untraced = _Lowerer(env, traced=False)
    untraced.lower_function(fnode.body)
    traced = _Lowerer(env, traced=True)
    traced.lower_function(fnode.body)
    if (
        untraced.sites != traced.sites
        or untraced.extra_locals != traced.extra_locals
        or untraced.inlined != traced.inlined
    ):  # pragma: no cover - invariant
        raise UnsupportedAutomaton("traced/untraced lowering diverged")
    n_sites = len(untraced.sites)
    inlined = tuple(dict.fromkeys(untraced.inlined))
    declared = user_locals + untraced.extra_locals
    inject_names = list(env.inject)
    body = _render(
        fnode, param, freevars, declared, untraced, traced, inject_names
    )
    header = (
        f"# compiled automaton: {fn.__module__}.{fn.__qualname__}\n"
        f"# sites: {n_sites}; freevars: {', '.join(freevars) or '-'}\n"
    )
    if inlined:
        header += f"# inlined: {', '.join(inlined)}\n"
    source = header + body
    digest = hashlib.sha256(source.encode()).hexdigest()

    # Execute the generated def against the automaton's *live* module
    # globals (so monkeypatching and late rebinding behave exactly as
    # they do for the generator), then remove the definition again.
    # All injected values travel as defaulted parameters.
    namespace = fn.__globals__
    for name, value in env.inject.items():
        namespace[name] = value
    try:
        exec(compile(source, f"<kernel:{fn.__qualname__}>", "exec"), namespace)
        make = namespace.pop("_K_make")
    finally:
        for name in env.inject:
            namespace.pop(name, None)
    return CompiledProgram(
        name=fn.__name__,
        qualname=fn.__qualname__,
        module=fn.__module__,
        n_sites=n_sites,
        sites=tuple(untraced.sites),
        freevars=freevars,
        source=source,
        content_hash=digest,
        make=make,
        inlined=inlined,
    )


#: Compilation cache keyed on ``(code object, COMPILER_TAG)``: every
#: closure produced by the same factory shares one program (free
#: variables are bound at ``make`` time, not compile time).  Negative
#: results are cached too, so the engine pays the unsupported-subset
#: analysis once per automaton, not once per process — and because the
#: tag participates in the key, a stale "unsupported" verdict cached by
#: an older compiler build is simply never consulted again.
_CACHE: dict[Any, CompiledProgram | UnsupportedAutomaton] = {}


def compile_automaton(fn: Callable) -> CompiledProgram:
    """Compile one automaton (factory) function, with caching.

    Raises :class:`UnsupportedAutomaton` when ``fn`` lies outside the
    compilable subset; the result (including the failure) is cached on
    ``(fn.__code__, COMPILER_TAG)``.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        raise UnsupportedAutomaton(
            f"{fn!r} is not a plain Python function"
        )
    key = (code, COMPILER_TAG)
    cached = _CACHE.get(key)
    if cached is not None:
        if isinstance(cached, UnsupportedAutomaton):
            raise cached
        return cached
    try:
        program = _compile(fn)
    except UnsupportedAutomaton as exc:
        _CACHE[key] = exc
        raise
    _CACHE[key] = program
    return program


def compiled_source(fn: Callable) -> str:
    """The generated source of ``fn``'s compiled program (compiles on
    first use)."""
    return compile_automaton(fn).source


def clear_cache() -> None:
    """Drop every cached program (tests and benchmarks use this to
    measure cold-compile costs)."""
    _CACHE.clear()


def cached_programs() -> list[CompiledProgram]:
    """Every successfully compiled program currently cached."""
    return [p for p in _CACHE.values() if isinstance(p, CompiledProgram)]
