"""Schema-to-Python codegen: lower an automaton generator to a flat
step function dispatched by an integer program counter.

The interpreted executor drives each automaton as a Python generator:
every step pays a ``send`` through the generator machinery, an exact-type
dispatch over the yielded operation object, and the allocation of that
operation object itself.  This module compiles the *source* of an
automaton into a specialized closure that performs the same steps with
none of that overhead:

* each ``yield`` becomes a numbered *suspension site*; the generated
  step function resumes at the site recorded in ``_K_pc``, performs the
  pending operation inline (``_K_write(...)`` instead of constructing a
  ``Write`` and dispatching on it), binds the result, and runs the
  automaton's own code verbatim until the next site;
* control flow that contains no yield is emitted verbatim
  (``ast.unparse``), so straight-line computation runs at native Python
  speed; only yield-bearing ``if``/``while``/``for`` statements are
  split into trampoline blocks;
* operation objects are never allocated on the untraced path, and reads
  or snapshots whose result the automaton discards are eliminated
  (their effect is observationally a no-op — ``QueryFD`` and
  ``CompareAndSwap`` are always performed because they raise or write).

Equivalence discipline: anything this compiler cannot *prove* it lowers
faithfully raises :class:`UnsupportedAutomaton` and the engine falls
back to driving the generator — an automaton is either compiled exactly
or not at all, never approximately.  The accepted (documented)
deviations from generator semantics are:

* operation *arguments* are evaluated when the operation is performed
  (the process's next step) rather than when the generator constructed
  the object (its previous step).  The process is suspended in between
  and only its own locals feed the expression, so no other process can
  observe or affect the difference.
* reading a never-assigned local yields the ``_K_UNBOUND`` sentinel
  instead of ``UnboundLocalError``; correct automata never do this.

See ``docs/performance.md`` ("Compiled execution kernel") for the
architecture overview and fallback rules.
"""

from __future__ import annotations

import ast
import builtins
import hashlib
import importlib
import inspect
import textwrap
from dataclasses import dataclass
from typing import Any, Callable

from ..runtime import ops as _ops

__all__ = [
    "UnsupportedAutomaton",
    "OpSite",
    "CompiledProgram",
    "compile_automaton",
    "compiled_source",
    "clear_cache",
    "cached_programs",
]


class UnsupportedAutomaton(Exception):
    """The automaton lies outside the compilable subset; the engine
    must fall back to driving its generator directly."""


class _Unbound:
    """Sentinel held by automaton locals before their first assignment."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unbound>"


class _Stop:
    """Sentinel marking iterator exhaustion in lowered ``for`` loops."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<stop>"


_UNBOUND = _Unbound()
_STOP = _Stop()

#: Constructor field order per operation class (mirrors the frozen
#: dataclass definitions in :mod:`repro.runtime.ops`).
_OP_FIELDS: dict[type, tuple[str, ...]] = {
    _ops.Read: ("register",),
    _ops.Write: ("register", "value"),
    _ops.Snapshot: ("prefix",),
    _ops.QueryFD: (),
    _ops.Decide: ("value",),
    _ops.Nop: (),
    _ops.CompareAndSwap: ("register", "expected", "new"),
}

_OP_KIND: dict[type, str] = {
    _ops.Read: "read",
    _ops.Write: "write",
    _ops.Snapshot: "snapshot",
    _ops.QueryFD: "query",
    _ops.Decide: "decide",
    _ops.Nop: "nop",
    _ops.CompareAndSwap: "cas",
}

#: Names injected into the generated ``_K_make`` as defaulted keyword
#: parameters, so the generated module never leaks names into (or reads
#: stale copies of) the automaton's real module globals.
_INJECTED: dict[str, Any] = {
    "_K_UNBOUND": _UNBOUND,
    "_K_STOP": _STOP,
    "_K_Read": _ops.Read,
    "_K_Write": _ops.Write,
    "_K_Snapshot": _ops.Snapshot,
    "_K_CAS": _ops.CompareAndSwap,
    "_K_Decide": _ops.Decide,
    "_K_NOP": _ops.Nop(),
    "_K_QUERY": _ops.QueryFD(),
}

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class OpSite:
    """One suspension site of a compiled automaton.

    ``register`` is the statically-constant register operand (or
    snapshot prefix) when the source expression is a string literal;
    ``register_prefix`` is the longest constant leading part when it is
    an f-string.  Both are ``None``/``""`` for fully dynamic operands.
    The static-footprint cross-check consumes these.
    """

    site: int
    kind: str
    source: str
    register: str | None = None
    register_prefix: str | None = None
    result_used: bool = True


@dataclass(frozen=True)
class CompiledProgram:
    """A compiled automaton: generated source plus its instantiator.

    ``make(ctx, rt, *freevars)`` returns ``(step, step_traced)`` — two
    closures sharing the same program state; the engine calls exactly
    one of them.  ``rt`` is the 7-tuple
    ``(mem, write, snap, query, cas, out, ev)`` of engine runtime hooks.
    """

    name: str
    qualname: str
    module: str
    n_sites: int
    sites: tuple[OpSite, ...]
    freevars: tuple[str, ...]
    source: str
    content_hash: str
    make: Callable[..., tuple[Callable[[int], int], Callable[[int], int]]]


# -- AST scanning helpers -------------------------------------------------


def _scan(node: ast.AST, *, skip_loops: bool = False):
    """Own-scope descendants of ``node`` (nested function scopes — and,
    with ``skip_loops``, inner loops — excluded)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        if isinstance(n, _SCOPE_BARRIERS):
            continue
        if skip_loops and isinstance(n, (ast.While, ast.For)):
            continue
        yield n
        stack.extend(ast.iter_child_nodes(n))


def _contains_yield(node: ast.AST) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _scan(node)
    )


def _needs_lowering(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` must be split into trampoline blocks.

    A statement is emitted verbatim only when nothing inside it can
    transfer control out of the generated dispatch loop: no yield, no
    ``return``, and no ``break``/``continue`` that would bind to the
    trampoline's own ``while True`` instead of a user loop.
    """
    if _contains_yield(stmt):
        return True
    if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
        return True  # the scans below only see descendants
    if any(isinstance(n, ast.Return) for n in _scan(stmt)):
        return True
    if isinstance(stmt, (ast.While, ast.For)):
        return False  # its own breaks/continues are bound by it
    return any(
        isinstance(n, (ast.Break, ast.Continue))
        for n in _scan(stmt, skip_loops=True)
    )


class _StripAnnotations(ast.NodeTransformer):
    """Rewrite ``x: T = v`` to ``x = v`` (and bare ``x: T`` to ``pass``).

    Function-body annotations are never evaluated or stored at runtime,
    but an annotated name cannot appear in the generated functions'
    ``nonlocal`` declarations — so the annotations must go.
    """

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.stmt:
        self.generic_visit(node)
        if node.value is None:
            return ast.copy_location(ast.Pass(), node)
        return ast.copy_location(
            ast.Assign(targets=[node.target], value=node.value), node
        )


def _is_effect_free(node: ast.expr) -> bool:
    """Conservatively: evaluating ``node`` has no side effects, so it
    may be skipped when the operation's result is discarded."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return True
    if isinstance(node, ast.Attribute):
        return _is_effect_free(node.value)
    if isinstance(node, ast.Subscript):
        return _is_effect_free(node.value) and _is_effect_free(node.slice)
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(_is_effect_free(e) for e in node.elts)
    if isinstance(node, ast.BinOp):
        return _is_effect_free(node.left) and _is_effect_free(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_effect_free(node.operand)
    if isinstance(node, ast.JoinedStr):
        return all(_is_effect_free(v) for v in node.values)
    if isinstance(node, ast.FormattedValue):
        return _is_effect_free(node.value)
    if isinstance(node, ast.IfExp):
        return (
            _is_effect_free(node.test)
            and _is_effect_free(node.body)
            and _is_effect_free(node.orelse)
        )
    return False


def _const_register(node: ast.expr) -> tuple[str | None, str | None]:
    """``(exact, prefix)`` statically known about a register operand."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, None
    if isinstance(node, ast.JoinedStr):
        first = node.values[0] if node.values else None
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return None, first.value
        return None, ""
    return None, ""


# -- static name resolution ----------------------------------------------


class _Resolver:
    """Resolves operation-constructor expressions against the
    automaton's *static* environment: module globals, builtins, and
    import statements inside the function body whose bound names are
    never reassigned."""

    def __init__(self, fn: Callable, local_names: set[str]) -> None:
        self._globals = fn.__globals__
        self._locals = set(local_names)
        self._static_locals = {}
        self._package = fn.__globals__.get("__package__") or ""

    def learn_imports(self, fnode: ast.AST) -> None:
        assigned: set[str] = set()
        imports: list[tuple[str, tuple]] = []
        for n in _scan(fnode):
            if isinstance(n, ast.ImportFrom):
                for alias in n.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    imports.append(
                        (bound, (n.module or "", n.level, alias.name))
                    )
            elif isinstance(n, ast.Import):
                for alias in n.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    imports.append((bound, (alias.name, 0, None)))
            elif isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                assigned.add(n.id)
        for bound, (module, level, attr) in imports:
            if bound in assigned:
                continue
            try:
                target = importlib.import_module(
                    "." * level + module,
                    package=self._package if level else None,
                )
                self._static_locals[bound] = (
                    target if attr is None else getattr(target, attr)
                )
            except Exception:  # noqa: BLE001 - stays dynamic
                continue

    def resolve(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Name):
            name = node.id
            if name in self._static_locals:
                return self._static_locals[name]
            if name in self._locals:
                return None  # dynamic: bound at run time
            if name in self._globals:
                return self._globals[name]
            return getattr(builtins, name, None)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return getattr(base, node.attr, None)
        return None


def _normalize_op_args(
    call: ast.Call, op_cls: type
) -> list[ast.expr]:
    """Map a constructor call's arguments onto the op's field order."""
    fields = _OP_FIELDS[op_cls]
    if any(isinstance(a, ast.Starred) for a in call.args):
        raise UnsupportedAutomaton(f"*args in {op_cls.__name__}(...)")
    if any(kw.arg is None for kw in call.keywords):
        raise UnsupportedAutomaton(f"**kwargs in {op_cls.__name__}(...)")
    slots: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if i >= len(fields):
            raise UnsupportedAutomaton(
                f"too many arguments to {op_cls.__name__}(...)"
            )
        slots[fields[i]] = arg
    for kw in call.keywords:
        if kw.arg not in fields or kw.arg in slots:
            raise UnsupportedAutomaton(
                f"bad keyword {kw.arg!r} to {op_cls.__name__}(...)"
            )
        slots[kw.arg] = kw.value
    if set(slots) != set(fields):
        raise UnsupportedAutomaton(
            f"missing arguments to {op_cls.__name__}(...)"
        )
    return [slots[f] for f in fields]


# -- lowering -------------------------------------------------------------


class _Lowerer:
    """Lowers one automaton body into trampoline blocks.

    Block ids: suspension sites are ``0 .. n_sites-1`` (hottest, first
    in the dispatch chain), the entry prologue is ``n_sites``, and
    internal blocks (loop heads, joins) follow.  ``_K_pc`` holds the
    site to resume at (``-2`` once halted).
    """

    def __init__(
        self, resolver: _Resolver, n_sites: int, *, traced: bool
    ) -> None:
        self.resolver = resolver
        self.traced = traced
        self.entry_id = n_sites
        self._next_id = n_sites + 1
        self._next_temp = 0
        self.blocks: dict[int, list[str]] = {}
        self.sites: list[OpSite] = []
        self.extra_locals: list[str] = []
        self._cur: list[str] = []
        self._loops: list[tuple[int, int]] = []  # (head, after)
        self.blocks[self.entry_id] = self._cur

    # -- emission helpers ----------------------------------------------

    def _emit(self, line: str) -> None:
        self._cur.append(line)

    def _start(self, bid: int) -> None:
        self._cur = self.blocks.setdefault(bid, [])

    def _new_id(self) -> int:
        bid = self._next_id
        self._next_id += 1
        return bid

    def _new_temp(self) -> str:
        # Both lowering passes allocate temps in the same deterministic
        # order, so the traced and untraced bodies share declarations.
        name = f"_K_t{self._next_temp}"
        self._next_temp += 1
        if name not in self.extra_locals:
            self.extra_locals.append(name)
        return name

    def _goto(self, bid: int) -> None:
        self._emit(f"_K_b = {bid}")
        self._emit("continue")

    def _goto_if(self, cond: str, bid: int) -> None:
        self._emit(f"if {cond}:")
        self._emit(f"    _K_b = {bid}")
        self._emit("    continue")

    def _halt(self) -> None:
        self._emit("_K_pc = -2")
        self._emit("return 1")

    # -- statement lowering --------------------------------------------

    def lower_function(self, body: list[ast.stmt]) -> None:
        if self.lower_stmts(body):
            self._halt()
        # Unreachable-but-created blocks (e.g. the after-block of a
        # terminal ``while True``) must still parse — and must fail
        # loudly if control ever reaches one.
        for lines in self.blocks.values():
            if not lines:
                lines.append(
                    "raise RuntimeError('unreachable compiled block')"
                )

    def lower_stmts(self, stmts: list[ast.stmt]) -> bool:
        for stmt in stmts:
            if not self.lower_stmt(stmt):
                return False
        return True

    def lower_stmt(self, stmt: ast.stmt) -> bool:
        if not _needs_lowering(stmt):
            if isinstance(stmt, (ast.Global, ast.Nonlocal)):
                raise UnsupportedAutomaton(
                    "global/nonlocal inside an automaton"
                )
            for line in ast.unparse(stmt).splitlines():
                self._emit(line)
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield):
            return self.lower_yield(stmt.value, None)
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.value, ast.Yield)
        ):
            return self.lower_yield(
                stmt.value, ast.unparse(stmt.targets[0])
            )
        if isinstance(stmt, ast.While):
            return self.lower_while(stmt)
        if isinstance(stmt, ast.For):
            return self.lower_for(stmt)
        if isinstance(stmt, ast.If):
            return self.lower_if(stmt)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and not (
                isinstance(stmt.value, ast.Constant)
                and stmt.value.value is None
            ):
                raise UnsupportedAutomaton("return with a value")
            self._halt()
            return False
        if isinstance(stmt, ast.Break):
            if not self._loops:
                raise UnsupportedAutomaton("break outside loop")
            self._goto(self._loops[-1][1])
            return False
        if isinstance(stmt, ast.Continue):
            if not self._loops:
                raise UnsupportedAutomaton("continue outside loop")
            self._goto(self._loops[-1][0])
            return False
        raise UnsupportedAutomaton(
            f"cannot lower a yield inside {type(stmt).__name__}"
        )

    def lower_while(self, stmt: ast.While) -> bool:
        head = self._new_id()
        after = self._new_id()
        exit_target = self._new_id() if stmt.orelse else after
        self._goto(head)
        self._start(head)
        test = stmt.test
        if not (isinstance(test, ast.Constant) and test.value):
            self._goto_if(f"not ({ast.unparse(test)})", exit_target)
        self._loops.append((head, after))
        reachable = self.lower_stmts(stmt.body)
        self._loops.pop()
        if reachable:
            self._goto(head)
        if stmt.orelse:
            self._start(exit_target)
            if self.lower_stmts(stmt.orelse):
                self._goto(after)
        self._start(after)
        return True

    def lower_for(self, stmt: ast.For) -> bool:
        iterator = self._new_temp()
        current = self._new_temp()
        self._emit(f"{iterator} = iter({ast.unparse(stmt.iter)})")
        head = self._new_id()
        after = self._new_id()
        exit_target = self._new_id() if stmt.orelse else after
        self._goto(head)
        self._start(head)
        self._emit(f"{current} = next({iterator}, _K_STOP)")
        self._goto_if(f"{current} is _K_STOP", exit_target)
        self._emit(f"{ast.unparse(stmt.target)} = {current}")
        self._loops.append((head, after))
        reachable = self.lower_stmts(stmt.body)
        self._loops.pop()
        if reachable:
            self._goto(head)
        if stmt.orelse:
            self._start(exit_target)
            if self.lower_stmts(stmt.orelse):
                self._goto(after)
        self._start(after)
        return True

    def lower_if(self, stmt: ast.If) -> bool:
        then_id = self._new_id()
        after = self._new_id()
        self._goto_if(f"{ast.unparse(stmt.test)}", then_id)
        if self.lower_stmts(stmt.orelse):
            self._goto(after)
        self._start(then_id)
        if self.lower_stmts(stmt.body):
            self._goto(after)
        self._start(after)
        return True

    # -- yield lowering -------------------------------------------------

    def lower_yield(self, node: ast.Yield, target: str | None) -> bool:
        value = node.value
        if value is None:
            raise UnsupportedAutomaton("bare yield")
        if not isinstance(value, ast.Call):
            raise UnsupportedAutomaton(
                "yield of a non-constructor expression"
            )
        op_cls = self.resolver.resolve(value.func)
        if op_cls not in _OP_FIELDS:
            raise UnsupportedAutomaton(
                f"cannot statically resolve operation "
                f"{ast.unparse(value.func)!r}"
            )
        args = _normalize_op_args(value, op_cls)
        site = len(self.sites)
        kind = _OP_KIND[op_cls]
        reg_node = args[0] if kind in ("read", "write", "snapshot", "cas") else None
        exact, prefix = (
            _const_register(reg_node) if reg_node is not None else (None, None)
        )
        self.sites.append(
            OpSite(
                site=site,
                kind=kind,
                source=ast.unparse(value),
                register=exact,
                register_prefix=prefix,
                result_used=target is not None,
            )
        )
        # Suspend: the *next* step performs this operation.
        self._emit(f"_K_pc = {site}")
        self._emit("return 0")
        self._start(site)
        srcs = [ast.unparse(a) for a in args]
        if self.traced:
            return self._emit_traced_effect(kind, srcs, target)
        return self._emit_effect(kind, args, srcs, target)

    def _emit_effect(
        self,
        kind: str,
        args: list[ast.expr],
        srcs: list[str],
        target: str | None,
    ) -> bool:
        e = self._emit
        if kind == "write":
            e(f"_K_write({srcs[0]}, {srcs[1]})")
            if target:
                e(f"{target} = None")
        elif kind == "read":
            if target:
                e(f"{target} = _K_mem.get({srcs[0]})")
            elif not _is_effect_free(args[0]):
                e(f"{srcs[0]}")
        elif kind == "snapshot":
            if target:
                e(f"{target} = _K_snap({srcs[0]})")
            elif not _is_effect_free(args[0]):
                e(f"{srcs[0]}")
        elif kind == "nop":
            if target:
                e(f"{target} = None")
        elif kind == "query":
            # Always performed: the engine's query hook enforces the
            # C-processes-cannot-query rule even when the result is
            # discarded.
            e(f"{target or '_K_r'} = _K_query(_K_time)")
        elif kind == "cas":
            e(f"{target or '_K_r'} = _K_cas({srcs[0]}, {srcs[1]}, {srcs[2]})")
        else:  # decide
            e(f"_K_out[0] = {srcs[0]}")
            e("_K_pc = -2")
            e("return 2")
            return False
        return True

    def _emit_traced_effect(
        self, kind: str, srcs: list[str], target: str | None
    ) -> bool:
        e = self._emit
        if kind == "write":
            e(f"_K_a0 = {srcs[0]}")
            e(f"_K_a1 = {srcs[1]}")
            e("_K_write(_K_a0, _K_a1)")
            e("_K_ev[0] = _K_Write(_K_a0, _K_a1)")
            e("_K_ev[1] = None")
            if target:
                e(f"{target} = None")
        elif kind == "read":
            e(f"_K_a0 = {srcs[0]}")
            e("_K_r = _K_mem.get(_K_a0)")
            e("_K_ev[0] = _K_Read(_K_a0)")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        elif kind == "snapshot":
            e(f"_K_a0 = {srcs[0]}")
            e("_K_r = _K_snap(_K_a0)")
            e("_K_ev[0] = _K_Snapshot(_K_a0)")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        elif kind == "nop":
            e("_K_ev[0] = _K_NOP")
            e("_K_ev[1] = None")
            if target:
                e(f"{target} = None")
        elif kind == "query":
            e("_K_r = _K_query(_K_time)")
            e("_K_ev[0] = _K_QUERY")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        elif kind == "cas":
            e(f"_K_a0 = {srcs[0]}")
            e(f"_K_a1 = {srcs[1]}")
            e(f"_K_a2 = {srcs[2]}")
            e("_K_r = _K_cas(_K_a0, _K_a1, _K_a2)")
            e("_K_ev[0] = _K_CAS(_K_a0, _K_a1, _K_a2)")
            e("_K_ev[1] = _K_r")
            if target:
                e(f"{target} = _K_r")
        else:  # decide
            e(f"_K_a0 = {srcs[0]}")
            e("_K_ev[0] = _K_Decide(_K_a0)")
            e("_K_ev[1] = None")
            e("_K_out[0] = _K_a0")
            e("_K_pc = -2")
            e("return 2")
            return False
        return True


# -- compilation ----------------------------------------------------------


def _count_yields(fnode: ast.AST) -> int:
    count = 0
    for n in _scan(fnode):
        if isinstance(n, ast.YieldFrom):
            raise UnsupportedAutomaton("yield from (delegated subroutine)")
        if isinstance(n, ast.Yield):
            count += 1
    return count


def _function_node(fn: Callable) -> ast.FunctionDef:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise UnsupportedAutomaton(f"source unavailable: {exc}") from exc
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - defensive
        raise UnsupportedAutomaton(f"unparseable source: {exc}") from exc
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        raise UnsupportedAutomaton("not a plain function definition")
    fnode = tree.body[0]
    if fnode.decorator_list:
        raise UnsupportedAutomaton("decorated automaton")
    return fnode


def _render(
    fnode: ast.FunctionDef,
    param: str,
    freevars: tuple[str, ...],
    declared: list[str],
    untraced: _Lowerer,
    traced: _Lowerer,
) -> str:
    inject = ", ".join(f"{name}={name}" for name in _INJECTED)
    fv = "".join(f", {name}" for name in freevars)
    lines = [
        f"def _K_make({param}, _K_rt{fv}, *, {inject}):",
        "    (_K_mem, _K_write, _K_snap, _K_query, _K_cas, _K_out, _K_ev)"
        " = _K_rt",
    ]
    for name in declared:
        lines.append(f"    {name} = _K_UNBOUND")
    lines.append(f"    _K_pc = {untraced.entry_id}")
    nl = ", ".join(["_K_pc", param] + declared)
    for fname, low in (("_K_step", untraced), ("_K_step_traced", traced)):
        lines.append(f"    def {fname}(_K_time):")
        lines.append(f"        nonlocal {nl}")
        lines.append("        _K_b = _K_pc")
        lines.append("        while True:")
        for j, bid in enumerate(sorted(low.blocks)):
            kw = "if" if j == 0 else "elif"
            lines.append(f"            {kw} _K_b == {bid}:")
            for line in low.blocks[bid]:
                lines.append(f"                {line}")
        lines.append("            else:")
        lines.append(
            "                raise RuntimeError("
            "f'compiled automaton stepped at invalid pc {_K_b}')"
        )
    lines.append("    return (_K_step, _K_step_traced)")
    return "\n".join(lines) + "\n"


def _compile(fn: Callable) -> CompiledProgram:
    code = fn.__code__
    if not inspect.isgeneratorfunction(fn):
        raise UnsupportedAutomaton("not a generator function")
    if (
        code.co_argcount != 1
        or code.co_kwonlyargcount
        or code.co_flags & (inspect.CO_VARARGS | inspect.CO_VARKEYWORDS)
    ):
        raise UnsupportedAutomaton(
            "automaton signature is not a single positional (ctx)"
        )
    fnode = _function_node(fn)
    fnode = ast.fix_missing_locations(_StripAnnotations().visit(fnode))
    n_sites = _count_yields(fnode)
    param = code.co_varnames[0]
    user_locals = [
        name
        for name in (*code.co_varnames[1:], *code.co_cellvars)
        if name != param
    ]
    # de-dup while preserving order (a cellvar can also be a varname)
    seen: set[str] = set()
    user_locals = [
        n for n in user_locals if not (n in seen or seen.add(n))
    ]
    freevars = code.co_freevars
    for name in (param, *user_locals, *freevars):
        if name.startswith("_K_"):
            raise UnsupportedAutomaton(f"reserved name {name!r} in automaton")
    resolver = _Resolver(
        fn, {param, *user_locals, *freevars}
    )
    resolver.learn_imports(fnode)

    untraced = _Lowerer(resolver, n_sites, traced=False)
    untraced.lower_function(fnode.body)
    traced = _Lowerer(resolver, n_sites, traced=True)
    traced.lower_function(fnode.body)
    if len(untraced.sites) != n_sites:  # pragma: no cover - invariant
        raise UnsupportedAutomaton("yield in an unsupported position")

    declared = user_locals + untraced.extra_locals
    body = _render(fnode, param, freevars, declared, untraced, traced)
    header = (
        f"# compiled automaton: {fn.__module__}.{fn.__qualname__}\n"
        f"# sites: {n_sites}; freevars: {', '.join(freevars) or '-'}\n"
    )
    source = header + body
    digest = hashlib.sha256(source.encode()).hexdigest()

    # Execute the generated def against the automaton's *live* module
    # globals (so monkeypatching and late rebinding behave exactly as
    # they do for the generator), then remove the definition again.
    # All injected constants travel as defaulted parameters.
    namespace = fn.__globals__
    for name, value in _INJECTED.items():
        namespace[name] = value
    try:
        exec(compile(source, f"<kernel:{fn.__qualname__}>", "exec"), namespace)
        make = namespace.pop("_K_make")
    finally:
        for name in _INJECTED:
            namespace.pop(name, None)
    return CompiledProgram(
        name=fn.__name__,
        qualname=fn.__qualname__,
        module=fn.__module__,
        n_sites=n_sites,
        sites=tuple(untraced.sites),
        freevars=freevars,
        source=source,
        content_hash=digest,
        make=make,
    )


#: Compilation cache keyed on the automaton's code object: every
#: closure produced by the same factory shares one program (free
#: variables are bound at ``make`` time, not compile time).  Negative
#: results are cached too, so the engine pays the unsupported-subset
#: analysis once per automaton, not once per process.
_CACHE: dict[Any, CompiledProgram | UnsupportedAutomaton] = {}


def compile_automaton(fn: Callable) -> CompiledProgram:
    """Compile one automaton (factory) function, with caching.

    Raises :class:`UnsupportedAutomaton` when ``fn`` lies outside the
    compilable subset; the result (including the failure) is cached on
    ``fn.__code__``.
    """
    code = getattr(fn, "__code__", None)
    if code is None:
        raise UnsupportedAutomaton(
            f"{fn!r} is not a plain Python function"
        )
    cached = _CACHE.get(code)
    if cached is not None:
        if isinstance(cached, UnsupportedAutomaton):
            raise cached
        return cached
    try:
        program = _compile(fn)
    except UnsupportedAutomaton as exc:
        _CACHE[code] = exc
        raise
    _CACHE[code] = program
    return program


def compiled_source(fn: Callable) -> str:
    """The generated source of ``fn``'s compiled program (compiles on
    first use)."""
    return compile_automaton(fn).source


def clear_cache() -> None:
    """Drop every cached program (tests and benchmarks use this to
    measure cold-compile costs)."""
    _CACHE.clear()


def cached_programs() -> list[CompiledProgram]:
    """Every successfully compiled program currently cached."""
    return [p for p in _CACHE.values() if isinstance(p, CompiledProgram)]
