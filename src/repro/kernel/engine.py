"""The compiled run engine: drives a system through compiled step
functions, falling back per-automaton to generator interpretation.

:class:`CompiledRun` replicates :class:`repro.runtime.executor.Executor`
semantics *exactly* — same scheduling decisions, same trace events, same
stop reasons, same :class:`~repro.core.run.RunResult` — while paying
neither generator resumption nor operation-object allocation on the
untraced hot path.  The differential harness
(:mod:`repro.kernel.differential`) is the enforcement mechanism for that
claim; read it before changing anything here.

Structure of a run:

* shared memory is a plain dict plus the same prefix-keyed snapshot
  cache :class:`~repro.memory.registers.RegisterFile` maintains (the
  final ``RunResult.memory`` is rebuilt as a real ``RegisterFile`` in
  write order);
* each process is an *entry* ``[pid, count_index, step_fn]`` where
  ``step_fn(time)`` performs the pending operation and returns a status:
  ``0`` continue, ``1`` halted, ``2`` decided (value in ``out[0]``).
  Compiled automata get the closures produced by
  :func:`~repro.kernel.compiler.compile_automaton`; unsupported ones get
  a wrapper that drives their generator with the interpreter's exact
  dispatch;
* the advance loop is specialized per scheduler: round-robin and
  seeded-random runs skip :class:`SchedulerView` construction entirely
  (their picks are provably identical over the maintained candidate
  list), every other scheduler — and every traced run — goes through
  the general view-building loop.

``advance(limit)`` steps at most ``limit`` scheduler turns, which is
what lets :mod:`repro.kernel.lanes` interleave many runs in lockstep.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable

from ..core.process import ProcessId, c_process, s_process
from ..core.run import RunResult
from ..core.system import System, input_register
from ..errors import ProtocolError, SchedulingError
from ..memory.registers import RegisterFile
from ..runtime import ops
from ..runtime.executor import Executor, execute
from ..runtime.scheduler import (
    RoundRobinScheduler,
    Scheduler,
    SchedulerView,
    SeededRandomScheduler,
)
from ..runtime.trace import Trace, TraceEvent
from .compiler import CompiledProgram, UnsupportedAutomaton, compile_automaton

__all__ = ["CompiledRun", "LaneState", "execute_compiled"]


class LaneState:
    """Shared copy-on-write state for lanes of one system *shape*.

    Many-seed sweeps run the same task/algorithm/pattern under different
    seeds; every lane starts from the identical (empty) register file —
    a common prefix.  A ``LaneState`` is created per shape by
    :mod:`repro.kernel.lanes` and handed to each lane's
    :class:`CompiledRun`:

    * ``snap0`` — the epoch-0 snapshot cache, shared by every lane in
      the group *until its first write*.  A lane's first write bumps its
      private epoch (invalidating its view of the shared cache) and all
      later snapshots go through the lane-local cache; the shared cache
      itself is never invalidated, because one lane's writes are
      invisible to its siblings.
    * ``finals`` — interning table for final register files.  Lanes of
      one shape frequently converge to byte-identical final memory;
      :meth:`CompiledRun.result` builds the :class:`RegisterFile` once
      per distinct content and hands out O(1) copy-on-write copies
      (:meth:`RegisterFile.copy`) instead of re-materializing it per
      lane.  Unhashable register values simply skip the interning.

    Correctness is enforced end-to-end by the campaign differential
    (:func:`repro.kernel.differential.campaign_differential`): reports
    rendered from interned memory must stay byte-identical to the
    serial interpreted run.
    """

    __slots__ = ("snap0", "finals")

    def __init__(self) -> None:
        self.snap0: dict[str, dict[str, Any]] = {}
        self.finals: dict[tuple, RegisterFile] = {}


class CompiledRun:
    """One system + scheduler, executable through the compiled kernel.

    Args:
        system: the system to execute.
        scheduler: picks the process for each step.
        max_steps: liveness budget (reason ``"budget"`` on exhaustion).
        trace: record a full trace (byte-identical to the interpreter's).
        program_overrides: optional mapping from automaton factory to a
            :class:`CompiledProgram` to use instead of compiling — the
            differential tests inject deliberately miscompiled programs
            through this to prove the gate fails loudly.
        lane_state: optional :class:`LaneState` shared with sibling
            lanes of the same system shape (see
            :mod:`repro.kernel.lanes`).  ``None`` — the default for
            solo runs — keeps the original single-run fast paths.
    """

    def __init__(
        self,
        system: System,
        scheduler: Scheduler,
        *,
        max_steps: int = 200_000,
        trace: bool = False,
        program_overrides: (
            dict[Callable, CompiledProgram] | None
        ) = None,
        lane_state: LaneState | None = None,
    ) -> None:
        self.system = system
        self.scheduler = scheduler
        self.max_steps = max_steps
        self._traced = trace
        self.time = 0
        self._reason: str | None = None
        self._decisions: dict[int, Any] = {}
        self._undecided: set[int] = set(system.participants)
        self._started: set[int] = set()
        self._started_frozen: frozenset[int] | None = frozenset()
        self._decided_frozen: frozenset[int] | None = frozenset()
        self._events: list[TraceEvent] = []
        self._out: list[Any] = [None]
        self._ev: list[Any] = [None, None]
        self._cells: dict[str, Any] = {}
        self._snap_cache: dict[str, dict[str, Any]] = {}
        self._crash_queue = system.pattern.crash_transitions
        self._crash_pos = bisect_right(
            self._crash_queue, (0, float("inf"))
        )
        crashed = {
            index
            for _when, index in self._crash_queue[: self._crash_pos]
        }

        # Phase 1: compile (or classify as fallback) every automaton.
        overrides = program_overrides or {}
        programs: list[tuple[Callable, CompiledProgram | None]] = []
        for factory in (*system.c_factories, *system.s_factories):
            program = overrides.get(factory)
            if program is None:
                try:
                    program = compile_automaton(factory)
                except UnsupportedAutomaton:
                    program = None
            programs.append((factory, program))
        self.compiled_pids: frozenset[ProcessId] = frozenset()
        self.fallback_pids: frozenset[ProcessId] = frozenset()

        # Phase 2: choose memory hooks.  The snapshot cache (and its
        # invalidation scan on every write) only matters if some step
        # can snapshot; when every automaton compiled and none has a
        # snapshot site, writes go straight into the dict.
        may_snapshot = any(
            program is None
            or any(
                site.kind in ("snapshot", "delegate")
                for site in program.sites
            )
            for _fn, program in programs
        )
        cells = self._cells
        snap_cache = self._snap_cache
        self._lane_state = lane_state
        epoch = [0]
        if may_snapshot:

            def write(name: str, value: Any) -> None:
                cells[name] = value
                if snap_cache:
                    stale = [
                        prefix
                        for prefix in snap_cache
                        if name.startswith(prefix)
                    ]
                    for prefix in stale:
                        del snap_cache[prefix]

            if lane_state is not None:
                base_write = write

                def write(name: str, value: Any) -> None:  # noqa: F811
                    # First write: bump this lane's epoch, detaching it
                    # from the group-shared epoch-0 snapshot cache.
                    epoch[0] = 1
                    base_write(name, value)

        else:
            write = cells.__setitem__

        def snap(prefix: str) -> dict[str, Any]:
            cached = snap_cache.get(prefix)
            if cached is None:
                if prefix:
                    cached = snap_cache[prefix] = dict(
                        sorted(
                            (name, value)
                            for name, value in cells.items()
                            if name.startswith(prefix)
                        )
                    )
                else:
                    cached = snap_cache[prefix] = dict(
                        sorted(cells.items())
                    )
            return dict(cached)

        if lane_state is not None and may_snapshot:
            local_snap = snap
            shared0 = lane_state.snap0

            def snap(prefix: str) -> dict[str, Any]:  # noqa: F811
                if epoch[0]:
                    return local_snap(prefix)
                # Epoch 0: this lane has not written yet, so its view
                # of memory is the group's common prefix — share the
                # snapshot with every sibling still at epoch 0.
                cached = shared0.get(prefix)
                if cached is None:
                    if prefix:
                        cached = shared0[prefix] = dict(
                            sorted(
                                (name, value)
                                for name, value in cells.items()
                                if name.startswith(prefix)
                            )
                        )
                    else:
                        cached = shared0[prefix] = dict(
                            sorted(cells.items())
                        )
                return dict(cached)

        def cas(name: str, expected: Any, new: Any) -> Any:
            prior = cells.get(name)
            if prior == expected:
                write(name, new)
            return prior

        self._write = write
        self._snap = snap
        self._cas = cas

        # Phase 3: instantiate entries in canonical order (C, then S).
        compiled: set[ProcessId] = set()
        fallback: set[ProcessId] = set()
        live: list[list] = []
        entries: list[list] = []
        self._s_entries: dict[int, list] = {}
        n_c = system.n_c
        for i in range(n_c):
            pid = c_process(i)
            factory, program = programs[i]
            inner = self._instantiate(
                pid, factory, program, compiled, fallback
            )
            entry = [pid, i, inner]
            entries.append(entry)
            if system.inputs[i] is not None:
                self._wrap_c_first_step(entry, inner)
                live.append(entry)
        for i in range(system.n_s):
            pid = s_process(i)
            factory, program = programs[n_c + i]
            inner = self._instantiate(
                pid, factory, program, compiled, fallback
            )
            entry = [pid, n_c + i, inner]
            entries.append(entry)
            self._s_entries[i] = entry
            # S-processes are primed at construction: run the prologue
            # to the first suspension (pure local computation, no step).
            if inner(0) == 0 and i not in crashed:
                live.append(entry)
        self._entries = entries
        self._live = live
        self._by_pid = {entry[0]: entry for entry in entries}
        self._counts = [0] * len(entries)
        self.compiled_pids = frozenset(compiled)
        self.fallback_pids = frozenset(fallback)

        if type(scheduler) is RoundRobinScheduler:
            self._advance = self._advance_rr
        elif type(scheduler) is SeededRandomScheduler:
            self._advance = self._advance_seeded
        else:
            self._advance = self._advance_general

    # -- construction helpers -------------------------------------------

    def _query_for(self, pid: ProcessId) -> Callable[[int], Any]:
        if pid.is_computation:

            def query(_time: int) -> Any:
                raise ProtocolError(
                    "C-processes cannot query the detector"
                )

        else:
            value = self.system.history.value
            index = pid.index

            def query(time: int) -> Any:
                return value(index, time)

        return query

    def _instantiate(
        self,
        pid: ProcessId,
        factory: Callable,
        program: CompiledProgram | None,
        compiled: set[ProcessId],
        fallback: set[ProcessId],
    ) -> Callable[[int], int]:
        ctx = self.system.context_for(pid)
        rt = (
            self._cells,
            self._write,
            self._snap,
            self._query_for(pid),
            self._cas,
            self._out,
            self._ev,
        )
        if program is not None:
            try:
                freevals = [
                    cell.cell_contents
                    for cell in factory.__closure__ or ()
                ]
            except ValueError:  # empty cell: stay on the generator
                freevals = None
            if freevals is not None:
                step, step_traced = program.make(ctx, rt, *freevals)
                compiled.add(pid)
                return step_traced if self._traced else step
        fallback.add(pid)
        return self._make_fallback(pid, factory(ctx), rt)

    def _make_fallback(
        self, pid: ProcessId, generator: Any, rt: tuple
    ) -> Callable[[int], int]:
        """Drive an uncompiled automaton's generator with the
        interpreter's exact operation dispatch."""
        (cells, write, snap, query, cas, out, ev) = rt
        mem_get = cells.get
        traced = self._traced
        pending: Any = None
        primed = False

        def generic(op: Any) -> Any:
            # Mirrors Executor._perform for unusual operation objects.
            if op is None:
                raise ProtocolError(f"{pid} has no pending operation")
            if isinstance(op, ops.QueryFD):
                return query(step_time[0])
            if isinstance(op, ops.Read):
                return mem_get(op.register)
            if isinstance(op, ops.Write):
                write(op.register, op.value)
                return None
            if isinstance(op, ops.Snapshot):
                return snap(op.prefix)
            if isinstance(op, ops.CompareAndSwap):
                return cas(op.register, op.expected, op.new)
            if isinstance(op, ops.Nop):
                return None
            raise ProtocolError(f"{pid} yielded a non-operation: {op!r}")

        step_time = [0]

        def step(time: int) -> int:
            nonlocal pending, primed
            if not primed:
                primed = True
                try:
                    pending = next(generator)
                except StopIteration:
                    return 1
                return 0
            op = pending
            op_type = type(op)
            if op_type is ops.Write:
                write(op.register, op.value)
                result = None
            elif op_type is ops.Read:
                result = mem_get(op.register)
            elif op_type is ops.Snapshot:
                result = snap(op.prefix)
            elif op_type is ops.Nop:
                result = None
            elif op_type is ops.QueryFD:
                result = query(time)
            elif op_type is ops.CompareAndSwap:
                result = cas(op.register, op.expected, op.new)
            elif op_type is ops.Decide:
                if traced:
                    ev[0] = op
                    ev[1] = None
                out[0] = op.value
                return 2
            else:
                step_time[0] = time
                result = generic(op)
            if traced:
                ev[0] = op
                ev[1] = result
            try:
                pending = generator.send(result)
            except StopIteration:
                return 1
            return 0

        return step

    def _wrap_c_first_step(self, entry: list, inner: Callable) -> None:
        """Install the mandated first step of a participating C-process:
        write the task input, then run the automaton's prologue (the
        interpreter's ``prime``)."""
        pid: ProcessId = entry[0]
        register = input_register(pid.index)
        value = self.system.inputs[pid.index]
        write = self._write
        started = self._started
        traced = self._traced
        ev = self._ev

        def first_step(time: int) -> int:
            started.add(pid.index)
            self._started_frozen = None
            write(register, value)
            if traced:
                ev[0] = ops.Write(register, value)
                ev[1] = None
            entry[2] = inner
            return inner(time)

        entry[2] = first_step

    # -- advancing -------------------------------------------------------

    def _finish_step(
        self, entry: list, status: int, live: list, time: int
    ) -> None:
        """Post-step bookkeeping shared by the advance loops (cold path:
        only runs when a process halts or decides)."""
        if status == 2:
            pid = entry[0]
            if pid.is_synchronization:
                raise ProtocolError("S-processes cannot decide")
            self._decisions[pid.index] = self._out[0]
            self._undecided.discard(pid.index)
            self._decided_frozen = None
        try:
            live.remove(entry)
        except ValueError:
            pass

    def _retire_crashes(self, live: list, time: int) -> None:
        queue = self._crash_queue
        pos = self._crash_pos
        s_entries = self._s_entries
        while pos < len(queue) and queue[pos][0] <= time:
            entry = s_entries.get(queue[pos][1])
            if entry is not None:
                try:
                    live.remove(entry)
                except ValueError:
                    pass
            pos += 1
        self._crash_pos = pos

    def _advance_rr(self, limit: int | None) -> bool:
        live = self._live
        counts = self._counts
        undecided = self._undecided
        max_steps = self.max_steps
        queue = self._crash_queue
        qlen = len(queue)
        pos = self._crash_pos
        scheduler = self.scheduler
        cursor = scheduler._cursor
        events = self._events if self._traced else None
        ev = self._ev
        time = self.time
        end = max_steps if limit is None else min(max_steps, time + limit)
        next_crash = queue[pos][0] if pos < qlen else max_steps + 1
        n = len(live)
        finished = None
        while True:
            if time >= max_steps:
                finished = "budget"
                break
            if not undecided:
                finished = "all_decided"
                break
            if not n:
                finished = "halted"
                break
            if time >= end:
                break
            entry = live[cursor % n]
            cursor += 1
            status = entry[2](time)
            counts[entry[1]] += 1
            if events is not None:
                events.append(TraceEvent(time, entry[0], ev[0], ev[1]))
            time += 1
            if time >= next_crash:
                self._crash_pos = pos
                self._retire_crashes(live, time)
                pos = self._crash_pos
                next_crash = queue[pos][0] if pos < qlen else max_steps + 1
                n = len(live)
            if status:
                self._finish_step(entry, status, live, time)
                n = len(live)
        scheduler._cursor = cursor
        self._crash_pos = pos
        self.time = time
        if finished is not None:
            self._reason = finished
            return True
        return False

    def _advance_seeded(self, limit: int | None) -> bool:
        live = self._live
        counts = self._counts
        undecided = self._undecided
        max_steps = self.max_steps
        queue = self._crash_queue
        qlen = len(queue)
        pos = self._crash_pos
        # The interpreter picks `rng.choice(sorted(view.candidates))`,
        # and `random.Random.choice(seq)` is `seq[self._randbelow(
        # len(seq))]` with `_randbelow(n)` drawing `getrandbits(
        # n.bit_length())` until the draw lands below n.  `live` *is*
        # that sorted candidate list, so inlining the draw consumes the
        # identical RNG stream and picks the identical process while
        # skipping two Python calls per step; candidate count and bit
        # width are recomputed only when the list actually changes.
        getrandbits = self.scheduler._rng.getrandbits
        events = self._events if self._traced else None
        ev = self._ev
        time = self.time
        end = max_steps if limit is None else min(max_steps, time + limit)
        next_crash = queue[pos][0] if pos < qlen else max_steps + 1
        n = len(live)
        k = n.bit_length()
        finished = None
        while True:
            if time >= max_steps:
                finished = "budget"
                break
            if not undecided:
                finished = "all_decided"
                break
            if not n:
                finished = "halted"
                break
            if time >= end:
                break
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            entry = live[r]
            status = entry[2](time)
            counts[entry[1]] += 1
            if events is not None:
                events.append(TraceEvent(time, entry[0], ev[0], ev[1]))
            time += 1
            if time >= next_crash:
                self._crash_pos = pos
                self._retire_crashes(live, time)
                pos = self._crash_pos
                next_crash = queue[pos][0] if pos < qlen else max_steps + 1
                n = len(live)
                k = n.bit_length()
            if status:
                self._finish_step(entry, status, live, time)
                n = len(live)
                k = n.bit_length()
        self._crash_pos = pos
        self.time = time
        if finished is not None:
            self._reason = finished
            return True
        return False

    def _advance_general(self, limit: int | None) -> bool:
        live = self._live
        counts = self._counts
        undecided = self._undecided
        max_steps = self.max_steps
        scheduler = self.scheduler
        by_pid = self._by_pid
        participants = self.system.participants
        queue = self._crash_queue
        qlen = len(queue)
        pos = self._crash_pos
        events = self._events if self._traced else None
        ev = self._ev
        time = self.time
        end = max_steps if limit is None else min(max_steps, time + limit)
        next_crash = queue[pos][0] if pos < qlen else max_steps + 1
        # ``live`` only ever shrinks (finish/crash), so a length check is
        # enough to keep the candidates tuple fresh across steps.
        cands = tuple(entry[0] for entry in live)
        finished = None
        while True:
            if time >= max_steps:
                finished = "budget"
                break
            if not undecided:
                finished = "all_decided"
                break
            if not live:
                finished = "halted"
                break
            if time >= end:
                break
            if self._started_frozen is None:
                self._started_frozen = frozenset(self._started)
            if self._decided_frozen is None:
                self._decided_frozen = frozenset(self._decisions)
            if len(cands) != len(live):
                cands = tuple(entry[0] for entry in live)
            view = SchedulerView(
                time=time,
                candidates=cands,
                started=self._started_frozen,
                decided=self._decided_frozen,
                participants=participants,
            )
            try:
                pid = scheduler.next(view)
            except SchedulingError:
                finished = "schedule_exhausted"
                break
            entry = by_pid[pid]
            status = entry[2](time)
            counts[entry[1]] += 1
            if events is not None:
                events.append(TraceEvent(time, entry[0], ev[0], ev[1]))
            time += 1
            if time >= next_crash:
                self._crash_pos = pos
                self._retire_crashes(live, time)
                pos = self._crash_pos
                next_crash = queue[pos][0] if pos < qlen else max_steps + 1
            if status:
                self._finish_step(entry, status, live, time)
        self._crash_pos = pos
        self.time = time
        if finished is not None:
            self._reason = finished
            return True
        return False

    def advance(self, limit: int | None = None) -> bool:
        """Run at most ``limit`` steps (all remaining when ``None``).
        Returns True once the run has finished."""
        if self._reason is not None:
            return True
        return self._advance(limit)

    # -- results ---------------------------------------------------------

    def _budget_digest(self) -> str:
        counts = self._counts
        n_c = self.system.n_c
        undecided = sorted(
            self.system.participants - set(self._decisions)
        )
        per_process = (
            ", ".join(f"p{i + 1}({counts[i]} steps)" for i in undecided)
            or "none"
        )
        s_steps = sum(counts[n_c:])
        return (
            f"budget {self.max_steps} exhausted: "
            f"decided {len(self._decisions)}/"
            f"{len(self.system.participants)} "
            f"participants; undecided: {per_process}; "
            f"S-process steps: {s_steps}"
        )

    def _final_memory(self) -> RegisterFile:
        """Materialize the final register file, interning through the
        lane group when one is attached: sibling lanes that converge to
        identical final memory share one master ``RegisterFile`` and
        receive O(1) copy-on-write copies instead of rebuilding the
        register file cell by cell per lane."""
        state = self._lane_state
        if state is not None:
            key: tuple | None = tuple(self._cells.items())
            try:
                master = state.finals.get(key)
            except TypeError:  # unhashable register value: skip intern
                key = None
                master = None
            if key is not None:
                if master is None:
                    master = RegisterFile()
                    for name, value in self._cells.items():
                        master.write(name, value)
                    state.finals[key] = master
                return master.copy()
        memory = RegisterFile()
        for name, value in self._cells.items():
            memory.write(name, value)
        return memory

    def result(self) -> RunResult:
        """Package the finished run as a RunResult (identical to the
        interpreter's for the same system and scheduler)."""
        if self._reason is None:
            raise ProtocolError("result() called before the run finished")
        memory = self._final_memory()
        extras: dict[str, Any] = {}
        if self._reason == "budget":
            extras["budget_digest"] = self._budget_digest()
        trace = None
        if self._traced:
            trace = Trace(enabled=True)
            trace.events = self._events
        decisions = self._decisions
        return RunResult(
            inputs=self.system.inputs,
            outputs=tuple(
                decisions.get(i) for i in range(self.system.n_c)
            ),
            participants=frozenset(self._started),
            steps=self.time,
            step_counts={
                entry[0]: self._counts[entry[1]]
                for entry in self._entries
            },
            reason=self._reason,
            pattern=self.system.pattern,
            memory=memory,
            trace=trace,
            extras=extras,
        )

    def run(self) -> RunResult:
        self.advance(None)
        return self.result()


def execute_compiled(
    system: System,
    scheduler: Scheduler,
    *,
    max_steps: int = 200_000,
    trace: bool = False,
    stop_when: Callable[[Executor], bool] | None = None,
    program_overrides: dict[Callable, CompiledProgram] | None = None,
) -> RunResult:
    """Compiled-kernel counterpart of :func:`repro.runtime.executor.execute`.

    ``stop_when`` predicates observe a live :class:`Executor`, which the
    compiled engine does not expose — such runs are delegated to the
    interpreter wholesale (correct by construction, just not faster).
    """
    if stop_when is not None:
        return execute(
            system,
            scheduler,
            max_steps=max_steps,
            trace=trace,
            stop_when=stop_when,
        )
    return CompiledRun(
        system,
        scheduler,
        max_steps=max_steps,
        trace=trace,
        program_overrides=program_overrides,
    ).run()
