"""Trace rendering: human-readable views of executions.

Debugging a distributed algorithm means staring at interleavings; these
helpers turn a recorded :class:`~repro.runtime.trace.Trace` into compact
text — a per-step ledger, a per-process lane view, and a summary of
register traffic.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..runtime import ops
from ..runtime.trace import Trace, TraceEvent


def _describe(op) -> str:
    if isinstance(op, ops.Read):
        return f"read {op.register}"
    if isinstance(op, ops.Write):
        return f"write {op.register} := {op.value!r}"
    if isinstance(op, ops.Snapshot):
        return f"snapshot {op.prefix}*"
    if isinstance(op, ops.QueryFD):
        return "query detector"
    if isinstance(op, ops.Decide):
        return f"DECIDE {op.value!r}"
    if isinstance(op, ops.CompareAndSwap):
        return f"cas {op.register}: {op.expected!r} -> {op.new!r}"
    if isinstance(op, ops.Nop):
        return "nop"
    return repr(op)


def format_ledger(trace: Trace, *, limit: int | None = None) -> str:
    """One line per step: time, process, operation, result."""
    lines = []
    events: Iterable[TraceEvent] = trace
    for event in events:
        if limit is not None and event.time >= limit:
            break
        result = "" if event.result is None else f" -> {event.result!r}"
        lines.append(
            f"t={event.time:<5} {event.pid.name:<5} "
            f"{_describe(event.op)}{result}"
        )
    return "\n".join(lines)


def format_lanes(trace: Trace, *, width: int = 72) -> str:
    """A lane per process: its operations in order, truncated to fit."""
    lanes: dict[str, list[str]] = {}
    for event in trace:
        lanes.setdefault(event.pid.name, []).append(_describe(event.op))
    lines = []
    for name in sorted(lanes):
        body = "; ".join(lanes[name])
        if len(body) > width:
            body = body[: width - 3] + "..."
        lines.append(f"{name:<5} | {body}")
    return "\n".join(lines)


def register_traffic(trace: Trace) -> dict[str, int]:
    """Operation counts per register (reads+writes+cas; snapshots count
    against their prefix)."""
    counts: Counter[str] = Counter()
    for event in trace:
        op = event.op
        if isinstance(op, (ops.Read, ops.Write, ops.CompareAndSwap)):
            counts[op.register] += 1
        elif isinstance(op, ops.Snapshot):
            counts[f"{op.prefix}*"] += 1
    return dict(counts)


def summarize(trace: Trace) -> str:
    """Steps per process plus the five hottest registers."""
    per_process: Counter[str] = Counter()
    decisions = []
    for event in trace:
        per_process[event.pid.name] += 1
        if isinstance(event.op, ops.Decide):
            decisions.append((event.pid.name, event.op.value))
    hot = Counter(register_traffic(trace)).most_common(5)
    lines = [f"steps: {sum(per_process.values())}"]
    lines.append(
        "per process: "
        + ", ".join(f"{n}={c}" for n, c in sorted(per_process.items()))
    )
    if decisions:
        lines.append(
            "decisions: "
            + ", ".join(f"{n}->{v!r}" for n, v in decisions)
        )
    if hot:
        lines.append(
            "hot registers: "
            + ", ".join(f"{r} ({c})" for r, c in hot)
        )
    return "\n".join(lines)
