"""Experiment reporting: uniform records for EXPERIMENTS.md and the
benchmark harnesses' printed tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentRecord:
    """One experiment's identity, parameters, and measured outcome."""

    experiment_id: str
    paper_artifact: str
    parameters: dict[str, Any] = field(default_factory=dict)
    measured: dict[str, Any] = field(default_factory=dict)
    verdict: str = "pass"

    def format_row(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        measured = ", ".join(f"{k}={v}" for k, v in self.measured.items())
        return (
            f"{self.experiment_id:8} | {self.paper_artifact:34} | "
            f"{params:30} | {measured} [{self.verdict}]"
        )


def format_report(records: Sequence[ExperimentRecord]) -> str:
    header = (
        f"{'exp':8} | {'paper artifact':34} | {'parameters':30} | measured"
    )
    lines = [header, "-" * len(header)]
    lines.extend(record.format_row() for record in records)
    return "\n".join(lines)
