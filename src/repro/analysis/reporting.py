"""Experiment reporting: uniform records for EXPERIMENTS.md and the
benchmark harnesses' printed tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentRecord:
    """One experiment's identity, parameters, and measured outcome."""

    experiment_id: str
    paper_artifact: str
    parameters: dict[str, Any] = field(default_factory=dict)
    measured: dict[str, Any] = field(default_factory=dict)
    verdict: str = "pass"

    def format_row(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        measured = ", ".join(f"{k}={v}" for k, v in self.measured.items())
        return (
            f"{self.experiment_id:8} | {self.paper_artifact:34} | "
            f"{params:30} | {measured} [{self.verdict}]"
        )


def format_report(records: Sequence[ExperimentRecord]) -> str:
    header = (
        f"{'exp':8} | {'paper artifact':34} | {'parameters':30} | measured"
    )
    lines = [header, "-" * len(header)]
    lines.extend(record.format_row() for record in records)
    return "\n".join(lines)


def format_campaign(report: Any) -> str:
    """Render a chaos :class:`~repro.chaos.campaign.CampaignReport`.

    Duck-typed (``name``/``records``/``counts``/``violations``/``ok``) so
    the analysis layer stays import-independent of the chaos engine.
    """
    total = len(report.records)
    lines = [
        f"chaos campaign '{report.name}': {total} cells",
        "-" * 60,
    ]
    for outcome, count in sorted(report.counts.items()):
        lines.append(f"  {outcome:20} {count:>6}")
    lines.append("-" * 60)
    problem_outcomes = ("safety_violation", "invalid_history", "error")
    problems = [
        r for r in report.records if r.outcome in problem_outcomes
    ]
    if problems:
        lines.append("problem cells:")
        for record in problems:
            lines.append(f"  {record.format_row()}")
            if record.detail:
                lines.append(f"      {record.detail}")
    quarantined = list(getattr(report, "quarantined", ()))
    if quarantined:
        lines.append("quarantined cells (run never finished):")
        for record in quarantined:
            lines.append(f"  {record.format_row()}")
            if record.detail:
                lines.append(f"      {record.detail}")
    verdict = "OK" if report.ok else "FAILED"
    if report.ok and quarantined:
        verdict = f"OK (INCOMPLETE: {len(quarantined)} quarantined)"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)
