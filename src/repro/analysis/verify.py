"""Run verifiers shared by tests, examples, and benchmark harnesses."""

from __future__ import annotations

from typing import Iterable

from ..core.run import RunResult
from ..core.task import Task
from ..errors import SafetyViolation
from ..runtime import ops
from ..runtime.trace import Trace


def verify_run(result: RunResult, task: Task) -> RunResult:
    """Wait-freedom obligation + task relation; returns the result for
    chaining."""
    return result.require_all_decided().require_satisfies(task)


def max_concurrent_undecided(trace: Trace) -> int:
    """Largest number of started-but-undecided C-processes at any point
    of a traced run — the quantity k-concurrency bounds."""
    started: set[int] = set()
    decided: set[int] = set()
    peak = 0
    for event in trace:
        if event.pid.is_computation:
            started.add(event.pid.index)
            if isinstance(event.op, ops.Decide):
                decided.add(event.pid.index)
        peak = max(peak, len(started - decided))
    return peak


def distinct_decisions(result: RunResult) -> int:
    """Number of distinct decided values (the k-set agreement metric)."""
    return len({v for v in result.outputs if v is not None})


def renaming_summary(result: RunResult) -> tuple[int, bool]:
    """(largest name used, all names distinct)."""
    names = [v for v in result.outputs if v is not None]
    return (max(names) if names else 0, len(set(names)) == len(names))


def require_agreement(results: Iterable[RunResult]) -> None:
    """All runs' decided values form one consistent consensus value per
    run (cross-run values may differ)."""
    for result in results:
        values = {v for v in result.outputs if v is not None}
        if len(values) > 1:
            raise SafetyViolation(f"split decision: {result.outputs}")
