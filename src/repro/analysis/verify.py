"""Run verifiers shared by tests, examples, and benchmark harnesses."""

from __future__ import annotations

from typing import Iterable

from ..core.run import RunResult
from ..core.system import INPUT_REGISTER_PREFIX
from ..core.task import Task
from ..errors import SafetyViolation, SpecificationError, TraceHazard
from ..runtime import ops
from ..runtime.trace import Trace


def verify_run(
    result: RunResult, task: Task, *, strict: bool = False
) -> RunResult:
    """Wait-freedom obligation + task relation; returns the result for
    chaining.

    With ``strict=True`` the run must carry a trace, and the lint trace
    analyzer additionally requires it to be free of lost-update and
    snapshot-linearizability hazards (:mod:`repro.lint.trace_rules`) —
    raising :class:`~repro.errors.TraceHazard` otherwise.  Hazards are
    expected in runs *outside* an algorithm's concurrency envelope, so
    strict mode is opt-in.
    """
    result.require_all_decided().require_satisfies(task)
    if strict:
        if result.trace is None:
            raise SpecificationError(
                "strict verification needs a traced run; execute with "
                "trace=True"
            )
        from ..lint.trace_rules import analyze_trace

        findings = analyze_trace(result.trace)
        if findings:
            rendered = "; ".join(f.render() for f in findings)
            raise TraceHazard(
                f"{len(findings)} trace hazard(s): {rendered}",
                findings=tuple(findings),
            )
    return result


def max_concurrent_undecided(trace: Trace) -> int:
    """Largest number of participating-but-undecided C-processes at any
    point of a traced run — the quantity k-concurrency bounds.

    A C-process *participates* from the moment it writes its input
    register (its mandated first step).  C-processes appearing in the
    trace without an input write — reduction drivers running on behalf
    of others, or processes of a synthetic trace — never count, matching
    the paper's definition of k-concurrency over participants.
    """
    participating: set[int] = set()
    decided: set[int] = set()
    peak = 0
    for event in trace:
        if event.pid.is_computation:
            if (
                isinstance(event.op, ops.Write)
                and event.op.register
                == f"{INPUT_REGISTER_PREFIX}{event.pid.index}"
            ):
                participating.add(event.pid.index)
            if isinstance(event.op, ops.Decide):
                decided.add(event.pid.index)
        peak = max(peak, len(participating - decided))
    return peak


def distinct_decisions(result: RunResult) -> int:
    """Number of distinct decided values (the k-set agreement metric)."""
    return len({v for v in result.outputs if v is not None})


def renaming_summary(result: RunResult) -> tuple[int, bool]:
    """(largest name used, all names distinct)."""
    names = [v for v in result.outputs if v is not None]
    return (max(names) if names else 0, len(set(names)) == len(names))


def require_agreement(results: Iterable[RunResult]) -> None:
    """All runs' decided values form one consistent consensus value per
    run (cross-run values may differ)."""
    for result in results:
        values = {v for v in result.outputs if v is not None}
        if len(values) > 1:
            raise SafetyViolation(f"split decision: {result.outputs}")
