"""Run verification and experiment reporting."""

from .reporting import ExperimentRecord, format_report
from .traceview import (
    format_ledger,
    format_lanes,
    register_traffic,
    summarize,
)
from .verify import (
    distinct_decisions,
    max_concurrent_undecided,
    renaming_summary,
    require_agreement,
    verify_run,
)

__all__ = [
    "ExperimentRecord",
    "format_report",
    "format_ledger",
    "format_lanes",
    "register_traffic",
    "summarize",
    "distinct_decisions",
    "max_concurrent_undecided",
    "renaming_summary",
    "require_agreement",
    "verify_run",
]
