"""Concurrency control over runs: k-concurrency and personified runs.

Section 2.2 of the paper: a run is *k-concurrent* if it is fair and at
every time there are at most ``k`` undecided participating C-processes.
We realize this as a candidate filter wrapped around any scheduler: a
C-process that has not yet taken its first step is admitted only while
fewer than ``k`` admitted C-processes are undecided.

Section 2.3's *personified* runs (C-process ``p_i`` crashes exactly when
its S-counterpart ``q_i`` does) are another candidate filter.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.failures import FailurePattern
from ..core.process import ProcessId, ProcessKind
from ..errors import SchedulingError
from .scheduler import Scheduler, SchedulerView

CandidateFilter = Callable[[SchedulerView], tuple[ProcessId, ...]]


class FilteredScheduler(Scheduler):
    """Applies candidate filters, then delegates to the inner scheduler."""

    def __init__(self, inner: Scheduler, *filters: CandidateFilter) -> None:
        self._inner = inner
        self._filters = filters

    def next(self, view: SchedulerView) -> ProcessId:
        candidates = view.candidates
        for f in self._filters:
            filtered = f(
                SchedulerView(
                    time=view.time,
                    candidates=candidates,
                    started=view.started,
                    decided=view.decided,
                    participants=view.participants,
                )
            )
            candidates = tuple(filtered)
        if not candidates:
            raise SchedulingError("all candidates filtered out")
        return self._inner.next(
            SchedulerView(
                time=view.time,
                candidates=candidates,
                started=view.started,
                decided=view.decided,
                participants=view.participants,
            )
        )


class KConcurrencyFilter:
    """Admits new C-processes only while fewer than ``k`` admitted
    C-processes are undecided.

    Args:
        k: the concurrency bound.
        arrival_order: optional explicit order in which fresh C-processes
            may arrive (indices).  Without it any unstarted process may
            arrive when there is room, which together with a random inner
            scheduler explores many k-concurrent arrival patterns.
    """

    def __init__(self, k: int, arrival_order: Sequence[int] | None = None):
        if k < 1:
            raise SchedulingError(f"concurrency level must be >= 1, got {k}")
        self.k = k
        self.arrival_order = list(arrival_order) if arrival_order else None

    def __call__(self, view: SchedulerView) -> tuple[ProcessId, ...]:
        undecided_started = view.started - view.decided
        room = len(undecided_started) < self.k
        next_arrival: int | None = None
        if self.arrival_order is not None:
            remaining = [
                i for i in self.arrival_order if i not in view.started
            ]
            next_arrival = remaining[0] if remaining else None
        kept: list[ProcessId] = []
        for pid in view.candidates:
            if pid.kind is not ProcessKind.COMPUTATION:
                kept.append(pid)
            elif pid.index in view.started:
                kept.append(pid)
            elif room and (next_arrival is None or pid.index == next_arrival):
                kept.append(pid)
        return tuple(kept)


class PersonifiedFilter:
    """Crashes C-process ``p_i`` exactly when S-process ``q_i`` crashes
    (Section 2.3): after ``q_i``'s crash time, ``p_i`` is never scheduled."""

    def __init__(self, pattern: FailurePattern) -> None:
        self.pattern = pattern

    def __call__(self, view: SchedulerView) -> tuple[ProcessId, ...]:
        return tuple(
            pid
            for pid in view.candidates
            if pid.kind is not ProcessKind.COMPUTATION
            or self.pattern.is_alive(pid.index, view.time)
        )


def k_concurrent(
    inner: Scheduler, k: int, arrival_order: Sequence[int] | None = None
) -> FilteredScheduler:
    """Convenience: wrap ``inner`` with a :class:`KConcurrencyFilter`."""
    return FilteredScheduler(inner, KConcurrencyFilter(k, arrival_order))


def personified(inner: Scheduler, pattern: FailurePattern) -> FilteredScheduler:
    """Convenience: wrap ``inner`` with a :class:`PersonifiedFilter`."""
    return FilteredScheduler(inner, PersonifiedFilter(pattern))
