"""Schedulers: who takes the next step.

The paper quantifies over all *fair* runs (every correct S-process takes
infinitely many steps; at least one C-process does).  A scheduler here
produces one admissible interleaving; the test suite sweeps over many —
round-robin, seeded-random, and adversarial schedules that starve chosen
victims for long bursts — because every safety property claimed by the
paper is universal over schedules.

A scheduler sees a :class:`SchedulerView` (the candidates it may pick
from plus progress bookkeeping) and returns one process id.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..core.process import ProcessId
from ..errors import SchedulingError


@dataclass(frozen=True)
class SchedulerView:
    """What a scheduler may observe when choosing the next step.

    Attributes:
        time: current global time (equals the step index; the paper's
            ``T[k]`` is non-decreasing, and the identity works).
        candidates: process ids that are schedulable right now — live
            S-processes, plus participating C-processes that have not
            decided (and, under a concurrency gate, admitted ones).
        started: C-process indices that have taken at least one step.
        decided: C-process indices that have decided.
        participants: C-process indices with a non-bottom input.
    """

    time: int
    candidates: tuple[ProcessId, ...]
    started: frozenset[int]
    decided: frozenset[int]
    participants: frozenset[int]


class Scheduler(ABC):
    """Base class; subclasses implement :meth:`next`."""

    @abstractmethod
    def next(self, view: SchedulerView) -> ProcessId:
        """Pick one of ``view.candidates``."""

    @staticmethod
    def _require(view: SchedulerView) -> None:
        if not view.candidates:
            raise SchedulingError("no schedulable process")


class RoundRobinScheduler(Scheduler):
    """Cycles through all processes in a fixed order, skipping the
    currently non-schedulable ones.  Maximally fair."""

    def __init__(self) -> None:
        self._cursor = 0
        self._last_cands: tuple[ProcessId, ...] | None = None
        self._last_sorted: list[ProcessId] = []

    def next(self, view: SchedulerView) -> ProcessId:
        self._require(view)
        # Identity-keyed sort cache: callers that reuse one candidates
        # tuple across steps (the compiled kernel's batched lanes) skip
        # the per-step re-sort; a fresh tuple always misses.  Holding
        # the key tuple keeps its id() from being recycled.
        cands = view.candidates
        if cands is not self._last_cands:
            self._last_cands = cands
            self._last_sorted = sorted(cands)
        ordered = self._last_sorted
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice


class SeededRandomScheduler(Scheduler):
    """Uniformly random among candidates, reproducible via the seed."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._last_cands: tuple[ProcessId, ...] | None = None
        self._last_sorted: list[ProcessId] = []

    def next(self, view: SchedulerView) -> ProcessId:
        self._require(view)
        cands = view.candidates
        if cands is not self._last_cands:  # identity cache, as above
            self._last_cands = cands
            self._last_sorted = sorted(cands)
        return self._rng.choice(self._last_sorted)


class AdversarialScheduler(Scheduler):
    """Starves a victim set: victims get one step every ``period`` turns,
    everyone else round-robins in between.

    This is the classic "slow process" adversary; with a large period it
    approximates, in a finite run, processes that take only finitely many
    steps — exactly the situations wait-freedom must survive.
    """

    def __init__(self, victims: Sequence[ProcessId], period: int = 25) -> None:
        if period < 2:
            raise SchedulingError("period must be at least 2")
        self.victims = frozenset(victims)
        self.period = period
        self._turn = 0
        self._victim_cursor = 0
        self._fallback = RoundRobinScheduler()

    def next(self, view: SchedulerView) -> ProcessId:
        self._require(view)
        self._turn += 1
        victims = sorted(c for c in view.candidates if c in self.victims)
        others = tuple(c for c in view.candidates if c not in self.victims)
        if victims and (self._turn % self.period == 0 or not others):
            # Rotate among victims with a dedicated cursor: indexing by
            # `_turn` would pin one victim forever whenever the period
            # divides evenly into the victim count (turn is a multiple of
            # the period on every victim turn), starving the others.
            choice = victims[self._victim_cursor % len(victims)]
            self._victim_cursor += 1
            return choice
        narrowed = SchedulerView(
            time=view.time,
            candidates=others,
            started=view.started,
            decided=view.decided,
            participants=view.participants,
        )
        return self._fallback.next(narrowed)


class ExplicitScheduler(Scheduler):
    """Follows a predetermined sequence of process ids; used by the
    exhaustive model checker and by deterministic regression tests.

    When the sequence is exhausted, or names a non-schedulable process,
    behaviour is controlled by ``strict``: raise (default) or fall back
    to round-robin.
    """

    def __init__(self, sequence: Sequence[ProcessId], *, strict: bool = True):
        self._sequence = list(sequence)
        self._pos = 0
        self.strict = strict
        self._fallback = RoundRobinScheduler()

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._sequence)

    def next(self, view: SchedulerView) -> ProcessId:
        self._require(view)
        while self._pos < len(self._sequence):
            pid = self._sequence[self._pos]
            self._pos += 1
            if pid in view.candidates:
                return pid
            if self.strict:
                raise SchedulingError(
                    f"{pid} named by the explicit schedule is not schedulable"
                )
        if self.strict:
            raise SchedulingError("explicit schedule exhausted")
        return self._fallback.next(view)


class RecordingScheduler(Scheduler):
    """Wraps another scheduler and records every choice it makes.

    The recorded sequence, replayed through an :class:`ExplicitScheduler`,
    reproduces the interleaving deterministically — the hook the chaos
    engine's counterexample shrinking and repro bundles are built on.
    """

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.picks: list[ProcessId] = []

    def next(self, view: SchedulerView) -> ProcessId:
        choice = self.inner.next(view)
        self.picks.append(choice)
        return choice


class PrioritizedScheduler(Scheduler):
    """Always schedules the highest-priority schedulable process.

    ``priority`` maps process ids to smaller-is-first ranks; unknown ids
    get rank ``default``.  Useful for constructing solo and near-solo
    executions.
    """

    def __init__(self, priority: dict[ProcessId, int], default: int = 1000):
        self._priority = dict(priority)
        self._default = default

    def next(self, view: SchedulerView) -> ProcessId:
        self._require(view)
        return min(
            view.candidates,
            key=lambda pid: (self._priority.get(pid, self._default), pid),
        )


def standard_scheduler_suite(
    pids: Sequence[ProcessId], *, seeds: Sequence[int] = (0, 1, 2)
) -> list[Scheduler]:
    """The scheduler battery used across the integration tests: one
    round-robin, several seeded-random, and one adversarial run per
    process (that process as the victim)."""
    suite: list[Scheduler] = [RoundRobinScheduler()]
    suite.extend(SeededRandomScheduler(seed) for seed in seeds)
    suite.extend(AdversarialScheduler([pid], period=17) for pid in pids)
    return suite
