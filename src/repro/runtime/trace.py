"""Structured execution traces.

Traces are optional (they cost memory) but are what most assertions in
the test suite inspect: which process took which operation at which time,
and with what result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.process import ProcessId


@dataclass(frozen=True)
class TraceEvent:
    """One executed step."""

    time: int
    pid: ProcessId
    op: Any
    result: Any


class Trace:
    """An append-only sequence of :class:`TraceEvent`."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def steps_of(self, pid: ProcessId) -> list[TraceEvent]:
        return [e for e in self.events if e.pid == pid]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
