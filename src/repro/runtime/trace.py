"""Structured execution traces.

Traces are optional (they cost memory) but are what most assertions in
the test suite inspect: which process took which operation at which time,
and with what result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.process import ProcessId


@dataclass(frozen=True)
class TraceEvent:
    """One executed step."""

    time: int
    pid: ProcessId
    op: Any
    result: Any


class Trace:
    """An append-only sequence of :class:`TraceEvent`.

    Callers on hot paths should check :attr:`enabled` *before*
    constructing a :class:`TraceEvent` — the executor does — so that a
    disabled trace costs neither the allocation nor the call.
    :meth:`record` keeps its own guard as a backstop for callers that
    construct events unconditionally.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def steps_of(self, pid: ProcessId) -> list[TraceEvent]:
        return [e for e in self.events if e.pid == pid]

    def writes_to(self, register: str) -> list[TraceEvent]:
        """Events that wrote ``register`` (plain writes and successful
        compare-and-swaps), in trace order."""
        from . import ops

        out = []
        for event in self.events:
            if isinstance(event.op, ops.Write) and (
                event.op.register == register
            ):
                out.append(event)
            elif isinstance(event.op, ops.CompareAndSwap) and (
                event.op.register == register
                and event.result == event.op.expected
            ):
                out.append(event)
        return out

    def participating_c(self) -> frozenset[int]:
        """Indices of C-processes that *participated* in the traced run.

        Participation is the paper's notion: a C-process participates
        once it has written its input register (its mandated first
        step).  A C-process appearing in the trace with other steps but
        no input write — a reduction driver, or a synthetic trace — is
        not a participant.
        """
        from . import ops
        from ..core.system import INPUT_REGISTER_PREFIX

        participants = set()
        for event in self.events:
            if (
                event.pid.is_computation
                and isinstance(event.op, ops.Write)
                and event.op.register
                == f"{INPUT_REGISTER_PREFIX}{event.pid.index}"
            ):
                participants.add(event.pid.index)
        return frozenset(participants)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
