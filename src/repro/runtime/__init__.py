"""Execution substrate: operations, schedulers, concurrency gates, executor."""

from . import ops
from .concurrency import (
    FilteredScheduler,
    KConcurrencyFilter,
    PersonifiedFilter,
    k_concurrent,
    personified,
)
from .executor import Executor, execute
from .scheduler import (
    AdversarialScheduler,
    ExplicitScheduler,
    PrioritizedScheduler,
    RecordingScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulerView,
    SeededRandomScheduler,
    standard_scheduler_suite,
)
from .trace import Trace, TraceEvent

__all__ = [
    "ops",
    "FilteredScheduler",
    "KConcurrencyFilter",
    "PersonifiedFilter",
    "k_concurrent",
    "personified",
    "Executor",
    "execute",
    "AdversarialScheduler",
    "ExplicitScheduler",
    "PrioritizedScheduler",
    "RecordingScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SchedulerView",
    "SeededRandomScheduler",
    "standard_scheduler_suite",
    "Trace",
    "TraceEvent",
]
