"""The run loop: executes a :class:`~repro.core.system.System` under a
scheduler, producing a :class:`~repro.core.run.RunResult`.

Step semantics (paper Section 2.1): the k-th step of the run belongs to
the process the schedule names; an S-process can be scheduled only while
alive in the failure pattern; a failure-detector query at time ``t``
returns ``H(q, t)``.  Time equals the step index.

Mechanics: each automaton is a generator.  At every scheduled step the
executor atomically performs the operation the generator most recently
yielded, then resumes the generator with the result so it can compute
(locally, in zero time) the operation for its *next* step.  The first
step of a C-process writes its task input to ``inp/<i>``, exactly as the
paper stipulates, before the automaton's own operations begin.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.process import ProcessId, c_process, s_process
from ..core.run import RunResult
from ..core.system import System, input_register
from ..errors import ProtocolError, SchedulingError
from ..memory.registers import RegisterFile, apply_operation
from . import ops
from .scheduler import Scheduler, SchedulerView
from .trace import Trace, TraceEvent


class _ProcessSlot:
    """Runtime state of one process."""

    __slots__ = ("pid", "generator", "pending", "halted", "started", "steps")

    def __init__(self, pid: ProcessId, generator) -> None:
        self.pid = pid
        self.generator = generator
        self.pending: Any = None
        self.halted = False
        self.started = False
        self.steps = 0

    def prime(self) -> None:
        """Obtain the first operation (local computation, takes no step)."""
        try:
            self.pending = next(self.generator)
        except StopIteration:
            self.halted = True

    def resume(self, result: Any) -> None:
        try:
            self.pending = self.generator.send(result)
        except StopIteration:
            self.halted = True
            self.pending = None


class Executor:
    """Drives one system to completion.

    Args:
        system: the system to execute.
        scheduler: picks the process for each step.
        max_steps: liveness budget; executions stop with reason
            ``"budget"`` when it is exhausted.
        trace: record a full :class:`~repro.runtime.trace.Trace`.
        stop_when: optional predicate over the executor; when it returns
            true the run stops with reason ``"predicate"``.  Used by
            reduction algorithms that never "decide".
    """

    def __init__(
        self,
        system: System,
        scheduler: Scheduler,
        *,
        max_steps: int = 200_000,
        trace: bool = False,
        stop_when: Callable[["Executor"], bool] | None = None,
    ) -> None:
        self.system = system
        self.scheduler = scheduler
        self.max_steps = max_steps
        self.stop_when = stop_when
        self.memory = RegisterFile()
        self.trace = Trace(enabled=trace)
        self.time = 0
        self.decisions: dict[int, Any] = {}
        self._slots: dict[ProcessId, _ProcessSlot] = {}
        for i in range(system.n_c):
            pid = c_process(i)
            slot = _ProcessSlot(
                pid, system.c_factories[i](system.context_for(pid))
            )
            self._slots[pid] = slot
        for i in range(system.n_s):
            pid = s_process(i)
            slot = _ProcessSlot(
                pid, system.s_factories[i](system.context_for(pid))
            )
            slot.prime()
            self._slots[pid] = slot

    # -- observation ----------------------------------------------------

    @property
    def started_c(self) -> frozenset[int]:
        return frozenset(
            pid.index
            for pid, slot in self._slots.items()
            if pid.is_computation and slot.started
        )

    @property
    def decided_c(self) -> frozenset[int]:
        return frozenset(self.decisions)

    def schedulable(self) -> tuple[ProcessId, ...]:
        """Processes that may legally take the next step."""
        out: list[ProcessId] = []
        for pid, slot in sorted(self._slots.items()):
            if slot.halted:
                continue
            if pid.is_computation:
                if self.system.inputs[pid.index] is None:
                    continue  # non-participant: takes no steps
                if pid.index in self.decisions:
                    continue  # remaining steps would be null steps
                out.append(pid)
            else:
                if self.system.pattern.is_alive(pid.index, self.time):
                    out.append(pid)
        return tuple(out)

    def view(self) -> SchedulerView:
        return SchedulerView(
            time=self.time,
            candidates=self.schedulable(),
            started=self.started_c,
            decided=self.decided_c,
            participants=self.system.participants,
        )

    # -- stepping ---------------------------------------------------------

    def step(self, pid: ProcessId) -> None:
        """Execute one step of ``pid`` (must currently be schedulable)."""
        slot = self._slots.get(pid)
        if slot is None:
            raise SchedulingError(f"unknown process {pid}")
        if pid not in self.schedulable():
            raise SchedulingError(f"{pid} is not schedulable at t={self.time}")
        if pid.is_computation and not slot.started:
            # The paper: the first step of a C-process writes its input.
            slot.started = True
            value = self.system.inputs[pid.index]
            self.memory.write(input_register(pid.index), value)
            slot.prime()
            self.trace.record(
                TraceEvent(
                    self.time,
                    pid,
                    ops.Write(input_register(pid.index), value),
                    None,
                )
            )
        else:
            op = slot.pending
            result = self._perform(pid, op)
            self.trace.record(TraceEvent(self.time, pid, op, result))
            if isinstance(op, ops.Decide):
                slot.halted = True
            else:
                slot.resume(result)
        slot.steps += 1
        self.time += 1

    def _perform(self, pid: ProcessId, op: Any) -> Any:
        if op is None:
            raise ProtocolError(f"{pid} has no pending operation")
        if isinstance(op, ops.QueryFD):
            if pid.is_computation:
                raise ProtocolError("C-processes cannot query the detector")
            return self.system.history.value(pid.index, self.time)
        if isinstance(op, ops.Decide):
            if pid.is_synchronization:
                raise ProtocolError("S-processes cannot decide")
            self.decisions[pid.index] = op.value
            return None
        if isinstance(
            op, (ops.Read, ops.Write, ops.Snapshot, ops.CompareAndSwap, ops.Nop)
        ):
            return apply_operation(self.memory, op)
        raise ProtocolError(f"{pid} yielded a non-operation: {op!r}")

    # -- driving -----------------------------------------------------------

    def run(self) -> RunResult:
        """Run under the scheduler until everyone decided, the stop
        predicate fires, the budget is exhausted, nothing remains
        schedulable (``"halted"``), or the scheduler itself gives up
        while candidates remain (``"schedule_exhausted"``, e.g. a strict
        explicit schedule running out of entries)."""
        reason = "budget"
        while self.time < self.max_steps:
            if self.system.participants <= self.decided_c:
                reason = "all_decided"
                break
            if self.stop_when is not None and self.stop_when(self):
                reason = "predicate"
                break
            candidates = self.schedulable()
            if not candidates:
                reason = "halted"
                break
            try:
                pid = self.scheduler.next(self.view())
            except SchedulingError:
                reason = "schedule_exhausted"
                break
            self.step(pid)
        return self._result(reason)

    def _budget_digest(self) -> str:
        """One-line per-process account of a budget-exhausted run."""
        undecided = sorted(self.system.participants - self.decided_c)
        per_process = (
            ", ".join(
                f"p{i + 1}({self._slots[c_process(i)].steps} steps)"
                for i in undecided
            )
            or "none"
        )
        s_steps = sum(
            slot.steps
            for pid, slot in self._slots.items()
            if pid.is_synchronization
        )
        return (
            f"budget {self.max_steps} exhausted: "
            f"decided {len(self.decided_c)}/{len(self.system.participants)} "
            f"participants; undecided: {per_process}; "
            f"S-process steps: {s_steps}"
        )

    def _result(self, reason: str) -> RunResult:
        outputs = tuple(
            self.decisions.get(i) for i in range(self.system.n_c)
        )
        extras: dict[str, Any] = {}
        if reason == "budget":
            extras["budget_digest"] = self._budget_digest()
        return RunResult(
            inputs=self.system.inputs,
            outputs=outputs,
            participants=self.started_c,
            steps=self.time,
            step_counts={
                pid: slot.steps for pid, slot in self._slots.items()
            },
            reason=reason,
            pattern=self.system.pattern,
            memory=self.memory,
            trace=self.trace if self.trace.enabled else None,
            extras=extras,
        )


def execute(
    system: System,
    scheduler: Scheduler,
    *,
    max_steps: int = 200_000,
    trace: bool = False,
    stop_when: Callable[[Executor], bool] | None = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(
        system,
        scheduler,
        max_steps=max_steps,
        trace=trace,
        stop_when=stop_when,
    ).run()
