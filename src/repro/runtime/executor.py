"""The run loop: executes a :class:`~repro.core.system.System` under a
scheduler, producing a :class:`~repro.core.run.RunResult`.

Step semantics (paper Section 2.1): the k-th step of the run belongs to
the process the schedule names; an S-process can be scheduled only while
alive in the failure pattern; a failure-detector query at time ``t``
returns ``H(q, t)``.  Time equals the step index.

Mechanics: each automaton is a generator.  At every scheduled step the
executor atomically performs the operation the generator most recently
yielded, then resumes the generator with the result so it can compute
(locally, in zero time) the operation for its *next* step.  The first
step of a C-process writes its task input to ``inp/<i>``, exactly as the
paper stipulates, before the automaton's own operations begin.

Performance notes
-----------------
The schedulable set is maintained *incrementally*.  Membership only ever
shrinks during a run — a C-process leaves when it decides or its
generator halts, an S-process when its generator halts or its crash time
(precomputed by :meth:`FailurePattern.crash_transitions`) is reached —
so the executor keeps a sorted candidate list and retires processes from
it instead of re-deriving and re-sorting the whole set three times per
step.  ``started_c``/``decided_c`` frozensets are cached and
invalidated only when they actually change, trace events are only
allocated when tracing is on, and :meth:`run` drives steps through the
trusted :meth:`step_trusted` path, skipping the schedulability
re-validation it performed itself.

For checkpointed exploration (:mod:`repro.checker.explorer`), an
executor constructed with ``record_results=True`` keeps each process's
sequence of operation results; :meth:`checkpoint` captures the full
execution state (memory via an O(1) copy-on-write clone) and
:meth:`restore` rebuilds an equivalent executor by replaying each
generator against its recorded results — pure local computation, far
cheaper than re-running the schedule through the full step machinery.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Callable

from ..core.process import ProcessId, c_process, s_process
from ..core.run import RunResult
from ..core.system import System, input_register
from ..errors import ProtocolError, SchedulingError
from ..memory.registers import RegisterFile
from . import ops
from .scheduler import Scheduler, SchedulerView
from .trace import Trace, TraceEvent


class _ProcessSlot:
    """Runtime state of one process."""

    __slots__ = (
        "pid", "generator", "pending", "halted", "started", "steps",
        "result_log", "op_log",
    )

    def __init__(self, pid: ProcessId, generator) -> None:
        self.pid = pid
        self.generator = generator
        self.pending: Any = None
        self.halted = False
        self.started = False
        self.steps = 0
        self.result_log: list[Any] | None = None
        #: operations the automaton actually executed, in order
        #: (``record_ops`` only; the mandated input write is implied by
        #: ``started`` and is not recorded).  Symmetry reduction compares
        #: these logs to decide whether two processes are interchangeable.
        self.op_log: list[Any] | None = None

    def prime(self) -> None:
        """Obtain the first operation (local computation, takes no step)."""
        try:
            self.pending = next(self.generator)
        except StopIteration:
            self.halted = True

    def resume(self, result: Any) -> None:
        try:
            self.pending = self.generator.send(result)
        except StopIteration:
            self.halted = True
            self.pending = None


@dataclass(frozen=True)
class ExecutorCheckpoint:
    """Restorable execution state captured by :meth:`Executor.checkpoint`.

    Generators cannot be forked, so a checkpoint stores what *determines*
    them instead: per-process result logs.  :meth:`Executor.restore`
    rebuilds fresh generators and fast-forwards each one by replaying its
    log — deterministic local computation that never touches shared
    memory, the detector, or the scheduler.
    """

    time: int
    memory: RegisterFile
    decisions: tuple[tuple[int, Any], ...]
    #: per process: (pid, started, halted, steps, log ref, log length,
    #: op-log ref, op-log length).  The log references alias the live
    #: executor's append-only logs; only their first ``length`` entries
    #: belong to this checkpoint.  Appends never invalidate a captured
    #: prefix, which is what makes taking a checkpoint O(#processes)
    #: rather than O(steps).  The op-log pair is ``(None, 0)`` unless the
    #: executor records operations.
    slots: tuple[
        tuple[ProcessId, bool, bool, int, list[Any], int, Any, int], ...
    ]
    #: derived state captured so :meth:`Executor.restore` does not have
    #: to recompute it: the schedulable list, the crash-queue position,
    #: and the decided output vector.
    schedulable: tuple[ProcessId, ...]
    crash_pos: int
    decided_vector: tuple[Any, ...]


class Executor:
    """Drives one system to completion.

    Args:
        system: the system to execute.
        scheduler: picks the process for each step.
        max_steps: liveness budget; executions stop with reason
            ``"budget"`` when it is exhausted.
        trace: record a full :class:`~repro.runtime.trace.Trace`.
        stop_when: optional predicate over the executor; when it returns
            true the run stops with reason ``"predicate"``.  Used by
            reduction algorithms that never "decide".
        record_results: keep per-process operation-result logs so the
            executor can be checkpointed (see :meth:`checkpoint`).
        record_ops: additionally keep per-process logs of the operations
            actually executed (requires ``record_results``); the
            explorer's symmetry reduction compares these to recognize
            interchangeable processes.
    """

    def __init__(
        self,
        system: System,
        scheduler: Scheduler,
        *,
        max_steps: int = 200_000,
        trace: bool = False,
        stop_when: Callable[["Executor"], bool] | None = None,
        record_results: bool = False,
        record_ops: bool = False,
    ) -> None:
        if record_ops and not record_results:
            raise ProtocolError("record_ops requires record_results")
        self.system = system
        self.scheduler = scheduler
        self.max_steps = max_steps
        self.stop_when = stop_when
        self.memory = RegisterFile()
        self.trace = Trace(enabled=trace)
        self.time = 0
        self.decisions: dict[int, Any] = {}
        self.record_results = record_results
        self.record_ops = record_ops
        self._slots: dict[ProcessId, _ProcessSlot] = {}
        # Insertion order is the canonical sorted order (all C before S,
        # then by index), which keeps the schedulable list sorted for free.
        for i in range(system.n_c):
            pid = c_process(i)
            slot = _ProcessSlot(
                pid, system.c_factories[i](system.context_for(pid))
            )
            self._slots[pid] = slot
        for i in range(system.n_s):
            pid = s_process(i)
            slot = _ProcessSlot(
                pid, system.s_factories[i](system.context_for(pid))
            )
            slot.prime()
            self._slots[pid] = slot
        if record_results:
            for slot in self._slots.values():
                slot.result_log = []
                if record_ops:
                    slot.op_log = []
        # -- incremental schedulability state --------------------------
        self._started: set[int] = set()
        self._started_frozen: frozenset[int] | None = frozenset()
        self._decided_frozen: frozenset[int] | None = frozenset()
        self._decided_vector: tuple[Any, ...] | None = None
        self._undecided: set[int] = set(system.participants)
        self._crash_queue = system.pattern.crash_transitions
        self._crash_pos = 0
        self._schedulable: list[ProcessId] = []
        self._schedulable_tuple: tuple[ProcessId, ...] | None = None
        self._rebuild_schedulable()

    # -- observation ----------------------------------------------------

    @property
    def started_c(self) -> frozenset[int]:
        if self._started_frozen is None:
            self._started_frozen = frozenset(self._started)
        return self._started_frozen

    @property
    def decided_c(self) -> frozenset[int]:
        if self._decided_frozen is None:
            self._decided_frozen = frozenset(self.decisions)
        return self._decided_frozen

    def decided_vector(self) -> tuple:
        """The output vector so far (``None`` for undecided processes),
        cached between decide steps — decisions are the rarest event in
        a run, so per-node safety verdicts can key caches on this."""
        if self._decided_vector is None:
            decisions = self.decisions
            self._decided_vector = tuple(
                decisions.get(i) for i in range(self.system.n_c)
            )
        return self._decided_vector

    def peek(self, pid: ProcessId) -> Any:
        """The operation ``pid`` would perform on its next step, without
        stepping — its read/write/query footprint for partial-order
        reduction.

        For a C-process that has not started, this is the mandated
        first-step write of its task input.  For a lazily-restored slot
        that never stepped, the generator is materialized here (pure
        local computation; see :meth:`restore`).  Returns ``None`` for a
        halted process.
        """
        slot = self._slots[pid]
        if pid.is_computation and not slot.started:
            return ops.Write(
                input_register(pid.index), self.system.inputs[pid.index]
            )
        if slot.generator is None and not slot.halted:
            self._materialize(slot)
        return slot.pending

    def slot_view(self, pid: ProcessId) -> tuple:
        """Snapshot of one process's execution history, for symmetry
        comparisons: ``(started, halted, steps, result log, op log)``.
        The logs are the live lists — callers must not mutate them."""
        slot = self._slots[pid]
        return (
            slot.started, slot.halted, slot.steps,
            slot.result_log, slot.op_log,
        )

    def crashes_pending(self) -> bool:
        """Whether the failure pattern still holds crash transitions at
        or after the current time.  While it does, step reordering is
        unsound (which S-steps a crash boundary cuts off depends on the
        order), so the explorer's POR layer disables itself."""
        return self._crash_pos < len(self._crash_queue)

    def schedulable(self) -> tuple[ProcessId, ...]:
        """Processes that may legally take the next step, in canonical
        sorted order (all C-processes before all S-processes)."""
        if self._schedulable_tuple is None:
            self._schedulable_tuple = tuple(self._schedulable)
        return self._schedulable_tuple

    def view(self) -> SchedulerView:
        return SchedulerView(
            time=self.time,
            candidates=self.schedulable(),
            started=self.started_c,
            decided=self.decided_c,
            participants=self.system.participants,
        )

    # -- incremental schedulability maintenance -------------------------

    def _rebuild_schedulable(self) -> None:
        """Recompute the candidate list from scratch (construction only;
        steps maintain it incrementally and checkpoints carry it)."""
        self._crash_pos = bisect_right(
            self._crash_queue, (self.time, float("inf"))
        )
        crashed = {
            index
            for when, index in self._crash_queue[: self._crash_pos]
        }
        out: list[ProcessId] = []
        for pid, slot in self._slots.items():  # already in sorted order
            if slot.halted:
                continue
            if pid.is_computation:
                if self.system.inputs[pid.index] is None:
                    continue  # non-participant: takes no steps
                if pid.index in self.decisions:
                    continue  # remaining steps would be null steps
            elif pid.index in crashed:
                continue
            out.append(pid)
        self._schedulable = out
        self._schedulable_tuple = None

    def _retire(self, pid: ProcessId) -> None:
        """Remove ``pid`` from the schedulable list (it never returns:
        candidates only ever leave the set during a run)."""
        try:
            self._schedulable.remove(pid)
        except ValueError:
            pass
        self._schedulable_tuple = None

    def _advance_time(self) -> None:
        self.time += 1
        queue = self._crash_queue
        pos = self._crash_pos
        while pos < len(queue) and queue[pos][0] <= self.time:
            self._retire(s_process(queue[pos][1]))
            pos += 1
        self._crash_pos = pos

    # -- stepping ---------------------------------------------------------

    def step(self, pid: ProcessId) -> None:
        """Execute one step of ``pid`` (must currently be schedulable)."""
        slot = self._slots.get(pid)
        if slot is None:
            raise SchedulingError(f"unknown process {pid}")
        if pid not in self._schedulable:
            raise SchedulingError(f"{pid} is not schedulable at t={self.time}")
        self._step(pid, slot)

    def step_trusted(self, pid: ProcessId) -> None:
        """Trusted-caller step path: the caller guarantees ``pid`` is
        currently schedulable (e.g. it was just taken from
        :meth:`schedulable`, as :meth:`run` and the exhaustive explorer
        do), so the membership re-check is skipped."""
        self._step(pid, self._slots[pid])

    def _materialize(self, slot: _ProcessSlot) -> None:
        """Build the generator of a lazily-restored, never-stepped slot
        (see :meth:`restore`).  Deterministic: the slot took no steps in
        the checkpointed run, so a fresh generator is in the same state
        its original was in."""
        pid = slot.pid
        system = self.system
        if pid.is_computation:
            slot.generator = system.c_factories[pid.index](
                system.context_for(pid)
            )
        else:
            slot.generator = system.s_factories[pid.index](
                system.context_for(pid)
            )
            slot.prime()
            if slot.halted:  # unreachable for replayed slots; keep sane
                self._retire(pid)

    def _step(self, pid: ProcessId, slot: _ProcessSlot) -> None:
        if slot.generator is None:
            self._materialize(slot)
        if pid.is_computation and not slot.started:
            # The paper: the first step of a C-process writes its input.
            slot.started = True
            self._started.add(pid.index)
            self._started_frozen = None
            value = self.system.inputs[pid.index]
            self.memory.write(input_register(pid.index), value)
            slot.prime()
            if slot.halted:
                self._retire(pid)
            if self.trace.enabled:
                self.trace.record(
                    TraceEvent(
                        self.time,
                        pid,
                        ops.Write(input_register(pid.index), value),
                        None,
                    )
                )
        else:
            op = slot.pending
            op_type = type(op)
            # Exact-type dispatch, most frequent operations first; the
            # final branch falls back to the generic path.
            if op_type is ops.Write:
                self.memory.write(op.register, op.value)
                result = None
            elif op_type is ops.Read:
                result = self.memory.read(op.register)
            elif op_type is ops.Snapshot:
                result = self.memory.snapshot(op.prefix)
            elif op_type is ops.Nop:
                result = None
            elif op_type is ops.QueryFD:
                if pid.is_computation:
                    raise ProtocolError(
                        "C-processes cannot query the detector"
                    )
                result = self.system.history.value(pid.index, self.time)
            elif op_type is ops.CompareAndSwap:
                result = self.memory.compare_and_swap(
                    op.register, op.expected, op.new
                )
            elif op_type is ops.Decide:
                self._decide(pid, slot, op)
                return
            else:
                result = self._perform(pid, op)
            if self.trace.enabled:
                self.trace.record(TraceEvent(self.time, pid, op, result))
            if slot.result_log is not None:
                slot.result_log.append(result)
                if slot.op_log is not None:
                    slot.op_log.append(op)
            slot.resume(result)
            if slot.halted:
                self._retire(pid)
        slot.steps += 1
        self._advance_time()

    def _decide(self, pid: ProcessId, slot: _ProcessSlot, op: Any) -> None:
        if pid.is_synchronization:
            raise ProtocolError("S-processes cannot decide")
        self.decisions[pid.index] = op.value
        self._decided_frozen = None
        self._decided_vector = None
        self._undecided.discard(pid.index)
        if self.trace.enabled:
            self.trace.record(TraceEvent(self.time, pid, op, None))
        slot.halted = True
        self._retire(pid)
        slot.steps += 1
        self._advance_time()

    def _perform(self, pid: ProcessId, op: Any) -> Any:
        """Generic operation path (kept for unusual operation objects;
        the hot loop dispatches on exact types inline)."""
        if op is None:
            raise ProtocolError(f"{pid} has no pending operation")
        if isinstance(op, ops.QueryFD):
            if pid.is_computation:
                raise ProtocolError("C-processes cannot query the detector")
            return self.system.history.value(pid.index, self.time)
        if isinstance(op, ops.Read):
            return self.memory.read(op.register)
        if isinstance(op, ops.Write):
            self.memory.write(op.register, op.value)
            return None
        if isinstance(op, ops.Snapshot):
            return self.memory.snapshot(op.prefix)
        if isinstance(op, ops.CompareAndSwap):
            return self.memory.compare_and_swap(
                op.register, op.expected, op.new
            )
        if isinstance(op, ops.Nop):
            return None
        raise ProtocolError(f"{pid} yielded a non-operation: {op!r}")

    # -- checkpoint / restore ---------------------------------------------

    def checkpoint(self) -> ExecutorCheckpoint:
        """Capture restorable execution state (requires
        ``record_results=True``; memory is captured as an O(1)
        copy-on-write clone)."""
        if not self.record_results:
            raise ProtocolError(
                "checkpoint() requires an executor constructed with "
                "record_results=True"
            )
        return ExecutorCheckpoint(
            time=self.time,
            memory=self.memory.copy(),
            decisions=tuple(self.decisions.items()),
            slots=tuple(
                (
                    pid,
                    slot.started,
                    slot.halted,
                    slot.steps,
                    slot.result_log,
                    len(slot.result_log),
                    slot.op_log,
                    0 if slot.op_log is None else len(slot.op_log),
                )
                for pid, slot in self._slots.items()
            ),
            schedulable=self.schedulable(),
            crash_pos=self._crash_pos,
            decided_vector=self.decided_vector(),
        )

    @classmethod
    def restore(
        cls,
        system: System,
        scheduler: Scheduler,
        checkpoint: ExecutorCheckpoint,
        *,
        max_steps: int = 200_000,
        stop_when: Callable[["Executor"], bool] | None = None,
        record_results: bool = True,
    ) -> "Executor":
        """Rebuild an executor equivalent to the one that produced
        ``checkpoint``.

        ``system`` must be a fresh, identical system (same builder and
        seed as the checkpointed run).  Each generator is fast-forwarded
        by replaying its recorded results — no shared-memory traffic, no
        scheduling.  Restored executors are untraced (exploration never
        traces); the memory clone is copy-on-write, so restoring is
        cheap until the replayed run first writes.

        The executor is assembled by hand rather than through
        ``__init__``: a halted process never runs again, so its
        generator is not even created, and none of the constructor's
        fresh-run state (empty memory, initial priming, initial
        schedulable set) is built only to be thrown away.
        """
        ex = cls.__new__(cls)
        ex.system = system
        ex.scheduler = scheduler
        ex.max_steps = max_steps
        ex.stop_when = stop_when
        ex.memory = checkpoint.memory.copy()
        ex.trace = Trace(enabled=False)
        ex.time = checkpoint.time
        ex.decisions = dict(checkpoint.decisions)
        ex.record_results = record_results
        ex.record_ops = any(
            op_ref is not None for *_ignored, op_ref, _op_len in checkpoint.slots
        )
        ex._slots = {}
        started_set: set[int] = set()
        for (
            pid, started, halted, steps, log_ref, log_len, op_ref, op_len
        ) in checkpoint.slots:
            log = log_ref[:log_len]
            if halted or steps == 0:
                # Halted processes never run again; never-stepped ones
                # are rebuilt lazily by :meth:`_materialize` on first
                # use (non-participants and filtered-out S-processes
                # never pay for a generator at all).
                slot = _ProcessSlot(pid, None)
            elif pid.is_computation:
                slot = _ProcessSlot(
                    pid, system.c_factories[pid.index](system.context_for(pid))
                )
                if started:
                    slot.prime()
                    for result in log:
                        slot.resume(result)
            else:
                slot = _ProcessSlot(
                    pid, system.s_factories[pid.index](system.context_for(pid))
                )
                slot.prime()
                for result in log:
                    slot.resume(result)
            slot.started = started
            slot.halted = halted
            slot.steps = steps
            if record_results:
                slot.result_log = log
                if op_ref is not None:
                    slot.op_log = op_ref[:op_len]
            if started and pid.is_computation:
                started_set.add(pid.index)
            ex._slots[pid] = slot
        ex._started = started_set
        ex._started_frozen = None
        ex._decided_frozen = None
        ex._decided_vector = checkpoint.decided_vector
        ex._undecided = set(system.participants) - set(ex.decisions)
        ex._crash_queue = system.pattern.crash_transitions
        ex._crash_pos = checkpoint.crash_pos
        ex._schedulable = list(checkpoint.schedulable)
        ex._schedulable_tuple = checkpoint.schedulable
        return ex

    def fingerprint(self) -> bytes:
        """Digest of the full execution state, for state deduplication.

        Two executors with equal fingerprints have identical futures:
        the per-process result logs determine every generator's state
        (automata are deterministic), and memory, decisions, and time
        determine everything else.  Requires ``record_results=True``.
        """
        if not self.record_results:
            raise ProtocolError(
                "fingerprint() requires an executor constructed with "
                "record_results=True"
            )
        from hashlib import blake2b

        state = (
            self.time,
            sorted(
                (name, repr(value))
                for name, value in self.memory.snapshot("").items()
            ),
            sorted(self.decisions.items()),
            [
                (slot.started, slot.halted, repr(slot.result_log))
                for slot in self._slots.values()
            ],
        )
        return blake2b(repr(state).encode(), digest_size=16).digest()

    # -- driving -----------------------------------------------------------

    def run(self) -> RunResult:
        """Run under the scheduler until everyone decided, the stop
        predicate fires, the budget is exhausted, nothing remains
        schedulable (``"halted"``), or the scheduler itself gives up
        while candidates remain (``"schedule_exhausted"``, e.g. a strict
        explicit schedule running out of entries)."""
        reason = "budget"
        while self.time < self.max_steps:
            if not self._undecided:
                reason = "all_decided"
                break
            if self.stop_when is not None and self.stop_when(self):
                reason = "predicate"
                break
            if not self._schedulable:
                reason = "halted"
                break
            try:
                pid = self.scheduler.next(self.view())
            except SchedulingError:
                reason = "schedule_exhausted"
                break
            self.step_trusted(pid)
        return self.result(reason)

    def _budget_digest(self) -> str:
        """One-line per-process account of a budget-exhausted run."""
        undecided = sorted(self.system.participants - self.decided_c)
        per_process = (
            ", ".join(
                f"p{i + 1}({self._slots[c_process(i)].steps} steps)"
                for i in undecided
            )
            or "none"
        )
        s_steps = sum(
            slot.steps
            for pid, slot in self._slots.items()
            if pid.is_synchronization
        )
        return (
            f"budget {self.max_steps} exhausted: "
            f"decided {len(self.decided_c)}/{len(self.system.participants)} "
            f"participants; undecided: {per_process}; "
            f"S-process steps: {s_steps}"
        )

    def result(self, reason: str) -> RunResult:
        """Package the current execution state as a
        :class:`~repro.core.run.RunResult` with the given stop reason."""
        outputs = self.decided_vector()
        extras: dict[str, Any] = {}
        if reason == "budget":
            extras["budget_digest"] = self._budget_digest()
        return RunResult(
            inputs=self.system.inputs,
            outputs=outputs,
            participants=self.started_c,
            steps=self.time,
            step_counts={
                pid: slot.steps for pid, slot in self._slots.items()
            },
            reason=reason,
            pattern=self.system.pattern,
            memory=self.memory,
            trace=self.trace if self.trace.enabled else None,
            extras=extras,
        )

    def _result(self, reason: str) -> RunResult:
        """Deprecated alias of :meth:`result` (kept for old callers)."""
        return self.result(reason)


def execute(
    system: System,
    scheduler: Scheduler,
    *,
    max_steps: int = 200_000,
    trace: bool = False,
    stop_when: Callable[[Executor], bool] | None = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(
        system,
        scheduler,
        max_steps=max_steps,
        trace=trace,
        stop_when=stop_when,
    ).run()
