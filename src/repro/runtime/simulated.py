"""Deterministic local simulation of a set of automata.

Both central simulations of the paper need to run a whole algorithm
*inside* a process:

* Figure 2's simulators locally replay the agreed step log of the
  simulated k-process algorithm ``B``;
* Figure 1's extraction locally executes runs of ``A_sim`` (C-automata
  plus DAG-fed S-automata) under explicitly enumerated schedules.

A :class:`SimulatedWorld` holds its own register file and generator
states and advances one named process at a time.  Determinism is total:
the same construction arguments and the same step sequence produce the
same state, which is what lets independent simulators stay in agreement
by agreeing only on the step *log*.

Failure-detector queries of simulated S-processes are resolved through a
pluggable ``fd_source``; it may report that no suitable sample is
available yet (:data:`STUCK`), in which case the step does not happen
and the process stays blocked until a later attempt succeeds — exactly
the "not enough values in the DAG" behaviour of Figure 1.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..core.process import ProcessContext, ProcessId, c_process, s_process
from ..core.system import input_register
from ..errors import ProtocolError
from ..memory.registers import RegisterFile, apply_operation
from . import ops

#: Sentinel returned by an ``fd_source`` that cannot serve the query yet.
STUCK = object()

#: fd_source(s_index, query_count) -> detector value or STUCK.
FDSource = Callable[[int, int], Any]


class SimulatedWorld:
    """A self-contained executable copy of a system.

    Args:
        inputs: task inputs of the simulated C-processes.
        c_factories: automaton factories for the C-processes.
        s_factories: automaton factories for the S-processes (optional).
        fd_source: resolves simulated failure-detector queries; required
            if any S-automaton queries the detector.
    """

    def __init__(
        self,
        *,
        inputs: Sequence[Any],
        c_factories: Sequence[Any],
        s_factories: Sequence[Any] = (),
        fd_source: FDSource | None = None,
    ) -> None:
        self.inputs = tuple(inputs)
        self.n_c = len(self.inputs)
        self.n_s = len(s_factories)
        self.memory = RegisterFile()
        self.decisions: dict[int, Any] = {}
        self.steps_taken = 0
        self._fd_source = fd_source
        self._query_counts: dict[int, int] = {}
        self._gens: dict[ProcessId, Any] = {}
        self._pending: dict[ProcessId, Any] = {}
        self._halted: set[ProcessId] = set()
        self._started: set[ProcessId] = set()
        self.step_counts: dict[ProcessId, int] = {}
        for i, factory in enumerate(c_factories):
            pid = c_process(i)
            ctx = ProcessContext(
                pid=pid,
                n_computation=self.n_c,
                n_synchronization=self.n_s,
                input_value=self.inputs[i],
            )
            self._gens[pid] = factory(ctx)
            self.step_counts[pid] = 0
        for i, factory in enumerate(s_factories):
            pid = s_process(i)
            ctx = ProcessContext(
                pid=pid,
                n_computation=self.n_c,
                n_synchronization=self.n_s,
                input_value=None,
            )
            self._gens[pid] = factory(ctx)
            self._prime(pid)
            self.step_counts[pid] = 0

    # -- bookkeeping ------------------------------------------------------

    def _prime(self, pid: ProcessId) -> None:
        try:
            self._pending[pid] = next(self._gens[pid])
        except StopIteration:
            self._halted.add(pid)

    def is_halted(self, pid: ProcessId) -> bool:
        return pid in self._halted or (
            pid.is_computation and pid.index in self.decisions
        )

    def participates(self, pid: ProcessId) -> bool:
        return not pid.is_computation or self.inputs[pid.index] is not None

    def pending_op(self, pid: ProcessId) -> Any:
        """The operation ``pid`` would perform at its next step (``None``
        before a C-process's input-writing first step)."""
        return self._pending.get(pid)

    @property
    def decided(self) -> frozenset[int]:
        return frozenset(self.decisions)

    # -- stepping -----------------------------------------------------------

    def can_step(self, pid: ProcessId) -> bool:
        """Whether a step of ``pid`` would currently succeed."""
        if self.is_halted(pid) or not self.participates(pid):
            return False
        if pid.is_computation and pid not in self._started:
            return True
        op = self._pending.get(pid)
        if isinstance(op, ops.QueryFD):
            if self._fd_source is None:
                return False
            count = self._query_counts.get(pid.index, 0)
            return self._fd_source(pid.index, count) is not STUCK
        return op is not None

    def step(self, pid: ProcessId) -> bool:
        """Advance ``pid`` by one step.  Returns ``False`` (and does
        nothing) when the process is halted or its detector query cannot
        be served yet."""
        if self.is_halted(pid) or not self.participates(pid):
            return False
        if pid.is_computation and pid not in self._started:
            self._started.add(pid)
            self.memory.write(
                input_register(pid.index), self.inputs[pid.index]
            )
            self._prime(pid)
            self._count(pid)
            return True
        op = self._pending.get(pid)
        if op is None:
            return False
        if isinstance(op, ops.QueryFD):
            if pid.is_computation:
                raise ProtocolError("C-processes cannot query the detector")
            if self._fd_source is None:
                return False
            count = self._query_counts.get(pid.index, 0)
            value = self._fd_source(pid.index, count)
            if value is STUCK:
                return False
            self._query_counts[pid.index] = count + 1
            result = value
        elif isinstance(op, ops.Decide):
            if pid.is_synchronization:
                raise ProtocolError("S-processes cannot decide")
            self.decisions[pid.index] = op.value
            self._halted.add(pid)
            self._count(pid)
            return True
        else:
            result = apply_operation(self.memory, op)
        try:
            self._pending[pid] = self._gens[pid].send(result)
        except StopIteration:
            self._halted.add(pid)
            self._pending[pid] = None
        self._count(pid)
        return True

    def _count(self, pid: ProcessId) -> None:
        self.steps_taken += 1
        self.step_counts[pid] = self.step_counts.get(pid, 0) + 1

    def run_schedule(self, schedule: Sequence[ProcessId]) -> int:
        """Attempt the steps of ``schedule`` in order; returns how many
        actually happened (blocked/halted steps are skipped)."""
        done = 0
        for pid in schedule:
            if self.step(pid):
                done += 1
        return done

    def outputs(self) -> tuple[Any, ...]:
        return tuple(self.decisions.get(i) for i in range(self.n_c))
