"""Operations a process automaton may perform in one step.

The paper's step model (Section 2.1): "In a step of the algorithm, a
process may read or write to a shared register, or (if it is an
S-process) consult its failure-detector module."  C-processes
additionally take *decide* steps, after which all their steps are null.

An automaton performs a step by yielding one of these objects; the
executor carries it out atomically and resumes the generator with the
result (the value read, the detector output, or ``None``).

:class:`CompareAndSwap` is not in the paper's model; it exists solely as
the modeled atomic primitive behind the *extended* (abortable) safe
agreement used by the Theorem 9 solver — see DESIGN.md's substitution
table.  The paper-faithful algorithms never yield it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class Read:
    """Atomically read one named shared register; result is its value."""

    register: str


@dataclass(frozen=True)
class Write:
    """Atomically write ``value`` into one named shared register."""

    register: str
    value: Any


@dataclass(frozen=True)
class Snapshot:
    """Atomically read every register whose name starts with ``prefix``.

    Result is a ``dict`` mapping register name to value.  This models an
    atomic snapshot object; :mod:`repro.memory.snapshot` also provides a
    register-only implementation of snapshots (double collect with
    helping) for the substrate tests, but algorithms in this package use
    the modeled primitive for clarity, as is standard when a snapshot
    implementation from registers is known to exist.
    """

    prefix: str


@dataclass(frozen=True)
class QueryFD:
    """Consult the failure-detector module (S-processes only).

    Result is ``H(q, t)``, the detector's output for this process at the
    current time of the run.
    """


@dataclass(frozen=True)
class Decide:
    """Decide step of a C-process; ``value`` is its task output.

    After a decide step the executor stops scheduling the process (its
    remaining steps would be null steps per the paper's definition).
    """

    value: Any


@dataclass(frozen=True)
class Nop:
    """A null step: consumes a scheduling turn without touching state."""


@dataclass(frozen=True)
class CompareAndSwap:
    """Atomically: if register equals ``expected``, set it to ``new``.

    Result is the value held *before* the operation, so the caller
    succeeded if and only if the result equals ``expected``.  See module
    docstring for why this exists.
    """

    register: str
    expected: Any
    new: Any


Operation = Union[Read, Write, Snapshot, QueryFD, Decide, Nop, CompareAndSwap]


def footprint(
    op: Operation,
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]] | None:
    """Register footprint of ``op`` as ``(reads, read_prefixes, writes)``.

    Returns ``None`` when the operation's effect cannot be captured as a
    set of register names: :class:`QueryFD` results are indexed by the
    global time of the run, and :class:`Decide` mutates the decision
    vector observed by verdicts and candidate filters.  Callers (the
    explorer's independence relation) must treat such steps as dependent
    on everything.
    """
    if isinstance(op, Read):
        return ((op.register,), (), ())
    if isinstance(op, Write):
        return ((), (), (op.register,))
    if isinstance(op, Snapshot):
        return ((), (op.prefix,), ())
    if isinstance(op, Nop):
        return ((), (), ())
    if isinstance(op, CompareAndSwap):
        return ((op.register,), (), (op.register,))
    return None

#: Operations permitted for C-process automata.
COMPUTATION_OPS = (Read, Write, Snapshot, Decide, Nop, CompareAndSwap)
#: Operations permitted for S-process automata.
SYNCHRONIZATION_OPS = (Read, Write, Snapshot, QueryFD, Nop, CompareAndSwap)
