"""Command-line front door: ``python -m repro <command>``.

Commands:
    hierarchy [--n N]       print the Theorem 10 task hierarchy table
    solve TASK [--seed S]   run a built-in task through the solver
    check TASK              exhaustively certify a built-in restricted
                            algorithm over every gated interleaving of
                            one small instance (explorer knobs:
                            --depth, --checkpoint-stride, --dedup,
                            --por, --symmetry; preemption knobs:
                            --deadline-s, --checkpoint, --resume)
    check-renaming J NAMES  decide 2-process solvability of strong
                            2-renaming with the given namespace size
    extract                 run the Figure 1 extraction demo
    lint [--strict]         check every algorithm against the EFD step
                            model (AST rules + semantic CFG passes;
                            --strict adds the traced battery: race
                            detection and the POR footprint audit).
                            Output: --format text|json|sarif [--out
                            FILE]; pass selection: --list-passes,
                            --enable/--disable ID; suppression:
                            --baseline FILE, --write-baseline FILE.
                            Exit 0 clean/warnings-only, 1 error
                            findings, 2 analyzer crash.
    chaos run               sweep a fault-injection campaign (crash
                            storms, perturbed detector histories,
                            mutated schedules) and triage every cell;
                            resilience knobs: --journal, --resume,
                            --deadline-s, --rss-mb, --retries;
                            dispatch backend: --backend
                            auto|inproc|pool|fabric (fabric shards
                            cells across socket-connected workers
                            with lease-based at-least-once dispatch);
                            execution kernel: --kernel interp|compiled
    chaos replay BUNDLE     deterministically re-execute a shrunk
                            failure bundle and compare outcomes
    worker                  join a campaign fabric as a remote worker:
                            python -m repro worker --connect HOST:PORT
                            (reconnects with deterministic backoff;
                            exits 0 on coordinator shutdown)
    kernel                  compiled execution kernel: --dump NAME
                            prints one automaton's generated source
                            (content-hashed), --list surveys compiled
                            vs fallback automata, --dump-all emits the
                            CI source artifact; with no flags runs the
                            kernel-vs-interpreter differential gate
                            (--full for the nightly battery)
    bench                   run the tracked execution-core benchmark
                            suite and write BENCH_core.json

Interrupted-but-resumable commands (``chaos run`` with a journal,
``check`` with a checkpoint) exit with status 75 (``EX_TEMPFAIL``) and
print the exact command that continues them.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from pathlib import Path


@contextlib.contextmanager
def _graceful_sigterm():
    """Translate SIGTERM into KeyboardInterrupt for the duration, so a
    supervisor's ``kill`` gets the same flush-and-journal shutdown path
    as Ctrl-C."""

    def _raise(signum, frame):  # pragma: no cover - signal delivery
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # not the main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _strip_option(argv: list[str], name: str) -> list[str]:
    """Drop ``name <value>`` / ``name=<value>`` from an argv copy (used
    to rebuild a resumable command line without a stale ``--resume``)."""
    out: list[str] = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg == name:
            skip = True
            continue
        if arg.startswith(name + "="):
            continue
        out.append(arg)
    return out


def _resume_command(
    argv: list[str], journal_path: str, *, listen: str | None = None
) -> str:
    """Rebuild the exact command that resumes an interrupted campaign:
    ``argv`` minus any stale ``--journal``/``--resume``, plus — for
    fabric runs — ``--listen`` pinned to the actually-bound address
    (an ephemeral port 0 would otherwise re-bind somewhere the
    surviving workers are not reconnecting to)."""
    args = _strip_option(
        _strip_option(list(argv), "--journal"), "--resume"
    )
    if listen is not None:
        args = _strip_option(args, "--listen") + ["--listen", listen]
    return "python -m repro " + " ".join([*args, "--resume", journal_path])


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from .classify import build_hierarchy, format_hierarchy

    print(format_hierarchy(build_hierarchy(args.n)))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from . import solve_task
    from .detectors import Omega, VectorOmegaK
    from .tasks import ConsensusTask, SetAgreementTask, StrongRenamingTask

    if args.task == "consensus":
        task = ConsensusTask(args.n)
        detector = Omega()
    elif args.task == "set-agreement":
        task = SetAgreementTask(args.n, args.k)
        detector = VectorOmegaK(args.n, args.k)
    elif args.task == "strong-renaming":
        task = StrongRenamingTask(args.n, args.n - 1)
        detector = Omega()
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.task)
    result = solve_task(task, detector=detector, seed=args.seed)
    print(f"task     : {task.name}")
    print(f"detector : {detector.name}")
    print(f"inputs   : {result.inputs}")
    print(f"outputs  : {result.outputs}")
    print(f"steps    : {result.steps}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import time

    from .algorithms.dispatch import (
        algorithm_for_task,
        default_inputs,
        task_concurrency_class,
    )
    from .classify import explore_k_concurrent
    from .tasks import (
        ConsensusTask,
        RenamingTask,
        SetAgreementTask,
        WeakSymmetryBreakingTask,
    )

    if args.task == "consensus":
        task = ConsensusTask(args.n)
    elif args.task == "set-agreement":
        task = SetAgreementTask(args.n, args.k)
    elif args.task == "renaming":
        task = RenamingTask(args.n, args.n - 1, args.n - 1 + args.k - 1)
    elif args.task == "wsb":
        task = WeakSymmetryBreakingTask(args.n, args.n - 1)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.task)
    k = args.k if args.task != "wsb" else task_concurrency_class(task)
    factories = algorithm_for_task(task, k)
    if args.inputs:
        parts = args.inputs.split(",")
        if len(parts) != args.n:
            print(f"--inputs needs {args.n} comma-separated values")
            return 2
        inputs = tuple(
            None if part.strip().lower() in ("none", "-") else int(part)
            for part in parts
        )
        if not task.is_input(inputs):
            print(f"{inputs} is not a valid input vector for {task.name}")
            return 2
    else:
        inputs = default_inputs(task)
    t0 = time.perf_counter()
    report = explore_k_concurrent(
        task,
        factories,
        k,
        inputs,
        max_depth=args.depth,
        max_runs=args.max_runs,
        checkpoint_stride=args.checkpoint_stride,
        dedup=args.dedup,
        por=args.por,
        symmetry=args.symmetry,
        deadline_s=args.deadline_s,
        checkpoint_path=args.checkpoint,
        resume_from=args.resume,
        handle_signals=True,
    )
    wall = time.perf_counter() - t0
    print(f"task       : {task.name}")
    print(f"inputs     : {inputs}")
    print(f"concurrency: {k}")
    print(
        f"explored   : {report.explored} nodes in {wall:.2f}s "
        f"(depth {args.depth})"
    )
    print(
        f"runs       : {report.completed_runs} completed, "
        f"{report.truncated_runs} truncated"
    )
    print(
        f"pruned     : {report.deduplicated} dedup, "
        f"{report.por_pruned} por, {report.symmetry_pruned} symmetry"
    )
    if report.interrupted:
        from .resilience import EXIT_RESUMABLE

        print("verdict    : INTERRUPTED (deadline or signal)")
        if report.checkpoint_path:
            resume_args = _strip_option(sys.argv[1:], "--resume")
            print(f"frontier checkpointed to {report.checkpoint_path}")
            print(
                "resume with: python -m repro "
                + " ".join(resume_args)
                + f" --resume {report.checkpoint_path}"
            )
        return EXIT_RESUMABLE
    if report.ok:
        print("verdict    : OK — no interleaving leaves the task relation")
        return 0
    schedule, _ = report.violations[0]
    print(
        f"verdict    : {len(report.violations)} VIOLATION(S); first "
        f"witness: {[str(pid) for pid in schedule]}"
    )
    return 1


def _cmd_check_renaming(args: argparse.Namespace) -> int:
    from .tasks import StrongRenamingTask
    from .topology import decide_two_process_solvability

    task = StrongRenamingTask(
        max(3, args.names), 2, namespace=tuple(range(1, args.names + 1))
    )
    verdict = decide_two_process_solvability(task)
    print(
        f"strong 2-renaming, {args.names} original names: "
        f"{'SOLVABLE' if verdict.solvable else 'UNSOLVABLE'} "
        "2-concurrently"
    )
    if verdict.obstruction:
        print(f"obstruction: {verdict.obstruction}")
    return 0 if verdict.solvable else 1


def _cmd_extract(args: argparse.Namespace) -> int:
    import runpy
    from pathlib import Path

    demo = Path(__file__).resolve().parents[2] / "examples" / "extract_advice.py"
    if demo.exists():  # running from a source checkout
        runpy.run_path(str(demo), run_name="__main__")
        return 0
    print("extraction demo script not found; see examples/extract_advice.py")
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    # Exit codes: 0 = clean (or warnings only), 1 = error findings,
    # 2 = analyzer crash (bad pass id, unreadable baseline, internal
    # error) — so CI can distinguish "code is wrong" from "the
    # analyzer is wrong".
    try:
        from .lint import (
            all_passes,
            lint_algorithms,
            load_baseline,
            render_report,
            write_baseline,
        )

        if args.list_passes:
            for cls in all_passes():
                evidence = "+".join(cls.evidence_required)
                print(f"{cls.pass_id:18} [{evidence}] {cls.title}")
            return 0
        baseline = (
            load_baseline(args.baseline) if args.baseline else None
        )
        report = lint_algorithms(
            strict=args.strict,
            enable=tuple(args.enable) if args.enable else None,
            disable=tuple(args.disable) if args.disable else None,
            baseline=baseline,
        )
        if args.write_baseline:
            write_baseline(report, args.write_baseline)
            print(
                f"wrote baseline with "
                f"{len(report.findings) + len(report.suppressed)} "
                f"finding(s) to {args.write_baseline}"
            )
            return 0
        rendered = render_report(report, args.format)
        if args.out:
            Path(args.out).write_text(rendered + "\n")
        else:
            print(rendered)
        return 1 if report.has_errors else 0
    except Exception as exc:  # analyzer crash, not a lint verdict
        print(f"lint: analyzer error: {exc}", file=sys.stderr)
        return 2


#: ``chaos run`` exit-code contract (also documented in its --help):
#: 0 = campaign ok and complete; 1 = safety violations, invalid
#: histories, or engine errors; 3 = no violations but at least one cell
#: quarantined (timeout/oom/worker_crash/flaky/partition) — coverage
#: was lost, CI must not silently pass; 75 = interrupted but journaled
#: (rerun with --resume).
EXIT_QUARANTINED = 3


def chaos_exit_code(report) -> int:
    """Map a campaign report onto the ``chaos run`` exit contract."""
    if not report.ok:
        return 1
    if not report.complete:
        return EXIT_QUARANTINED
    return 0


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from .chaos import (
        bundle_from_shrink,
        run_campaign,
        save_bundle,
        shrink_cell,
        smoke_campaign,
        specimen_campaign,
        standard_campaign,
    )
    from .errors import CampaignInterrupted
    from .resilience import (
        EXIT_RESUMABLE,
        CellBudget,
        FabricConfig,
        RetryPolicy,
        parse_endpoint,
    )

    if args.specimen:
        spec = specimen_campaign(seed=args.seed)
    elif args.smoke:
        spec = smoke_campaign(seed=args.seed)
    else:
        spec = standard_campaign(seed=args.seed)

    def progress(record) -> None:
        if args.verbose:
            print(record.format_row())

    budget = None
    if args.deadline_s is not None or args.rss_mb is not None:
        budget = CellBudget(deadline_s=args.deadline_s, rss_mb=args.rss_mb)
    retry = None
    if args.retries is not None:
        retry = RetryPolicy(max_retries=args.retries, seed=args.seed)
    fabric = None
    listen_actual = None
    if args.backend == "fabric":
        from .resilience import FabricCoordinator

        host, port = parse_endpoint(args.listen)
        # Bind before running so the (possibly ephemeral) port is
        # printed while workers can still be pointed at it; fabric
        # diagnostics go to stderr so stdout stays byte-identical to a
        # serial run.
        fabric = FabricCoordinator(
            FabricConfig(
                host=host,
                port=port,
                lease_s=args.lease_s,
                register_grace_s=args.register_grace_s,
            )
        )
        bound_host, bound_port = fabric.address
        listen_actual = f"{bound_host}:{bound_port}"
        print(
            f"fabric: coordinator listening on "
            f"{listen_actual} — connect workers with: "
            f"python -m repro worker --connect {listen_actual}",
            file=sys.stderr,
        )
    try:
        with _graceful_sigterm():
            report = run_campaign(
                spec,
                limit=args.cells,
                on_cell=progress,
                workers=args.workers,
                budget=budget,
                retry=retry,
                journal=args.journal,
                resume=args.resume,
                pool=args.pool,
                backend=args.backend,
                kernel=args.kernel,
                fabric=fabric,
                inject_worker_kill=args.inject_worker_kill,
            )
    except CampaignInterrupted as exc:
        if fabric is not None:
            fabric.close()  # idempotent; frees the port for the resume
        print(f"interrupted: {exc}")
        if exc.journal_path:
            # The exact command, ready to paste: for fabric runs the
            # listen address is pinned to the port that was actually
            # bound, so surviving workers reconnect to the restarted
            # coordinator and are re-admitted with their leases.
            print(
                "resume with: "
                + _resume_command(
                    sys.argv[1:], exc.journal_path, listen=listen_actual
                )
            )
        else:
            print(
                "(no --journal was given, so completed cells were not "
                "durable; rerun with --journal PATH to make the sweep "
                "resumable)"
            )
        return EXIT_RESUMABLE
    except BaseException:
        if fabric is not None:
            fabric.close()  # never leak the listener on an error path
        raise
    print(report.render())
    if report.fabric is not None:
        print(f"fabric: {report.fabric.summary()}", file=sys.stderr)

    if args.specimen:
        # A specimen campaign is *supposed* to fail: shrink the first
        # violation to a repro bundle and succeed iff one was found.
        if not report.violations:
            print("specimen campaign found no violation — engine bug?")
            return 1
        shrunk = shrink_cell(
            report.violations[0].cell, kernel=args.kernel
        )
        print(shrunk.summary())
        if args.bundle:
            bundle = bundle_from_shrink(
                shrunk,
                campaign=spec.name,
                note="planted decide-before-stabilization bug",
            )
            path = save_bundle(args.bundle, bundle)
            print(f"repro bundle written to {path}")
        return 0
    return chaos_exit_code(report)


def _cmd_kernel(args: argparse.Namespace) -> int:
    from . import kernel

    if args.dump is not None:
        try:
            print(kernel.dump_source(args.dump))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        return 0
    if args.dump_all:
        print(kernel.dump_all())
        return 0
    if args.list:
        kernel.warm_cache()
        for module, name, program in kernel.iter_schema_programs():
            if isinstance(program, kernel.UnsupportedAutomaton):
                print(f"{module}.{name:40} interp-fallback ({program})")
            else:
                print(
                    f"{module}.{name:40} compiled "
                    f"sha256:{program.content_hash[:16]} "
                    f"({program.n_sites} sites)"
                )
        return 0
    if args.coverage:
        from .kernel.coverage import (
            check_manifest,
            coverage_rows,
            render_coverage,
            write_manifest,
        )

        rows = coverage_rows()
        print(render_coverage(rows))
        if args.write:
            path = write_manifest(rows)
            print(f"coverage manifest written to {path}")
            return 0
        if args.check:
            problems = check_manifest(rows)
            for problem in problems:
                print(f"COVERAGE: {problem}")
            return 1 if problems else 0
        return 0
    # default: the differential gate
    from .kernel.differential import run_differential

    def progress(name: str) -> None:
        if args.verbose:
            print(f"  case {name}", file=sys.stderr)

    report = run_differential(
        smoke=not args.full, campaign=True, on_case=progress
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import (
        BENCH_SCHEMA,
        compare_against_baseline,
        compare_runs,
        fabric_overhead_problems,
        kernel_speedup_problems,
        load_baseline,
        render,
        run_benchmarks,
        supervised_overhead_problems,
    )

    if args.compare:
        old_path, new_path = args.compare
        print(compare_runs(load_baseline(old_path), load_baseline(new_path)))
        return 0

    results = run_benchmarks(smoke=args.smoke, workers=args.workers)
    print(render(results))
    overhead_problems = (
        supervised_overhead_problems(results)
        + fabric_overhead_problems(results)
        + kernel_speedup_problems(results)
    )
    for problem in overhead_problems:
        print(f"OVERHEAD: {problem}")
    payload = {
        "schema": BENCH_SCHEMA,
        "smoke": args.smoke,
        "benchmarks": results,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"results written to {args.out}")
    if args.baseline:
        problems = compare_against_baseline(
            results,
            load_baseline(args.baseline),
            fail_threshold=args.fail_threshold,
        )
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if problems:
            return 1
        print(
            f"no benchmark more than {args.fail_threshold:g}x below "
            f"{args.baseline}"
        )
    return 1 if overhead_problems else 0


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    from .chaos import replay_bundle

    replay = replay_bundle(args.bundle)
    print(replay.summary())
    return 0 if replay.reproduced else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    import threading

    from .resilience import parse_endpoint, run_worker

    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    log = None
    if args.verbose:
        log = lambda message: print(message, file=sys.stderr)  # noqa: E731
    # SIGTERM = graceful drain, not abort: finish the in-flight cell,
    # flush the spool, exit 0.  The event is polled between leases, so
    # no cell is ever torn mid-execution.
    drain = threading.Event()

    def _request_drain(signum, frame):  # pragma: no cover - signal
        drain.set()

    try:
        signal.signal(signal.SIGTERM, _request_drain)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    return run_worker(
        host,
        port,
        name=args.name,
        seed=args.seed,
        max_attempts=args.max_attempts,
        log=log,
        spool_path=args.spool,
        drain=drain,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("hierarchy", help="print the Theorem 10 table")
    p.add_argument("--n", type=int, default=4)
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("solve", help="solve a built-in task")
    p.add_argument(
        "task",
        choices=["consensus", "set-agreement", "strong-renaming"],
    )
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser(
        "check",
        help="exhaustively certify a restricted algorithm "
        "(explorer knobs exposed)",
    )
    p.add_argument(
        "task",
        choices=["consensus", "set-agreement", "renaming", "wsb"],
    )
    p.add_argument(
        "--n", type=int, default=3, help="C-process count (default 3)"
    )
    p.add_argument(
        "--k",
        type=int,
        default=2,
        help="concurrency level / task parameter (default 2)",
    )
    p.add_argument(
        "--depth",
        type=int,
        default=14,
        help="schedule-length bound of the exploration (default 14)",
    )
    p.add_argument(
        "--max-runs",
        type=int,
        default=200_000,
        help="hard cap on completed+truncated runs (default 200000)",
    )
    p.add_argument(
        "--checkpoint-stride",
        type=int,
        default=4,
        help="executor checkpoint every N levels of descent; trades "
        "checkpoint memory against suffix replay (default 4)",
    )
    p.add_argument(
        "--dedup",
        action="store_true",
        help="prune states whose fingerprint was already explored "
        "(changes node counts, never the verdict)",
    )
    p.add_argument(
        "--por",
        action="store_true",
        help="sleep-set partial-order reduction: prune sibling orders "
        "of commuting steps (changes node counts, never the verdict)",
    )
    p.add_argument(
        "--symmetry",
        action="store_true",
        help="prune interchangeable same-input C-processes and "
        "canonicalize dedup fingerprints over process orbits",
    )
    p.add_argument(
        "--inputs",
        default=None,
        help="comma-separated input vector overriding the task default "
        "('none' or '-' marks a non-participant), e.g. 1,1,1,1 or "
        "1,2,none",
    )
    p.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="wall-clock budget; at expiry the exploration stops, "
        "checkpoints its frontier (with --checkpoint), and exits 75",
    )
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write the frontier here when interrupted by the deadline "
        "or SIGINT/SIGTERM",
    )
    p.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="continue a checkpointed exploration exactly (same task, "
        "inputs, and explorer knobs required)",
    )
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "check-renaming", help="Lemma 11 solvability crossover"
    )
    p.add_argument("names", type=int)
    p.set_defaults(func=_cmd_check_renaming)

    p = sub.add_parser("extract", help="Figure 1 extraction demo")
    p.set_defaults(func=_cmd_extract)

    p = sub.add_parser(
        "lint", help="check algorithms against the EFD step model"
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="also run the traced battery (race detection + POR "
        "footprint audit)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report output format",
    )
    p.add_argument(
        "--out", help="write the report to this file instead of stdout"
    )
    p.add_argument(
        "--enable",
        action="append",
        metavar="PASS",
        help="run only the named pass (repeatable)",
    )
    p.add_argument(
        "--disable",
        action="append",
        metavar="PASS",
        help="skip the named pass (repeatable)",
    )
    p.add_argument(
        "--baseline",
        help="suppress findings listed in this baseline file",
    )
    p.add_argument(
        "--write-baseline",
        help="record the current findings as the new baseline",
    )
    p.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and exit",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "chaos", help="fault-injection campaigns, shrinking, replay"
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    p = chaos_sub.add_parser(
        "run",
        help="sweep a chaos campaign",
        description="Sweep a fault-injection campaign and triage "
        "every cell.",
        epilog=(
            "exit codes: 0 = campaign ok and complete; "
            "1 = safety violations, invalid histories, or engine "
            "errors; 3 = no violations but at least one cell was "
            "quarantined (timeout/oom/worker_crash/flaky/partition) — "
            "coverage was lost, so CI cannot silently pass; "
            "75 = interrupted with progress journaled (rerun with "
            "--resume)."
        ),
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="small fixed-seed campaign (CI gate: zero violations)",
    )
    p.add_argument(
        "--specimen",
        action="store_true",
        help="hunt the planted decide-before-stabilization bug and "
        "shrink its witness",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--cells",
        type=int,
        default=None,
        help="run at most this many cells of the campaign",
    )
    p.add_argument(
        "--bundle",
        metavar="PATH",
        default=None,
        help="with --specimen: write the shrunk repro bundle here",
    )
    p.add_argument(
        "--verbose", action="store_true", help="print each cell as it runs"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan cells out over this many worker processes "
        "(reports are byte-identical to serial runs)",
    )
    p.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append every completed cell to this JSONL journal; an "
        "interrupted sweep exits 75 and can be continued with --resume",
    )
    p.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume from a journal: replay its completed cells and "
        "execute only the remainder (fingerprint-pinned to the exact "
        "same campaign/seed/--cells); with --backend fabric this also "
        "recovers the coordinator's lease/suspicion state from the "
        "journal's control-plane events and re-admits reconnecting "
        "workers that still hold valid leases",
    )
    p.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="per-cell wall-clock budget enforced inside workers; a "
        "cell that exceeds it is retried, then quarantined as timeout",
    )
    p.add_argument(
        "--rss-mb",
        type=float,
        default=None,
        help="per-cell resident-set budget (MiB) enforced inside "
        "workers; breaching cells are quarantined as oom",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=None,
        help="supervised retry budget per cell before quarantine "
        "(default: RetryPolicy's 2)",
    )
    p.add_argument(
        "--pool",
        choices=["supervised", "raw"],
        default="supervised",
        help="worker pool implementation; 'raw' is the legacy "
        "ProcessPoolExecutor, kept for overhead benchmarking",
    )
    p.add_argument(
        "--inject-worker-kill",
        type=int,
        metavar="CELL",
        default=None,
        help="fault drill: SIGKILL the worker assigned this cell index "
        "on its first attempt (the report must come out identical)",
    )
    p.add_argument(
        "--backend",
        choices=["auto", "inproc", "pool", "fabric"],
        default="auto",
        help="dispatch substrate: in-process, local worker pool, or "
        "the multi-host fabric (lease-based at-least-once dispatch "
        "over sockets; degrades to the local pool if no worker "
        "registers); reports are byte-identical across backends",
    )
    p.add_argument(
        "--kernel",
        choices=["interp", "compiled"],
        default="interp",
        help="execution kernel per cell: the interpreted executor, or "
        "compiled step functions with per-automaton fallback (serial "
        "in-process compiled runs batch cells into lockstep lanes); "
        "reports are byte-identical across kernels",
    )
    p.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default="127.0.0.1:0",
        help="with --backend fabric: coordinator listen address "
        "(port 0 picks an ephemeral port, printed to stderr); bind "
        "0.0.0.0 to accept remote workers (default: %(default)s)",
    )
    p.add_argument(
        "--lease-s",
        type=float,
        default=5.0,
        help="with --backend fabric: per-cell lease deadline; "
        "heartbeats renew it, silence past it requeues the cell "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--register-grace-s",
        type=float,
        default=5.0,
        help="with --backend fabric: how long to wait for the first "
        "worker before degrading to local execution "
        "(default: %(default)s)",
    )
    p.set_defaults(func=_cmd_chaos_run)

    p = chaos_sub.add_parser(
        "replay", help="re-execute a repro bundle deterministically"
    )
    p.add_argument("bundle", help="path to a bundle JSON file")
    p.set_defaults(func=_cmd_chaos_replay)

    p = sub.add_parser(
        "worker",
        help="join a campaign fabric as a remote worker",
        description="Connect to a fabric coordinator, serve leased "
        "campaign cells (heartbeating each lease), and reconnect "
        "with capped deterministic backoff when the link drops.",
        epilog="exit codes: 0 = coordinator sent shutdown (campaign "
        "done) or SIGTERM drain (in-flight cell finished, spool "
        "flushed); 1 = gave up after --max-attempts consecutive "
        "failed connection attempts.",
    )
    p.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="coordinator address (see 'chaos run --backend fabric')",
    )
    p.add_argument(
        "--name",
        default=None,
        help="stable worker name (default: worker-<pid>); reconnects "
        "under the same name are attributed as reconnects",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="determinism seed for the reconnect-backoff jitter",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=30,
        help="consecutive failed connection attempts before giving "
        "up (default: %(default)s)",
    )
    p.add_argument(
        "--spool",
        metavar="PATH",
        default=None,
        help="disk-back the bounded result spool: completed results "
        "that cannot reach the coordinator are buffered here and "
        "replayed idempotently on reconnect (default: in-memory)",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="log connects, reconnects, and shutdown to stderr",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "kernel",
        help="compiled execution kernel: dump, list, differential gate",
        description="Inspect the schema-to-Python compiled kernel and "
        "run its kernel-vs-interpreter differential gate.",
        epilog="exit codes (differential mode): 0 = all comparisons "
        "byte-identical and footprints consistent; 1 = divergence.",
    )
    p.add_argument(
        "--dump",
        metavar="NAME",
        default=None,
        help="print the generated source (with content hash) for one "
        "automaton or module, e.g. 's_helper' or "
        "'kset_vector.kset_c_factory'",
    )
    p.add_argument(
        "--dump-all",
        action="store_true",
        help="print every generated program plus interpreter-fallback "
        "notes (the CI generated-source artifact)",
    )
    p.add_argument(
        "--list",
        action="store_true",
        help="one line per declared automaton: compiled (hash, sites) "
        "or interp-fallback (reason)",
    )
    p.add_argument(
        "--coverage",
        action="store_true",
        help="per-automaton compiled/inlined/fallback table with "
        "reasons; combine with --check to fail if coverage shrank "
        "vs the committed KERNEL_COVERAGE.json, or --write to "
        "refresh the manifest",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="with --coverage: exit 1 if any automaton's coverage "
        "regressed relative to the committed manifest",
    )
    p.add_argument(
        "--write",
        action="store_true",
        help="with --coverage: rewrite the committed manifest from "
        "the current compiler's results",
    )
    p.add_argument(
        "--full",
        action="store_true",
        help="differential mode: run the full battery (nightly) "
        "instead of the smoke subset",
    )
    p.add_argument(
        "--verbose",
        action="store_true",
        help="differential mode: print each case to stderr",
    )
    p.set_defaults(func=_cmd_kernel)

    p = sub.add_parser(
        "bench", help="run the tracked execution-core benchmarks"
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="shrunken workloads for CI (same benchmark names)",
    )
    p.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_core.json",
        help="write results here (default: %(default)s)",
    )
    p.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare throughput against this results file and fail "
        "on regressions past --fail-threshold",
    )
    p.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="print a per-case delta table between two results files "
        "and exit without running the suite",
    )
    p.add_argument(
        "--fail-threshold",
        type=float,
        default=3.0,
        help="maximum tolerated slowdown factor vs the baseline "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the campaign benchmark",
    )
    p.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
