"""Failure-detector sample DAGs (Chandra-Hadzilacos-Toueg style [9],
as used by the paper's Figure 1 and by [28, 18]).

A DAG records samples of a detector's output in some run: vertex
``[q, d, c]`` says the c-th query by S-process ``q`` returned ``d``;
edges capture causal precedence between queries.  Figure 1's simulated
S-processes consume the DAG instead of the live detector: a simulated
query succeeds only if the DAG still has a vertex for that process
causally after everything the simulation used so far — otherwise the
simulated process is *stuck* (the paper: the simulation "succeeds to
take a step for qi if there are enough values for qi in G").

We build DAGs by sampling a detector history along a concrete schedule,
which yields the common special case of a causal *chain* (each query
happens-after all previous ones); a chain is a legal DAG and keeps the
stuck-test simple: a query is served by the next unconsumed vertex of
that process beyond the caller's frontier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..core.failures import FailurePattern
from ..runtime.simulated import STUCK


@dataclass(frozen=True)
class DagVertex:
    """One recorded detector sample."""

    s_index: int
    value: Any
    query_index: int  # c-th query of this process (0-based)
    position: int  # global causal position


class SampleDAG:
    """A causal chain of detector samples."""

    def __init__(self, n: int, vertices: list[DagVertex]) -> None:
        self.n = n
        self.vertices = list(vertices)
        self._by_process: dict[int, list[DagVertex]] = {
            q: [] for q in range(n)
        }
        for vertex in self.vertices:
            self._by_process[vertex.s_index].append(vertex)

    @classmethod
    def sample(
        cls,
        detector,
        pattern: FailurePattern,
        *,
        rounds: int,
        seed: int = 0,
        start_time: int = 0,
        time_stride: int = 1,
    ) -> "SampleDAG":
        """Record ``rounds`` round-robin query rounds of ``detector``
        under ``pattern`` (crashed processes stop contributing)."""
        history = detector.build_history(pattern, random.Random(seed))
        vertices: list[DagVertex] = []
        counts = {q: 0 for q in range(pattern.n)}
        time = start_time
        position = 0
        for _ in range(rounds):
            for q in range(pattern.n):
                if pattern.is_alive(q, time):
                    vertices.append(
                        DagVertex(
                            s_index=q,
                            value=history.value(q, time),
                            query_index=counts[q],
                            position=position,
                        )
                    )
                    counts[q] += 1
                    position += 1
                time += time_stride
        return cls(pattern.n, vertices)

    def samples_of(self, q: int) -> list[DagVertex]:
        return list(self._by_process[q])

    def __len__(self) -> int:
        return len(self.vertices)

    def fd_source(self) -> Callable[[int, int], Any]:
        """A fresh per-run resolver for simulated detector queries.

        Serves the next vertex of the queried process whose global
        position lies beyond the run's causal frontier (which every
        served query advances); returns
        :data:`~repro.runtime.simulated.STUCK` when the DAG is
        exhausted for that process.  The frontier models "causally
        succeeding the latest simulated steps seen so far".
        """
        frontier = -1
        cursors = {q: 0 for q in range(self.n)}

        def source(s_index: int, query_count: int) -> Any:
            nonlocal frontier
            samples = self._by_process[s_index]
            cursor = cursors[s_index]
            while cursor < len(samples) and (
                samples[cursor].position <= frontier
                or samples[cursor].query_index < query_count
            ):
                cursor += 1
            cursors[s_index] = cursor
            if cursor >= len(samples):
                return STUCK
            vertex = samples[cursor]
            cursors[s_index] = cursor + 1
            frontier = max(frontier, vertex.position)
            return vertex.value

        return source


def merge_chains(n: int, *dags: SampleDAG) -> SampleDAG:
    """Concatenate sample chains (used when S-processes pool the samples
    they exchanged through shared memory)."""
    vertices: list[DagVertex] = []
    position = 0
    counts = {q: 0 for q in range(n)}
    for dag in dags:
        for vertex in dag.vertices:
            vertices.append(
                DagVertex(
                    s_index=vertex.s_index,
                    value=vertex.value,
                    query_index=counts[vertex.s_index],
                    position=position,
                )
            )
            counts[vertex.s_index] += 1
            position += 1
    return SampleDAG(n, vertices)
