"""The trivial failure detector: always outputs bottom (footnote 5).

A restricted algorithm (S-processes take null steps) is equivalent to an
algorithm using the trivial detector; Proposition 2 tests exercise both
directions.
"""

from __future__ import annotations

import random

from ..core.failures import FailurePattern
from ..core.history import ConstantHistory, History
from .base import FailureDetector


class TrivialDetector(FailureDetector):
    """Outputs ``None`` at every process and time."""

    name = "trivial"

    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        return ConstantHistory(None)

    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        return all(
            history.value(q, t) is None
            for q in range(pattern.n)
            for t in range(horizon)
        )
