"""The anti-Omega-k detector (paper Section 2.3, following [26, 28]).

``anti-Omega-k`` outputs, at every S-process and time, a set of ``n - k``
S-process ids, and guarantees that some correct process is eventually
never output at any correct process.  It is the weakest failure detector
for k-set agreement (Proposition 6) and, by Theorem 10, for every task
of concurrency class k.
"""

from __future__ import annotations

import random

from ..core.failures import FailurePattern
from ..core.history import History
from ..errors import SpecificationError
from .base import FailureDetector, StabilizingHistory, choose_correct


class AntiOmegaK(FailureDetector):
    """anti-Omega-k over ``n`` S-processes.

    Args:
        n: number of S-processes.
        k: the set-agreement parameter (1 <= k < n); outputs have size
            ``n - k``.
        stabilization_time: time from which the safe process is never
            output.
        safe: force the eventually-never-output correct process.
    """

    def __init__(
        self,
        n: int,
        k: int,
        *,
        stabilization_time: int = 0,
        safe: int | None = None,
    ) -> None:
        if not 1 <= k < n:
            raise SpecificationError(f"need 1 <= k < n, got k={k}, n={n}")
        self.n = n
        self.k = k
        self.stabilization_time = stabilization_time
        self.safe = safe
        self.name = f"anti-Omega-{k}"

    def _set_excluding(
        self, excluded: int, rng: random.Random
    ) -> frozenset[int]:
        pool = [i for i in range(self.n) if i != excluded]
        return frozenset(rng.sample(pool, self.n - self.k))

    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        if pattern.n != self.n:
            raise SpecificationError(
                f"detector built for n={self.n}, pattern has n={pattern.n}"
            )
        safe = self.safe
        if safe is None:
            safe = choose_correct(pattern, rng)
        elif safe not in pattern.correct:
            raise SpecificationError(
                f"forced safe process q{safe + 1} is faulty in the pattern"
            )
        size = self.n - self.k
        all_ids = list(range(self.n))

        def noise(q: int, t: int, cell_rng: random.Random) -> frozenset[int]:
            return frozenset(cell_rng.sample(all_ids, size))

        def stable_for(q: int) -> frozenset[int]:
            # Converged outputs may still vary per process; we emit a
            # deterministic set that simply never contains the safe
            # process.  (The specification allows any such behaviour.)
            return frozenset(
                sorted(i for i in range(self.n) if i != safe)[:size]
            )

        return StabilizingHistory(
            stable=stable_for,
            noise=noise,
            stabilization_time=self.stabilization_time,
            base_seed=rng.randrange(2**31),
        )

    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        """Finitized anti-Omega-k validity.

        Range check on all of ``[0, horizon)``; the eventual clause is
        checked as: some *correct* process appears in no output of any
        correct process during ``[stabilized_from, horizon)``.
        """
        size = self.n - self.k
        for q in range(pattern.n):
            for t in range(horizon):
                v = history.value(q, t)
                if not isinstance(v, frozenset) or len(v) != size:
                    return False
                if not all(isinstance(i, int) and 0 <= i < self.n for i in v):
                    return False
        ever_output: set[int] = set()
        for q in pattern.correct:
            for t in range(stabilized_from, horizon):
                ever_output.update(history.value(q, t))
        return bool(pattern.correct - ever_output)
