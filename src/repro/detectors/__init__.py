"""Failure detectors of the paper and the standard toolbox."""

from .anti_omega import AntiOmegaK
from .base import FailureDetector, StabilizingHistory
from .omega import Omega
from .perfect import EventuallyPerfectDetector, PerfectDetector
from .trivial import TrivialDetector
from .vector_omega import VectorOmegaK

__all__ = [
    "AntiOmegaK",
    "FailureDetector",
    "StabilizingHistory",
    "Omega",
    "EventuallyPerfectDetector",
    "PerfectDetector",
    "TrivialDetector",
    "VectorOmegaK",
]
