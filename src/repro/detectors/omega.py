"""The eventual-leader detector Omega [9].

Omega outputs one S-process id at each process and time; eventually the
same correct process is permanently output everywhere.  Omega is
equivalent to anti-Omega-1 (see :mod:`repro.detectors.reductions`) and,
by Corollary 13, is the weakest detector for strong renaming in EFD.
"""

from __future__ import annotations

import random

from ..core.failures import FailurePattern
from ..core.history import History
from .base import FailureDetector, StabilizingHistory, choose_correct


class Omega(FailureDetector):
    """Eventual leader election.

    Args:
        stabilization_time: time from which the history is converged.
        leader: force the eventual leader (must be correct in the
            pattern); by default one is chosen seeded-randomly among the
            correct processes.
    """

    def __init__(
        self, *, stabilization_time: int = 0, leader: int | None = None
    ) -> None:
        self.stabilization_time = stabilization_time
        self.leader = leader
        self.name = "Omega"

    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        leader = self.leader
        if leader is None:
            leader = choose_correct(pattern, rng)
        elif leader not in pattern.correct:
            raise ValueError(
                f"forced leader q{leader + 1} is faulty in the pattern"
            )
        n = pattern.n
        return StabilizingHistory(
            stable=lambda q: leader,
            noise=lambda q, t, cell_rng: cell_rng.randrange(n),
            stabilization_time=self.stabilization_time,
            base_seed=rng.randrange(2**31),
        )

    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        """From ``stabilized_from`` on, all correct processes must output
        the same correct leader, and every output must be a process id."""
        n = pattern.n
        for q in range(n):
            for t in range(horizon):
                v = history.value(q, t)
                if not isinstance(v, int) or not 0 <= v < n:
                    return False
        leaders = {
            history.value(q, t)
            for q in pattern.correct
            for t in range(stabilized_from, horizon)
        }
        return len(leaders) == 1 and next(iter(leaders)) in pattern.correct
