"""Executable failure-detector reductions.

The paper (following [28], [9]) uses several detector equivalences:

* ``Omega  ==  anti-Omega-1`` (Section 2.3): with ``k = 1`` the
  anti-Omega output is an all-but-one set, so the excluded process is a
  stable leader, and conversely "everybody except the leader" is a valid
  anti-Omega-1 output.
* ``anti-Omega-k`` is emulated from ``vecOmega-k``: output ``n - k``
  processes disjoint from the vector — the stably-pinned correct process
  is always in the vector, hence eventually never output.
* ``vecOmega-x`` from ``vecOmega-k`` for ``x >= k``: pad the vector;
  the stable position survives.  (Used by Theorem 7's downward
  induction, where weaker and weaker detectors suffice.)

The converse direction ``vecOmega-k`` from ``anti-Omega-k`` is
Zielinski's construction [28] and is far more involved; this library
treats the two as interchangeable by *specification* (both detectors are
provided natively) and implements the easy emulations above, each in two
forms: a pure history transformer (for direct validity checking) and an
S-process automaton that maintains the emulated output in shared memory
(``red/out/<i>``), which is the paper's official notion of reduction.
"""

from __future__ import annotations

from typing import Any

from ..core.history import History
from ..core.process import ProcessContext
from ..errors import SpecificationError
from ..runtime import ops

EMULATED_OUTPUT_PREFIX = "red/out/"


class _TransformedHistory:
    def __init__(self, inner: History, transform) -> None:
        self._inner = inner
        self._transform = transform

    def value(self, s_index: int, time: int) -> Any:
        return self._transform(self._inner.value(s_index, time))


def anti_omega_1_from_omega(history: History, n: int) -> History:
    """``anti-Omega-1`` history from an ``Omega`` history: output all
    processes except the current leader."""

    def transform(leader: int) -> frozenset[int]:
        return frozenset(q for q in range(n) if q != leader)

    return _TransformedHistory(history, transform)


def omega_from_anti_omega_1(history: History, n: int) -> History:
    """``Omega`` history from an ``anti-Omega-1`` history: the leader is
    the unique process missing from the (n-1)-sized output."""

    def transform(output: frozenset[int]) -> int:
        missing = set(range(n)) - set(output)
        if len(missing) != 1:
            raise SpecificationError(
                f"anti-Omega-1 output must exclude exactly one process, "
                f"got {output}"
            )
        return missing.pop()

    return _TransformedHistory(history, transform)


def anti_omega_k_from_vector(history: History, n: int, k: int) -> History:
    """``anti-Omega-k`` from ``vecOmega-k``: output ``n - k`` processes
    disjoint from the vector (topping up deterministically if the vector
    has repeats)."""

    def transform(vector: tuple[int, ...]) -> frozenset[int]:
        named = set(vector)
        pool = [q for q in range(n) if q not in named]
        pool += sorted(named)
        return frozenset(pool[: n - k])

    return _TransformedHistory(history, transform)


def pad_vector(history: History, x: int) -> History:
    """``vecOmega-x`` from ``vecOmega-k`` for ``x >= k``: repeat entries
    to length ``x`` (the stable position keeps its index)."""

    def transform(vector) -> tuple[int, ...]:
        base = vector if isinstance(vector, tuple) else (vector,)
        if x < len(base):
            raise SpecificationError(
                f"cannot pad a {len(base)}-vector down to {x}"
            )
        out = list(base)
        while len(out) < x:
            out.append(base[-1])
        return tuple(out)

    return _TransformedHistory(history, transform)


def emulation_s_factory(transform, *, n: int):
    """S-process automaton of a reduction algorithm: repeatedly query the
    native detector and publish the transformed value as the emulated
    detector's output (``D'-output_i`` in the paper's Section 2.2)."""

    def factory(ctx: ProcessContext):
        me = ctx.pid.index
        while True:
            value = yield ops.QueryFD()
            yield ops.Write(f"{EMULATED_OUTPUT_PREFIX}{me}", transform(value))

    return factory


def omega_to_anti1_factory(n: int):
    """Reduction automaton: Omega -> anti-Omega-1."""
    return emulation_s_factory(
        lambda leader: frozenset(q for q in range(n) if q != leader), n=n
    )


def vector_to_anti_factory(n: int, k: int):
    """Reduction automaton: vecOmega-k -> anti-Omega-k."""

    def transform(vector):
        base = vector if isinstance(vector, tuple) else (vector,)
        named = set(base)
        pool = [q for q in range(n) if q not in named]
        pool += sorted(named)
        return frozenset(pool[: n - k])

    return emulation_s_factory(transform, n=n)


def weaken_anti_omega(history: History, n: int, k: int) -> History:
    """``anti-Omega-(k+1)`` from ``anti-Omega-k`` — the hierarchy is a
    chain: dropping one (deterministically, the largest) id from each
    output shrinks it to size ``n - k - 1`` and cannot re-introduce the
    eventually-never-output process."""

    def transform(output: frozenset[int]) -> frozenset[int]:
        if len(output) != n - k:
            raise SpecificationError(
                f"expected an (n-k)={n - k} sized output, got {output}"
            )
        return frozenset(sorted(output)[: n - k - 1])

    return _TransformedHistory(history, transform)


def omega_from_perfect(history: History, n: int) -> History:
    """``Omega`` from the perfect detector ``P``: lead with the smallest
    unsuspected process.  Once every crashed process is permanently
    suspected (P's completeness) the choice stabilizes on the smallest
    correct process; accuracy keeps it correct throughout."""

    def transform(suspected: frozenset[int]) -> int:
        alive = [q for q in range(n) if q not in suspected]
        if not alive:
            raise SpecificationError("P suspects everybody")
        return min(alive)

    return _TransformedHistory(history, transform)
