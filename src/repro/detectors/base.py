"""Failure-detector abstraction (paper Section 2.1, following [10]).

A failure detector ``D`` maps each failure pattern ``F`` to a non-empty
set of histories ``D(F)``.  Executable detectors here expose
:meth:`FailureDetector.build_history`, which deterministically selects
one history from ``D(F)`` given a seeded RNG — so a (pattern, seed) pair
fully determines a run, which the deterministic replay machinery
(Figure 1's DAGs, the model checker) depends on.

"Eventual" guarantees are finitized with an explicit
``stabilization_time``: before it the history may output adversarial
noise (still within the detector's range); from it on, the history is
converged.  Algorithms never read the stabilization time; tests sweep it
to confirm nothing depends on its value.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Callable

from ..core.failures import FailurePattern
from ..core.history import History
from ..errors import SpecificationError


def _derived_rng(base_seed: int, s_index: int, time: int) -> random.Random:
    """A deterministic RNG for one (process, time) history cell."""
    return random.Random((base_seed * 1_000_003 + s_index) * 1_000_003 + time)


class FailureDetector(ABC):
    """Base class of all detectors."""

    #: Short name used in reports (e.g. ``"Omega"``, ``"anti-Omega-2"``).
    name: str = "detector"

    @abstractmethod
    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        """Select one history from ``D(pattern)``, seeded by ``rng``."""

    @abstractmethod
    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        """Finitized validity check: does ``history`` look like a member
        of ``D(pattern)`` when observed on ``[0, horizon)`` with the
        eventual clause required to hold from ``stabilized_from`` on?

        Used both to self-check our own detectors and to validate the
        *emulated* histories produced by reduction algorithms (the
        Theorem 8 extraction)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class StabilizingHistory:
    """History that outputs seeded noise before ``stabilization_time`` and
    a converged value from it on.

    Args:
        stable: maps ``s_index`` to the converged output.
        noise: maps ``(s_index, time, rng)`` to a pre-convergence output;
            must stay within the detector's range.
        stabilization_time: the switch-over time.
        base_seed: determinism seed for the noise.
    """

    def __init__(
        self,
        *,
        stable: Callable[[int], Any],
        noise: Callable[[int, int, random.Random], Any],
        stabilization_time: int,
        base_seed: int,
    ) -> None:
        self._stable = stable
        self._noise = noise
        self.stabilization_time = stabilization_time
        self._base_seed = base_seed
        self._cache: dict[tuple[int, int], Any] = {}
        self._converged: dict[int, Any] = {}

    def value(self, s_index: int, time: int) -> Any:
        if time >= self.stabilization_time:
            # The converged output is time-independent, so cache it per
            # process: a (s_index, time) key would miss on every query
            # of a run (time only moves forward) while growing a dict
            # entry per step.
            try:
                return self._converged[s_index]
            except KeyError:
                value = self._converged[s_index] = self._stable(s_index)
                return value
        key = (s_index, time)
        if key not in self._cache:
            self._cache[key] = self._noise(
                s_index, time, _derived_rng(self._base_seed, s_index, time)
            )
        return self._cache[key]


def choose_correct(pattern: FailurePattern, rng: random.Random) -> int:
    """Pick one correct S-process (deterministically under the rng)."""
    correct = sorted(pattern.correct)
    if not correct:
        raise SpecificationError("failure pattern has no correct process")
    return rng.choice(correct)
