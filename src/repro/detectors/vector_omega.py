"""The vector-Omega-k detector (Section 4.2, following [28]).

``vecOmega-k`` outputs a k-vector of S-process ids such that eventually
at least one position stabilizes on the same correct process at all
correct processes.  It is equivalent to anti-Omega-k [28] (see
:mod:`repro.detectors.reductions` for the executable reduction) and is
the form Figure 2's simulation consumes: position ``j`` of the vector is
the leader used to decide steps of simulated process ``p'_{j+1}``.
"""

from __future__ import annotations

import random

from ..core.failures import FailurePattern
from ..core.history import History
from ..errors import SpecificationError
from .base import FailureDetector, StabilizingHistory, choose_correct


class VectorOmegaK(FailureDetector):
    """vector-Omega-k over ``n`` S-processes.

    Args:
        n: number of S-processes.
        k: vector length (1 <= k <= n).
        stabilization_time: time from which the stable position holds.
        stable_position: force which position stabilizes (0-based).
        leader: force the stabilized correct process.
    """

    def __init__(
        self,
        n: int,
        k: int,
        *,
        stabilization_time: int = 0,
        stable_position: int | None = None,
        leader: int | None = None,
    ) -> None:
        if not 1 <= k <= n:
            raise SpecificationError(f"need 1 <= k <= n, got k={k}, n={n}")
        self.n = n
        self.k = k
        self.stabilization_time = stabilization_time
        self.stable_position = stable_position
        self.leader = leader
        self.name = f"vecOmega-{k}"

    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        if pattern.n != self.n:
            raise SpecificationError(
                f"detector built for n={self.n}, pattern has n={pattern.n}"
            )
        leader = self.leader
        if leader is None:
            leader = choose_correct(pattern, rng)
        elif leader not in pattern.correct:
            raise SpecificationError(
                f"forced leader q{leader + 1} is faulty in the pattern"
            )
        position = self.stable_position
        if position is None:
            position = rng.randrange(self.k)
        elif not 0 <= position < self.k:
            raise SpecificationError(f"position {position} out of range")
        n, k = self.n, self.k

        def noise(q: int, t: int, cell_rng: random.Random) -> tuple[int, ...]:
            return tuple(cell_rng.randrange(n) for _ in range(k))

        def stable(q: int) -> tuple[int, ...]:
            # Non-stable positions may output anything; we keep them
            # deterministic but pointing at (possibly faulty) processes.
            vec = [(position + 1 + j) % n for j in range(k)]
            vec[position] = leader
            return tuple(vec)

        return StabilizingHistory(
            stable=stable,
            noise=noise,
            stabilization_time=self.stabilization_time,
            base_seed=rng.randrange(2**31),
        )

    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        """Range check everywhere; from ``stabilized_from`` some position
        must hold the same correct process at all correct processes."""
        for q in range(pattern.n):
            for t in range(horizon):
                v = history.value(q, t)
                if not isinstance(v, tuple) or len(v) != self.k:
                    return False
                if not all(isinstance(i, int) and 0 <= i < self.n for i in v):
                    return False
        for position in range(self.k):
            values = {
                history.value(q, t)[position]
                for q in pattern.correct
                for t in range(stabilized_from, horizon)
            }
            if len(values) == 1 and next(iter(values)) in pattern.correct:
                return True
        return False
