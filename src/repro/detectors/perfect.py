"""The perfect (P) and eventually-perfect (diamond-P) detectors [10].

Not used by the paper's constructions directly, but part of the standard
failure-detector toolbox; the comparison tests use them as reference
points (P is stronger than Omega in every environment, etc.).
Outputs are frozensets of *suspected* S-process indices.
"""

from __future__ import annotations

import random

from ..core.failures import FailurePattern
from ..core.history import History
from .base import FailureDetector, StabilizingHistory


class PerfectDetector(FailureDetector):
    """P: strong completeness + strong accuracy.

    Our finitized rendering suspects exactly the processes crashed at the
    query time, which satisfies both properties.
    """

    name = "P"

    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        class _History:
            def value(self, s_index: int, time: int) -> frozenset[int]:
                return pattern.crashed_at(time)

        return _History()

    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        for q in pattern.correct:
            for t in range(horizon):
                suspected = history.value(q, t)
                # Accuracy: never suspect a process before it crashed.
                if not suspected <= pattern.crashed_at(t):
                    return False
        # Completeness (finitized): by the stabilization point, every
        # faulty process that crashed early is suspected everywhere.
        crashed_early = pattern.crashed_at(stabilized_from)
        for q in pattern.correct:
            for t in range(stabilized_from, horizon):
                if not crashed_early <= history.value(q, t):
                    return False
        return True


class EventuallyPerfectDetector(FailureDetector):
    """diamond-P: eventually suspects exactly the faulty processes.

    Before ``stabilization_time`` it may suspect arbitrary subsets.
    """

    def __init__(self, *, stabilization_time: int = 0) -> None:
        self.stabilization_time = stabilization_time
        self.name = "diamond-P"

    def build_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        n = pattern.n
        faulty = pattern.faulty

        def noise(q: int, t: int, cell_rng: random.Random) -> frozenset[int]:
            return frozenset(
                i for i in range(n) if cell_rng.random() < 0.3
            )

        return StabilizingHistory(
            stable=lambda q: faulty,
            noise=noise,
            stabilization_time=self.stabilization_time,
            base_seed=rng.randrange(2**31),
        )

    def check_history(
        self,
        pattern: FailurePattern,
        history: History,
        *,
        horizon: int,
        stabilized_from: int,
    ) -> bool:
        for q in pattern.correct:
            for t in range(stabilized_from, horizon):
                if history.value(q, t) != pattern.faulty:
                    return False
        return True
