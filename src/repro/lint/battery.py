"""Traced reference runs: the dynamic evidence for ``--strict`` lint.

Each battery entry executes one bundled algorithm *inside the
concurrency envelope it is specified for* and keeps the full trace.
Two kinds of passes consume the battery:

* :class:`~repro.lint.passes.trace_races.TraceRaces` replays the
  race analyzer over the entries marked ``race_check`` (the historical
  strict battery — outside their envelopes these algorithms *do*
  exhibit hazards, and the tests demonstrate that).
* :class:`~repro.lint.passes.footprints.FootprintAudit` differentially
  checks every entry's op-log against the static footprints and
  against :func:`repro.runtime.ops.footprint` — the declaration the
  partial-order reduction in :mod:`repro.checker.independence` trusts.

The battery deliberately covers every Figure 1–4 algorithm family that
can run standalone, including ones with dynamic (spec-relative or
splitter-grid) register names, so the audit exercises both closed and
open static footprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.run import RunResult

__all__ = ["BatteryRun", "battery_runs"]


@dataclass
class BatteryRun:
    """One traced reference run.

    ``automaton_of`` maps a pid *name* (``p1``/``q2`` …) to the
    ``(module, automaton)`` pair naming its schema declaration, so
    dynamic passes can tie trace events back to static IR.  Pids
    running null automata are simply absent.
    """

    label: str
    result: RunResult
    automaton_of: dict[str, tuple[str, str]]
    race_check: bool


def _pid_map(
    n_c: int,
    c_name: tuple[str, str] | None,
    n_s: int = 0,
    s_name: tuple[str, str] | None = None,
) -> dict[str, tuple[str, str]]:
    mapping: dict[str, tuple[str, str]] = {}
    if c_name is not None:
        for i in range(n_c):
            mapping[f"p{i + 1}"] = c_name
    if s_name is not None:
        for i in range(n_s):
            mapping[f"q{i + 1}"] = s_name
    return mapping


def battery_runs() -> tuple[BatteryRun, ...]:
    """Execute the battery (fresh runs; deterministic seeds)."""
    from ..algorithms.kset_concurrent import kset_concurrent_factories
    from ..algorithms.kset_vector import kset_factories
    from ..algorithms.one_concurrent import one_concurrent_factories
    from ..algorithms.renaming_figure4 import figure4_factories
    from ..algorithms.s_helper import helper_c_factory, helper_s_factory
    from ..algorithms.splitters import moir_anderson_factories
    from ..algorithms.wsb_concurrent import wsb_concurrent_factories
    from ..core.system import System
    from ..detectors import VectorOmegaK
    from ..runtime import SeededRandomScheduler, execute, k_concurrent
    from ..tasks import ConsensusTask

    runs: list[BatteryRun] = []

    task = ConsensusTask(3)
    system = System(
        inputs=(0, 1, 1), c_factories=one_concurrent_factories(task)
    )
    result = execute(
        system,
        k_concurrent(SeededRandomScheduler(7), 1),
        trace=True,
        max_steps=50_000,
    )
    runs.append(
        BatteryRun(
            label="one_concurrent@1",
            result=result,
            automaton_of=_pid_map(
                3, ("one_concurrent", "one_concurrent_factory")
            ),
            race_check=True,
        )
    )

    system = System(
        inputs=(3, 4, 5),
        c_factories=kset_concurrent_factories(3, 2),
    )
    result = execute(
        system,
        k_concurrent(SeededRandomScheduler(11), 1),
        trace=True,
        max_steps=50_000,
    )
    runs.append(
        BatteryRun(
            label="kset_concurrent@1",
            result=result,
            automaton_of=_pid_map(
                3, ("kset_concurrent", "kset_concurrent_factory")
            ),
            race_check=True,
        )
    )

    system = System(
        inputs=(6, 7, 8),
        c_factories=[helper_c_factory] * 3,
        s_factories=[helper_s_factory] * 3,
    )
    result = execute(
        system,
        SeededRandomScheduler(13),
        trace=True,
        max_steps=50_000,
    )
    runs.append(
        BatteryRun(
            label="s_helper",
            result=result,
            automaton_of=_pid_map(
                3,
                ("s_helper", "helper_c_factory"),
                3,
                ("s_helper", "helper_s_factory"),
            ),
            race_check=True,
        )
    )

    system = System(
        inputs=(1, 2, None), c_factories=figure4_factories(3)
    )
    result = execute(
        system,
        SeededRandomScheduler(17),
        trace=True,
        max_steps=50_000,
    )
    runs.append(
        BatteryRun(
            label="figure4",
            result=result,
            automaton_of=_pid_map(
                3, ("renaming_figure4", "figure4_factory")
            ),
            race_check=False,
        )
    )

    system = System(
        inputs=(1, None, 3),
        c_factories=wsb_concurrent_factories(3, 2),
    )
    result = execute(
        system,
        k_concurrent(SeededRandomScheduler(19), 2),
        trace=True,
        max_steps=50_000,
    )
    runs.append(
        BatteryRun(
            label="wsb@2",
            result=result,
            automaton_of=_pid_map(
                3, ("wsb_concurrent", "wsb_concurrent_factory")
            ),
            race_check=False,
        )
    )

    system = System(
        inputs=(1, 2, 3, None, None),
        c_factories=moir_anderson_factories(5, 3),
    )
    result = execute(
        system,
        SeededRandomScheduler(23),
        trace=True,
        max_steps=50_000,
    )
    runs.append(
        BatteryRun(
            label="moir_anderson",
            result=result,
            automaton_of=_pid_map(
                5, ("splitters", "moir_anderson_factory")
            ),
            race_check=False,
        )
    )

    c_factories, s_factories = kset_factories(2, 1)
    system = System(
        inputs=(0, 1),
        c_factories=c_factories,
        s_factories=s_factories,
        detector=VectorOmegaK(2, 1),
        seed=3,
    )
    result = execute(
        system,
        SeededRandomScheduler(29),
        trace=True,
        max_steps=200_000,
    )
    runs.append(
        BatteryRun(
            label="kset_vector",
            result=result,
            automaton_of=_pid_map(
                2,
                ("kset_vector", "kset_c_factory"),
                2,
                ("kset_vector", "kset_s_factory"),
            ),
            race_check=False,
        )
    )

    return tuple(runs)
