"""The five static protocol rules (paper Section 2.1).

Each rule is a class with a ``rule_id`` and a
``check(view, schema) -> list[Finding]`` method over one
:class:`~repro.lint.protocol.AutomatonView`.  The rules are
conservative: a yield whose operation or register operand cannot be
resolved statically is never reported (dynamic dispatch is checked at
run time by the executor and the trace analyzer instead).
"""

from __future__ import annotations

import ast

from ..runtime import ops
from .findings import Finding
from .protocol import AutomatonView, YieldView
from .schema import ModuleSchema

#: Yielded ops that observe shared state or detector advice — the
#: things that can make a spin loop terminate in someone else's steps.
_OBSERVING_OPS = (ops.Read, ops.Snapshot, ops.CompareAndSwap, ops.QueryFD)


class Rule:
    """Base class: common finding construction."""

    rule_id: str = ""

    def check(
        self, view: AutomatonView, schema: ModuleSchema
    ) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(
        self, view: AutomatonView, line: int, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            file=view.file,
            line=line,
            process_kind=view.kind,
            message=f"{view.name}: {message}",
        )


class CNoQuery(Rule):
    """C-processes never consult the failure detector (Section 2.1:
    only S-processes carry failure-detector modules).

    Applied to C-automata and to kind-neutral subroutines — a
    subroutine a C-process may ``yield from`` must itself be
    query-free.
    """

    rule_id = "CNoQuery"

    def check(
        self, view: AutomatonView, schema: ModuleSchema
    ) -> list[Finding]:
        if view.kind == "S":
            return []
        return [
            self.finding(
                view,
                y.line,
                "C-process code yields QueryFD; only S-processes may "
                "consult the detector",
            )
            for y in view.yields
            if y.op is ops.QueryFD
        ]


class DecideOnce(Rule):
    """Every C-automaton decides exactly once, then yields nothing.

    The paper: a C-process takes a *decide* step once, after which all
    its steps are null.  Statically this means (a) a deciding C-automaton
    has at least one ``Decide`` yield, (b) every ``Decide`` yield sits in
    tail position — followed by at most a ``return``, with no enclosing
    loop that could re-enter it from behind — and (c) S-automata never
    yield ``Decide`` at all.
    """

    rule_id = "DecideOnce"

    def check(
        self, view: AutomatonView, schema: ModuleSchema
    ) -> list[Finding]:
        decide_yields = [y for y in view.yields if y.op is ops.Decide]
        if view.kind == "S":
            return [
                self.finding(
                    view, y.line, "S-process automaton yields Decide"
                )
                for y in decide_yields
            ]
        if view.kind != "C":
            return [
                self.finding(
                    view,
                    y.line,
                    "subroutine yields Decide; deciding is the "
                    "automaton's own final step",
                )
                for y in decide_yields
            ]
        findings = []
        if not decide_yields and view.name not in schema.non_deciding:
            findings.append(
                self.finding(
                    view,
                    view.line,
                    "C-automaton never yields Decide (wait-freedom "
                    "requires a decide step; declare it in "
                    "`non_deciding` if its decision surfaces elsewhere)",
                )
            )
        for y in decide_yields:
            if not self._terminal(y):
                findings.append(
                    self.finding(
                        view,
                        y.line,
                        "Decide is not in tail position; a decided "
                        "C-process takes only null steps",
                    )
                )
        return findings

    @staticmethod
    def _terminal(y: YieldView) -> bool:
        """Is this Decide yield the automaton's last action on every
        path through it?"""
        path = y.statement_path
        if not path:
            return False
        # Innermost block first: statements after the decide must be at
        # most a single `return`.
        _, block, index = path[-1]
        rest = block[index + 1 :]
        if len(rest) == 1 and isinstance(rest[0], ast.Return):
            return True
        if rest:
            return False
        # Falls off the end of its block: every enclosing level must
        # also be in tail position, and none may be a loop (a loop would
        # run the decide again or yield after it).
        for parent, block, index in reversed(path[:-1]):
            if isinstance(parent, (ast.While, ast.For)):
                return False
            rest = block[index + 1 :]
            if len(rest) == 1 and isinstance(rest[0], ast.Return):
                return True
            if rest:
                return False
        # Reached the generator body's end.
        return True


class NoCASInFaithful(Rule):
    """Paper-faithful algorithms never yield ``CompareAndSwap``.

    CAS is not in the paper's step alphabet; it exists only for the
    documented Extended-BG substitution (DESIGN.md).  Any other use is
    silently assuming a primitive stronger than registers — exactly the
    mistake Lemma 11-style impossibility arguments exclude.
    """

    rule_id = "NoCASInFaithful"

    def check(
        self, view: AutomatonView, schema: ModuleSchema
    ) -> list[Finding]:
        if not schema.faithful or view.name in schema.cas_allowlist:
            return []
        return [
            self.finding(
                view,
                y.line,
                "yields CompareAndSwap in a paper-faithful module; "
                "allowlist it in the module's lint schema if the "
                "deviation is deliberate and documented",
            )
            for y in view.yields
            if y.op is ops.CompareAndSwap
        ]


class BoundedLoops(Rule):
    """C-process ``while`` loops must observe shared state or advice.

    A loop whose body only yields ``Nop``/``Write``/``Decide`` can never
    terminate based on another process's progress — in C-process code
    that is a wait-freedom smell (the loop either runs forever or was
    never a loop).  Loops containing a ``yield from`` (a subroutine that
    may observe) or a dynamic yield are given the benefit of the doubt,
    as are pure local-computation loops with no yields at all.
    """

    rule_id = "BoundedLoops"

    def check(
        self, view: AutomatonView, schema: ModuleSchema
    ) -> list[Finding]:
        if view.kind == "S":
            return []
        findings = []
        for loop in view.while_loops:
            loop_yields = [
                y
                for y in view.yields
                if self._within(loop, y.node)
            ]
            if not loop_yields:
                continue  # local computation, not a scheduling loop
            if any(
                y.is_from or y.op is None or y.op in _OBSERVING_OPS
                for y in loop_yields
            ):
                continue
            findings.append(
                self.finding(
                    view,
                    loop.lineno,
                    "while-loop body never reads shared memory or "
                    "advice; it cannot terminate in response to helper "
                    "progress (wait-freedom smell)",
                )
            )
        return findings

    @staticmethod
    def _within(loop: ast.While, node: ast.expr) -> bool:
        return any(node is candidate for candidate in ast.walk(loop))


class RegisterNaming(Rule):
    """Every statically-resolvable register name must be declared.

    The module's :class:`~repro.lint.schema.RegisterSchema` is the
    register namespace contract; yielding a name outside it means either
    the schema is stale or the algorithm is scribbling on another
    module's register family.
    """

    rule_id = "RegisterNaming"

    def check(
        self, view: AutomatonView, schema: ModuleSchema
    ) -> list[Finding]:
        findings = []
        for y in view.yields:
            if y.register is None:
                continue
            is_prefix = y.op is ops.Snapshot
            if schema.registers.allows(
                y.register.text, is_prefix=is_prefix
            ):
                continue
            what = "prefix" if is_prefix else "register"
            shown = y.register.text if y.register.exact else (
                f"{y.register.text}…"
            )
            findings.append(
                self.finding(
                    view,
                    y.line,
                    f"{what} {shown!r} is not declared by the module's "
                    "register schema",
                )
            )
        return findings


#: The five rule classes, in reporting order.
ALL_RULES = (
    CNoQuery,
    DecideOnce,
    NoCASInFaithful,
    BoundedLoops,
    RegisterNaming,
)
