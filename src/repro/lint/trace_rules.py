"""Dynamic trace analysis: race/atomicity hazards in recorded runs.

The static linter checks the *shape* of an automaton; this module
checks what actually happened in a traced run.  It maintains a vector
clock per process, advanced on every step and joined along reads-from
edges (a read or snapshot joins the clock of the write it observed), so
"process ``p`` knows about write ``w``" is the happens-before test
``vc(w) <= vc(p)`` — not mere trace order, which would misreport writes
``p`` learned about through another register.

Two hazard patterns are reported as findings:

* **LostUpdate** — an interleaved read-modify-write: ``p`` reads
  register ``r``, some ``q`` writes ``r``, and ``p`` then writes ``r``
  without having observed ``q``'s write (directly or transitively).
  ``p``'s write destroys data it never saw.  Writes with no prior read
  (blind writes) and ``CompareAndSwap`` steps (atomic RMW — the fix for
  this hazard) are exempt.
* **SnapshotRace** — non-linearizable snapshot usage: ``p`` writes into
  a register family it last observed via an atomic ``Snapshot``, but
  another process changed the family after that snapshot and ``p``
  never re-observed it.  The snapshot+write pair is not linearizable as
  one atomic action; algorithms are only safe against this within their
  declared concurrency envelope (this is precisely the hazard
  k-concurrency gating bounds — see ``docs/static_analysis.md``).

Findings are hazards, not proofs of incorrectness: a correct algorithm
may tolerate them by design (Paxos re-validates after its collects).
They are therefore surfaced through *opt-in* strict modes
(:func:`repro.analysis.verify.verify_run` and ``repro lint --strict``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.process import ProcessId
from ..runtime import ops
from ..runtime.trace import Trace
from .findings import Finding

TRACE_FILE = "<trace>"


@dataclass
class _WriteRecord:
    time: int
    pid: ProcessId
    value: Any
    clock: dict[ProcessId, int]


def _leq(a: dict[ProcessId, int], b: dict[ProcessId, int]) -> bool:
    return all(b.get(pid, 0) >= ticks for pid, ticks in a.items())


def _join(into: dict[ProcessId, int], other: dict[ProcessId, int]) -> None:
    for pid, ticks in other.items():
        if into.get(pid, 0) < ticks:
            into[pid] = ticks


@dataclass
class _ProcessState:
    clock: dict[ProcessId, int] = field(default_factory=dict)
    #: register -> time of this process's last direct observation of it
    last_read: dict[str, int] = field(default_factory=dict)
    #: snapshot prefix -> time of this process's last snapshot of it
    last_snapshot: dict[str, int] = field(default_factory=dict)


class TraceAnalyzer:
    """Single-pass vector-clock analysis of one :class:`Trace`."""

    def __init__(self) -> None:
        self._writes: dict[str, list[_WriteRecord]] = {}
        self._processes: dict[ProcessId, _ProcessState] = {}
        self.findings: list[Finding] = []

    def _state(self, pid: ProcessId) -> _ProcessState:
        state = self._processes.get(pid)
        if state is None:
            state = self._processes[pid] = _ProcessState()
        return state

    def _observe(self, state: _ProcessState, register: str, time: int) -> None:
        state.last_read[register] = time
        records = self._writes.get(register)
        if records:
            _join(state.clock, records[-1].clock)

    def _record_write(
        self, pid: ProcessId, state: _ProcessState, register: str,
        value: Any, time: int,
    ) -> None:
        self._writes.setdefault(register, []).append(
            _WriteRecord(time, pid, value, dict(state.clock))
        )

    def _hazard(
        self, rule: str, time: int, pid: ProcessId, message: str
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                file=TRACE_FILE,
                line=time,
                process_kind=pid.kind.value,
                message=message,
            )
        )

    # -- hazard checks (run before the write is recorded) ---------------

    def _check_lost_update(
        self, pid: ProcessId, state: _ProcessState, register: str,
        value: Any, time: int,
    ) -> None:
        read_time = state.last_read.get(register)
        if read_time is None:
            return  # blind write, not a read-modify-write
        for record in self._writes.get(register, ()):
            if record.time <= read_time or record.pid == pid:
                continue
            if _leq(record.clock, state.clock):
                continue  # p learned of it transitively
            if record.value == value:
                continue  # idempotent overwrite (e.g. agreed decisions)
            self._hazard(
                "LostUpdate",
                time,
                pid,
                f"{pid.name} writes {register!r} (read at t={read_time}) "
                f"over {record.pid.name}'s unobserved t={record.time} "
                "write — interleaved read-modify-write loses an update",
            )
            return

    def _check_snapshot_race(
        self, pid: ProcessId, state: _ProcessState, register: str, time: int
    ) -> None:
        snap_times = [
            t
            for prefix, t in state.last_snapshot.items()
            if register.startswith(prefix)
        ]
        if not snap_times:
            return
        snap_time = max(snap_times)
        prefix = max(
            (
                p
                for p, t in state.last_snapshot.items()
                if register.startswith(p) and t == snap_time
            ),
            key=len,
        )
        for other, records in self._writes.items():
            if not other.startswith(prefix) or other == register:
                continue
            for record in records:
                if record.time <= snap_time or record.pid == pid:
                    continue
                if _leq(record.clock, state.clock):
                    continue
                self._hazard(
                    "SnapshotRace",
                    time,
                    pid,
                    f"{pid.name} writes {register!r} based on its "
                    f"t={snap_time} snapshot of {prefix!r}*, but "
                    f"{record.pid.name} changed {other!r} at "
                    f"t={record.time} unobserved — the snapshot+write "
                    "pair is not linearizable",
                )
                return

    # -- event dispatch --------------------------------------------------

    def feed(self, event: Any) -> None:
        pid = event.pid
        state = self._state(pid)
        state.clock[pid] = state.clock.get(pid, 0) + 1
        op = event.op
        if isinstance(op, ops.Read):
            self._observe(state, op.register, event.time)
        elif isinstance(op, ops.Snapshot):
            result = event.result if isinstance(event.result, dict) else {}
            for register in result:
                self._observe(state, register, event.time)
            state.last_snapshot[op.prefix] = event.time
        elif isinstance(op, ops.Write):
            self._check_lost_update(
                pid, state, op.register, op.value, event.time
            )
            self._check_snapshot_race(pid, state, op.register, event.time)
            self._record_write(pid, state, op.register, op.value, event.time)
        elif isinstance(op, ops.CompareAndSwap):
            # Atomic read-modify-write: an observation plus (on success)
            # a write, with no hazard window by construction.
            self._observe(state, op.register, event.time)
            if event.result == op.expected:
                self._record_write(
                    pid, state, op.register, op.new, event.time
                )

    def run(self, trace: Trace) -> list[Finding]:
        for event in trace:
            self.feed(event)
        return self.findings


def analyze_trace(trace: Trace) -> list[Finding]:
    """Run the race/atomicity analysis over a recorded trace."""
    return TraceAnalyzer().run(trace)
