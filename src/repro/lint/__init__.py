"""Static protocol linter + dynamic trace race detector.

The EFD model's well-formedness rules (paper Section 2.1) — C-processes
never query the detector, every C-process decides exactly once and then
takes only null steps, paper-faithful algorithms never use
compare-and-swap — are *preconditions* for every theorem this package
reproduces.  This subpackage enforces them mechanically:

* the **static layer** (:mod:`.protocol`, :mod:`.static_rules`) checks
  every declared automaton in :mod:`repro.algorithms` at the AST level,
  against per-module :class:`~repro.lint.schema.ModuleSchema`
  declarations registered in ``repro.algorithms.LINT_SCHEMAS``;
* the **dynamic layer** (:mod:`.trace_rules`) analyzes recorded
  :class:`~repro.runtime.trace.Trace` objects with vector clocks and
  flags lost-update and snapshot-linearizability hazards.

Entry points: ``python -m repro lint [--strict]`` on the command line,
:func:`lint_algorithms` programmatically, and the ``strict=`` flag of
:func:`repro.analysis.verify.verify_run` for per-run checking.  See
``docs/static_analysis.md`` for the rule catalogue and paper citations.
"""

from .findings import Finding, LintReport
from .protocol import AutomatonView, extract_automata
from .runner import (
    DYNAMIC_RULE_IDS,
    STATIC_RULE_IDS,
    lint_algorithms,
    lint_module,
)
from .schema import ModuleSchema, RegisterSchema
from .static_rules import (
    ALL_RULES,
    BoundedLoops,
    CNoQuery,
    DecideOnce,
    NoCASInFaithful,
    RegisterNaming,
)
from .trace_rules import TraceAnalyzer, analyze_trace

__all__ = [
    "Finding",
    "LintReport",
    "AutomatonView",
    "extract_automata",
    "lint_algorithms",
    "lint_module",
    "STATIC_RULE_IDS",
    "DYNAMIC_RULE_IDS",
    "ModuleSchema",
    "RegisterSchema",
    "ALL_RULES",
    "CNoQuery",
    "DecideOnce",
    "NoCASInFaithful",
    "BoundedLoops",
    "RegisterNaming",
    "TraceAnalyzer",
    "analyze_trace",
]
