"""Semantic protocol analyzer + dynamic trace race detector.

The EFD model's well-formedness rules (paper Section 2.1) — C-processes
never query the detector, every C-process decides exactly once and then
takes only null steps, paper-faithful algorithms never use
compare-and-swap — are *preconditions* for every theorem this package
reproduces.  This subpackage enforces them mechanically:

* the **IR layer** (:mod:`.ir`) compiles each schema-declared automaton
  into a statement-level control-flow graph with register def/use facts
  and a static register footprint;
* the **pass layer** (:mod:`.passes`) hosts declarative analyses over
  that IR in a pluggable registry: the five original AST protocol rules,
  semantic obligations (reachability-of-decide, single-writer /
  write-once ownership, query-before-use of detector advice), and —
  under ``--strict`` — the differential footprint audit that checks the
  op-log of real traced runs against the footprint declarations the
  partial-order reduction trusts;
* the **dynamic layer** (:mod:`.trace_rules`) analyzes recorded
  :class:`~repro.runtime.trace.Trace` objects with vector clocks and
  flags lost-update and snapshot-linearizability hazards.

Entry points: ``python -m repro lint [--strict] [--format
text|json|sarif]`` on the command line, :func:`lint_algorithms`
programmatically, and the ``strict=`` flag of
:func:`repro.analysis.verify.verify_run` for per-run checking.  See
``docs/static_analysis.md`` for the architecture, the rule catalogue,
and the third-party pass contract.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .findings import Finding, LintReport
from .formats import render_json, render_report, render_sarif
from .ir import CFG, StaticFootprint, build_cfg, infer_footprint
from .passes import (
    AutomatonIR,
    LintPass,
    ModuleUnit,
    PassContext,
    PassResult,
    all_passes,
    pass_by_id,
    register_pass,
    resolve_passes,
)
from .protocol import AutomatonView, extract_automata
from .runner import (
    DYNAMIC_RULE_IDS,
    SEMANTIC_RULE_IDS,
    STATIC_RULE_IDS,
    build_units,
    lint_algorithms,
    lint_module,
)
from .schema import ModuleSchema, RegisterSchema
from .static_rules import (
    ALL_RULES,
    BoundedLoops,
    CNoQuery,
    DecideOnce,
    NoCASInFaithful,
    RegisterNaming,
)
from .trace_rules import TraceAnalyzer, analyze_trace

__all__ = [
    "Finding",
    "LintReport",
    "AutomatonView",
    "extract_automata",
    "lint_algorithms",
    "lint_module",
    "build_units",
    "STATIC_RULE_IDS",
    "SEMANTIC_RULE_IDS",
    "DYNAMIC_RULE_IDS",
    "ModuleSchema",
    "RegisterSchema",
    "ALL_RULES",
    "CNoQuery",
    "DecideOnce",
    "NoCASInFaithful",
    "BoundedLoops",
    "RegisterNaming",
    "TraceAnalyzer",
    "analyze_trace",
    # IR
    "CFG",
    "StaticFootprint",
    "build_cfg",
    "infer_footprint",
    # pass framework
    "AutomatonIR",
    "ModuleUnit",
    "PassContext",
    "PassResult",
    "LintPass",
    "register_pass",
    "all_passes",
    "pass_by_id",
    "resolve_passes",
    # output / baseline
    "render_report",
    "render_json",
    "render_sarif",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]
