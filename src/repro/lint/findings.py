"""Structured lint findings.

Both lint layers — the static protocol linter and the dynamic trace
analyzer — report :class:`Finding` records: one rule violation (or
hazard) each, carrying enough location information to act on.  The
static layer fills ``file``/``line`` with source coordinates; the
dynamic layer reports the trace it analyzed as the "file" and the step
index of the hazardous event as the "line".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: rule identifier (``CNoQuery``, ``DecideOnce``,
            ``NoCASInFaithful``, ``BoundedLoops``, ``RegisterNaming``,
            ``LostUpdate``, ``SnapshotRace``).
        file: source file of the offending code, or ``"<trace>"`` for
            dynamic findings.
        line: 1-based source line, or the trace time of the hazardous
            step for dynamic findings.
        process_kind: ``"C"``, ``"S"``, or ``"-"`` when the kind is not
            attributable (e.g. a kind-neutral subroutine).
        message: human-readable description of the violation.
    """

    rule: str
    file: str
    line: int
    process_kind: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def render(self) -> str:
        return (
            f"{self.location}: [{self.rule}] ({self.process_kind}) "
            f"{self.message}"
        )


@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    modules_checked: tuple[str, ...] = ()
    rules_run: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def render(self) -> str:
        lines = [
            f"checked {len(self.modules_checked)} module(s), "
            f"rules: {', '.join(self.rules_run)}"
        ]
        if self.ok:
            lines.append("no violations")
        else:
            lines.extend(f.render() for f in self.findings)
            lines.append(f"{len(self.findings)} violation(s)")
        return "\n".join(lines)
