"""Structured lint findings.

Every lint layer — the AST protocol rules, the semantic CFG passes,
and the dynamic battery passes — reports :class:`Finding` records: one
rule violation (or hazard) each, carrying enough location information
to act on.  Static passes fill ``file``/``line`` with source
coordinates; dynamic passes report the analyzed trace or battery run
as the "file" and the trace time of the offending event as the
"line".

Findings carry a *stable content-hashed id* (:attr:`Finding.id`):
the hash covers the rule, the file's basename, the process kind, and
the message — deliberately **not** the line number, so reformatting a
module does not churn ids.  Baseline suppression
(:mod:`repro.lint.baseline`) and SARIF output key on these ids.
Report ordering is deterministic: findings sort by
``(file, line, rule, message)`` regardless of pass execution order.
"""

from __future__ import annotations

import hashlib
import posixpath
from dataclasses import dataclass, field
from typing import Any

#: Finding severities, in increasing order of concern.  Only
#: ``"error"`` findings fail the build; ``"warning"`` findings are
#: advisory (shown, counted, but exit 0).
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: rule identifier (``CNoQuery``, ``ReachDecide``,
            ``FootprintAudit``, ``LostUpdate`` …).
        file: source file of the offending code, or a pseudo-file such
            as ``"<trace:label>"`` / ``"<battery:label>"`` for dynamic
            findings.
        line: 1-based source line, or the trace time of the hazardous
            step for dynamic findings.
        process_kind: ``"C"``, ``"S"``, or ``"-"`` when the kind is not
            attributable (e.g. a kind-neutral subroutine).
        message: human-readable description of the violation.
        severity: ``"error"`` (default) or ``"warning"``.
    """

    rule: str
    file: str
    line: int
    process_kind: str
    message: str
    severity: str = "error"

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    @property
    def id(self) -> str:
        """Stable content hash (line-independent, path-independent)."""
        payload = "|".join(
            (
                self.rule,
                posixpath.basename(self.file.replace("\\", "/")),
                self.process_kind,
                self.message,
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def sort_key(self) -> tuple[str, int, str, str]:
        return (self.file, self.line, self.rule, self.message)

    def render(self) -> str:
        return (
            f"{self.location}: {self.severity} [{self.rule}] "
            f"({self.process_kind}) {self.message}  "
            f"(id {self.id})"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "process_kind": self.process_kind,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    modules_checked: tuple[str, ...] = ()
    rules_run: tuple[str, ...] = ()
    passes_run: tuple[str, ...] = ()
    #: findings suppressed by the baseline, kept for inspection
    suppressed: list[Finding] = field(default_factory=list)
    #: facts published by fact-producing passes, keyed by fact id
    facts: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def has_errors(self) -> bool:
        return any(f.severity == "error" for f in self.findings)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def finalize(self) -> "LintReport":
        """Impose the deterministic finding order (idempotent)."""
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)
        return self

    def render(self) -> str:
        self.finalize()
        lines = [
            f"checked {len(self.modules_checked)} module(s), "
            f"rules: {', '.join(self.rules_run)}"
        ]
        if self.suppressed:
            lines.append(
                f"{len(self.suppressed)} finding(s) suppressed by "
                "baseline"
            )
        if self.ok:
            lines.append("no violations")
        else:
            lines.extend(f.render() for f in self.findings)
            lines.append(f"{len(self.findings)} violation(s)")
        return "\n".join(lines)
