"""AST extraction for the static protocol linter.

This module turns an algorithm module into checkable
:class:`AutomatonView` objects: for every function a
:class:`~repro.lint.schema.ModuleSchema` declares, it locates the
generator that constitutes the automaton (the named function itself if
it is a generator, else its unique inner generator — the standard
``def factory(ctx):`` idiom), and statically classifies every ``yield``
in the generator's own scope.

Classification resolves names through the *imported* module's globals,
so ``yield ops.QueryFD()`` and ``yield Snapshot(INPUT_REGISTER_PREFIX)``
both resolve no matter how the op was imported.  Dynamic yields
(``yield pending``) and closure-dependent register names
(``f"{spec.name}/R/"``) resolve to *unknown* and are skipped — the
linter never guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Iterator, Sequence

from ..errors import SpecificationError
from ..runtime import ops

#: Operation classes a yield may resolve to.
OP_CLASSES = (
    ops.Read,
    ops.Write,
    ops.Snapshot,
    ops.QueryFD,
    ops.Decide,
    ops.Nop,
    ops.CompareAndSwap,
)

#: Ops that carry a register name in their first argument.
_REGISTER_OPS = {
    ops.Read: "register",
    ops.Write: "register",
    ops.CompareAndSwap: "register",
    ops.Snapshot: "prefix",
}


@dataclass(frozen=True)
class ResolvedRegister:
    """A statically-resolved register operand.

    ``exact`` is ``True`` when the full name is known and ``False`` when
    only a leading prefix could be resolved (the tail was dynamic, e.g.
    an index interpolated into an f-string).
    """

    text: str
    exact: bool


@dataclass
class YieldView:
    """One ``yield`` (or ``yield from``) inside an automaton's scope."""

    node: ast.expr
    line: int
    is_from: bool
    op: type | None = None  #: resolved op class, or None if dynamic
    register: ResolvedRegister | None = None
    #: (block, index) chain from the generator body down to the
    #: statement containing this yield; used by path-sensitive rules.
    statement_path: tuple[tuple[ast.AST | None, list, int], ...] = ()


@dataclass
class AutomatonView:
    """Everything a rule needs to know about one declared function."""

    name: str  #: schema name (possibly dotted)
    kind: str  #: "C", "S", or "-" (kind-neutral subroutine)
    file: str
    module_name: str
    node: ast.AST  #: the generator's FunctionDef
    yields: list[YieldView] = field(default_factory=list)
    while_loops: list[ast.While] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.node.lineno


# -- name resolution ------------------------------------------------------


def resolve_expression(node: ast.expr, namespace: dict[str, Any]) -> Any:
    """Resolve a Name/Attribute/Constant chain against ``namespace``.

    Returns the resolved object, or :data:`_UNRESOLVED` when the
    expression depends on local/closure state the linter cannot see.
    """
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in namespace:
            return namespace[node.id]
        return _UNRESOLVED
    if isinstance(node, ast.Attribute):
        base = resolve_expression(node.value, namespace)
        if base is _UNRESOLVED:
            return _UNRESOLVED
        try:
            return getattr(base, node.attr)
        except AttributeError:
            return _UNRESOLVED
    return _UNRESOLVED


class _Unresolved:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unresolved>"


_UNRESOLVED = _Unresolved()


def _resolve_register(
    node: ast.expr, namespace: dict[str, Any]
) -> ResolvedRegister | None:
    """The static text (full name or leading prefix) of a register
    operand, or ``None`` when nothing can be resolved."""
    value = resolve_expression(node, namespace)
    if isinstance(value, str):
        return ResolvedRegister(value, exact=True)
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        exact = True
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(
                piece.value, str
            ):
                parts.append(piece.value)
                continue
            if isinstance(piece, ast.FormattedValue):
                resolved = resolve_expression(piece.value, namespace)
                if isinstance(resolved, str):
                    parts.append(resolved)
                    continue
            exact = False
            break
        prefix = "".join(parts)
        if not prefix:
            return None
        return ResolvedRegister(prefix, exact=exact)
    return None


def classify_yield(
    node: ast.expr, namespace: dict[str, Any]
) -> tuple[type | None, ResolvedRegister | None, ast.expr | None]:
    """(op class, resolved register, register operand AST) of a plain
    ``yield`` expression.  The operand AST is returned even when the
    register text could not be fully resolved, so structural checks
    (e.g. ownership of an f-string's index component) can inspect it."""
    inner = node.value if isinstance(node, ast.Yield) else None
    if inner is None or not isinstance(inner, ast.Call):
        return None, None, None
    op_class = resolve_expression(inner.func, namespace)
    if not (isinstance(op_class, type) and op_class in OP_CLASSES):
        return None, None, None
    register = None
    operand: ast.expr | None = None
    if op_class in _REGISTER_OPS:
        if inner.args:
            operand = inner.args[0]
        else:
            wanted = _REGISTER_OPS[op_class]
            for keyword in inner.keywords:
                if keyword.arg == wanted:
                    operand = keyword.value
        if operand is not None:
            register = _resolve_register(operand, namespace)
    return op_class, register, operand


def _classify_yield(
    node: ast.expr, namespace: dict[str, Any]
) -> tuple[type | None, ResolvedRegister | None]:
    """(op class, register operand) of a plain ``yield`` expression."""
    op_class, register, _ = classify_yield(node, namespace)
    return op_class, register


# -- generator location ---------------------------------------------------

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _own_scope_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """All nodes in ``func``'s own scope (nested defs excluded)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_BARRIERS):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _own_scope_nodes(func)
    )


def _lookup_def(tree: ast.Module, dotted: str) -> ast.AST | None:
    """Find the (possibly nested) def/class addressed by ``dotted``."""
    scope: Sequence[ast.stmt] = tree.body
    found: ast.AST | None = None
    for segment in dotted.split("."):
        found = None
        for node in scope:
            if (
                isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and node.name == segment
            ):
                found = node
                break
        if found is None:
            return None
        scope = found.body
    return found


def _automaton_generator(func: ast.AST, dotted: str) -> ast.AST:
    """The generator constituting the automaton declared as ``dotted``.

    Either the named def itself (if it yields), or its unique inner
    generator — the ``def factory(ctx)`` idiom.
    """
    if _is_generator(func):
        return func
    inner = [
        node
        for node in getattr(func, "body", [])
        if isinstance(node, ast.FunctionDef) and _is_generator(node)
    ]
    if len(inner) != 1:
        raise SpecificationError(
            f"{dotted}: expected the function to be a generator or to "
            f"contain exactly one inner generator, found {len(inner)}"
        )
    return inner[0]


# -- statement paths (for path-sensitive rules) ---------------------------

_BLOCK_FIELDS = ("body", "orelse", "finalbody", "handlers")


def _statement_paths(
    func: ast.AST,
) -> Iterator[tuple[ast.stmt, tuple]]:
    """Yield ``(statement, path)`` for every statement in ``func``'s own
    scope, where ``path`` is the ``(parent, block, index)`` chain from
    the function body down to the statement."""

    def walk(
        parent: ast.AST | None, block: list, path: tuple
    ) -> Iterator[tuple[ast.stmt, tuple]]:
        for index, statement in enumerate(block):
            here = path + ((parent, block, index),)
            yield statement, here
            if isinstance(statement, _SCOPE_BARRIERS + (ast.ClassDef,)):
                continue
            for field_name in _BLOCK_FIELDS:
                sub = getattr(statement, field_name, None)
                if not sub:
                    continue
                if field_name == "handlers":
                    for handler in sub:
                        yield from walk(statement, handler.body, here)
                else:
                    yield from walk(statement, sub, here)

    yield from walk(func, list(getattr(func, "body", [])), ())


def _yields_in_statement(
    statement: ast.stmt,
) -> Iterator[ast.Yield | ast.YieldFrom]:
    """Yield expressions inside one statement, nested defs excluded."""
    if isinstance(statement, _SCOPE_BARRIERS + (ast.ClassDef,)):
        return
    stack = list(ast.iter_child_nodes(statement))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_BARRIERS + (ast.ClassDef,)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _statement_own_yields(
    statement: ast.stmt,
) -> Iterator[ast.Yield | ast.YieldFrom]:
    """Yields belonging to the *header* of a compound statement or to a
    simple statement — i.e. not inside its sub-blocks."""
    nested: set[int] = set()
    for field_name in _BLOCK_FIELDS:
        sub = getattr(statement, field_name, None)
        if not sub:
            continue
        blocks = (
            [handler.body for handler in sub]
            if field_name == "handlers"
            else [sub]
        )
        for block in blocks:
            for child in block:
                for node in ast.walk(child):
                    nested.add(id(node))
    for node in _yields_in_statement(statement):
        if id(node) not in nested:
            yield node


#: Public aliases for the IR layer (:mod:`repro.lint.ir.cfg`), which
#: classifies yields per CFG node using the same machinery the flat
#: extraction uses.
statement_own_yields = _statement_own_yields


# -- public API -----------------------------------------------------------


def extract_automata(
    tree: ast.Module,
    schema: Any,
    *,
    module: ModuleType | None = None,
    namespace: dict[str, Any] | None = None,
    file: str = "<module>",
    module_name: str = "<module>",
) -> list[AutomatonView]:
    """Build :class:`AutomatonView` objects for every declared function.

    Raises :class:`~repro.errors.SpecificationError` when the schema
    names a function the module does not define — schema drift is a bug,
    not a lint finding.
    """
    if namespace is None:
        namespace = dict(vars(module)) if module is not None else {}
    views: list[AutomatonView] = []
    for dotted in schema.checked_functions:
        func = _lookup_def(tree, dotted)
        if func is None:
            raise SpecificationError(
                f"{module_name}: lint schema names {dotted!r}, which the "
                "module does not define"
            )
        generator = _automaton_generator(func, dotted)
        view = AutomatonView(
            name=dotted,
            kind=schema.kind_of(dotted),
            file=file,
            module_name=module_name,
            node=generator,
        )
        for statement, path in _statement_paths(generator):
            for node in _statement_own_yields(statement):
                op, register = (
                    (None, None)
                    if isinstance(node, ast.YieldFrom)
                    else _classify_yield(node, namespace)
                )
                view.yields.append(
                    YieldView(
                        node=node,
                        line=node.lineno,
                        is_from=isinstance(node, ast.YieldFrom),
                        op=op,
                        register=register,
                        statement_path=path,
                    )
                )
            if isinstance(statement, ast.While):
                view.while_loops.append(statement)
        views.append(view)
    return views
