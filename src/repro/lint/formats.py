"""Lint report serialization: text, JSON, and SARIF 2.1.0.

The text format is the human-facing default (unchanged from the
original linter).  JSON is the stable machine format, including the
published pass facts (static footprints).  SARIF is the interchange
format code-review UIs ingest; CI uploads it as an artifact.  SARIF
results carry the content-hashed finding id as a partial fingerprint,
so SARIF consumers track findings across line churn exactly like the
baseline does.
"""

from __future__ import annotations

import json
from typing import Any

from .findings import LintReport

__all__ = ["render_report", "render_json", "render_sarif"]

SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/"
    "sarif-schema-2.1.0.json"
)
FINGERPRINT_KEY = "reproLintId/v1"


def render_report(report: LintReport, fmt: str = "text") -> str:
    """Serialize ``report`` in the named format."""
    if fmt == "text":
        return report.render()
    if fmt == "json":
        return render_json(report)
    if fmt == "sarif":
        return render_sarif(report)
    raise ValueError(f"unknown lint output format {fmt!r}")


def render_json(report: LintReport) -> str:
    report.finalize()
    payload: dict[str, Any] = {
        "modules_checked": list(report.modules_checked),
        "rules_run": list(report.rules_run),
        "passes_run": list(report.passes_run),
        "ok": report.ok,
        "has_errors": report.has_errors,
        "findings": [f.as_dict() for f in report.findings],
        "suppressed": [f.as_dict() for f in report.suppressed],
        "facts": report.facts,
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _rule_metadata(report: LintReport) -> list[dict[str, Any]]:
    from .passes import all_passes

    titles: dict[str, str] = {}
    for cls in all_passes():
        for rule_id in cls.reported_rules():
            titles.setdefault(rule_id, cls.title)
    rules = []
    for rule_id in report.rules_run:
        entry: dict[str, Any] = {"id": rule_id}
        title = titles.get(rule_id)
        if title:
            entry["shortDescription"] = {"text": title}
        rules.append(entry)
    return rules


def render_sarif(report: LintReport) -> str:
    report.finalize()
    results = []
    for finding in report.findings + report.suppressed:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.file},
                        "region": {
                            "startLine": max(1, finding.line)
                        },
                    }
                }
            ],
            "partialFingerprints": {FINGERPRINT_KEY: finding.id},
        }
        if finding in report.suppressed:
            result["suppressions"] = [{"kind": "external"}]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rule_metadata(report),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
