"""Advice discipline for S-processes.

S-processes are the only automata allowed to consult the failure
detector (``CNoQuery`` enforces the other side).  These passes check
that when an S-process *does* take advice, it handles it honestly:

``QueryBeforeUse``
    A variable holding detector output (``advice = yield
    ops.QueryFD()``) must be assigned on **every** path before it is
    read.  A branch that skips the query and then uses the variable
    consumes stale — or unbound — advice.  Implemented as a forward
    must-analysis (intersection over predecessors) on the CFG.

``StaleAdvice`` (warning)
    A cycle that keeps acting on advice-derived data without
    re-querying inside the cycle treats one advice sample as
    permanent.  The paper's detectors are *unreliable*: their output
    can change at every query, and algorithms such as Figure 2's
    S-automaton re-query at the top of each round for exactly this
    reason.  Advice taint propagates through assignments
    (``uses ∩ tainted → defs tainted``) before the cycle check.
"""

from __future__ import annotations

from ...runtime import ops
from ..ir.cfg import CFG
from ..ir.dataflow import forward_must, nontrivial_sccs, reachable
from .base import LintPass, PassContext, PassResult
from .registry import register_pass

__all__ = ["QueryBeforeUse", "StaleAdvice"]


def _advice_vars(cfg: CFG) -> set[str]:
    return {
        name for node in cfg.stmt_nodes() for name in node.advice_defs
    }


def _tainted_vars(cfg: CFG) -> set[str]:
    """Variables (transitively) derived from detector output."""
    tainted = _advice_vars(cfg)
    changed = True
    while changed:
        changed = False
        for node in cfg.stmt_nodes():
            if not node.defs:
                continue
            # Names both defined and used in one statement are treated
            # as statement-local (comprehension targets shadow outer
            # names and are Store-before-Load within the statement).
            if (node.uses - node.defs) & tainted and not (
                node.defs <= tainted
            ):
                tainted |= node.defs
                changed = True
    return tainted


@register_pass
class QueryBeforeUse(LintPass):
    pass_id = "QueryBeforeUse"
    title = "detector output is queried on every path before use"

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        for unit, ir in ctx.automata():
            advice = _advice_vars(ir.cfg)
            if not advice:
                continue
            must = forward_must(ir.cfg, lambda node: node.defs)
            for node in ir.cfg.stmt_nodes():
                used = node.uses & advice
                # A node may both use and (re)define the variable
                # (``advice = f(advice)``); the incoming must-set is
                # what matters, not the node's own defs.
                missing = used - must[node.index]
                for name in sorted(missing):
                    result.findings.append(
                        self.finding(
                            file=unit.file,
                            line=node.line,
                            kind=ir.view.kind,
                            message=(
                                f"{ir.view.name}: advice variable "
                                f"{name!r} is read here but not "
                                "assigned from a detector query on "
                                "every incoming path"
                            ),
                        )
                    )
        return result


@register_pass
class StaleAdvice(LintPass):
    pass_id = "StaleAdvice"
    title = "cycles acting on advice re-query inside the cycle"
    default_severity = "warning"

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        for unit, ir in ctx.automata():
            if ir.footprint.queries == 0:
                continue
            tainted = _tainted_vars(ir.cfg)
            if not tainted:
                continue
            live = reachable(ir.cfg, [ir.cfg.entry])
            for component in nontrivial_sccs(ir.cfg):
                if not component & live:
                    continue
                nodes = [
                    ir.cfg.nodes[index] for index in sorted(component)
                ]
                if not any(node.yields for node in nodes):
                    # No steps are taken inside the cycle: it runs
                    # within one atomic step, so advice cannot go
                    # stale while it executes.
                    continue
                if not any(
                    (node.uses - node.defs) & tainted
                    for node in nodes
                ):
                    continue
                if any(
                    node.advice_defs
                    or any(
                        y.op is ops.QueryFD or y.dynamic or y.is_from
                        for y in node.yields
                    )
                    for node in nodes
                ):
                    continue
                line = min(node.line for node in nodes)
                result.findings.append(
                    self.finding(
                        file=unit.file,
                        line=line,
                        kind=ir.view.kind,
                        message=(
                            f"{ir.view.name}: cycle acts on "
                            "advice-derived data without re-querying "
                            "the detector inside the cycle; unreliable "
                            "advice may have changed"
                        ),
                    )
                )
        return result
