"""Pluggable pass registry.

Passes self-register with the :func:`register_pass` decorator;
registration order is the default execution order.  Third-party code
can register additional passes before calling
:func:`repro.lint.lint_algorithms` — see ``docs/static_analysis.md``
for the contract.
"""

from __future__ import annotations

from ...errors import SpecificationError
from .base import LintPass

__all__ = [
    "register_pass",
    "all_passes",
    "pass_by_id",
    "resolve_passes",
]

_REGISTRY: dict[str, type[LintPass]] = {}


def register_pass(cls: type[LintPass]) -> type[LintPass]:
    """Class decorator: add a pass to the registry (unique ids only)."""
    if not cls.pass_id:
        raise SpecificationError(
            f"{cls.__name__} declares no pass_id"
        )
    if cls.pass_id in _REGISTRY:
        raise SpecificationError(
            f"duplicate lint pass id {cls.pass_id!r}"
        )
    _REGISTRY[cls.pass_id] = cls
    return cls


def all_passes() -> tuple[type[LintPass], ...]:
    """Registered pass classes, in registration order."""
    return tuple(_REGISTRY.values())


def pass_by_id(pass_id: str) -> type[LintPass]:
    try:
        return _REGISTRY[pass_id]
    except KeyError:
        raise SpecificationError(
            f"unknown lint pass {pass_id!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def resolve_passes(
    *,
    enable: tuple[str, ...] | None = None,
    disable: tuple[str, ...] | None = None,
) -> list[LintPass]:
    """Instantiate the selected passes in registry order.

    ``enable`` restricts the run to exactly the named passes;
    ``disable`` drops passes from the (possibly restricted) set.
    Unknown ids raise :class:`~repro.errors.SpecificationError` —
    a misspelled pass name is an analyzer-usage bug, not a clean run.
    """
    for pass_id in (enable or ()) + (disable or ()):
        pass_by_id(pass_id)  # validate eagerly
    selected = []
    enabled = set(enable) if enable is not None else None
    disabled = set(disable or ())
    for cls in _REGISTRY.values():
        if enabled is not None and cls.pass_id not in enabled:
            continue
        if cls.pass_id in disabled:
            continue
        selected.append(cls())
    return selected
