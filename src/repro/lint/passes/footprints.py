"""Footprint publication and the differential POR soundness audit.

``StaticFootprints`` publishes every automaton's inferred register
footprint as a machine-readable fact (surfaced in ``--format json``),
so downstream tooling — and the audit below — can consume it without
re-deriving it.

``FootprintAudit`` is the reason the IR exists: the sleep-set
partial-order reduction in :mod:`repro.checker` prunes interleavings
by *trusting* :func:`repro.checker.independence.op_footprint` to name
every register a step can touch.  If that declaration under-reports —
an op reads or writes something its footprint omits — the explorer
will wrongly commute steps and can certify a buggy algorithm correct.
The audit differentially checks the declaration against real traced
runs (:mod:`repro.lint.battery`), in two directions:

1. **Shadow replay** (checks ``op_footprint``): re-execute every
   trace through a shadow register file applying *only* the declared
   write effects and predicting results from *only* the declared read
   sets.  Any divergence between a predicted and a recorded result
   means an op's behavior exceeds its footprint — a POR soundness bug,
   reported as an error finding.
2. **Coverage** (checks the static inference): for every automaton
   whose static footprint is *closed*, each dynamic access in the
   trace must be covered by the static sets.  The mandated first-step
   input write of a C-process (``inp/<i>``, written by the executor,
   not the automaton body) is exempt.  Open footprints (dynamic
   register names, ``yield from`` delegation) skip coverage rather
   than guess.
"""

from __future__ import annotations

from typing import Any

from ...checker import independence
from ...core.system import input_register
from ...runtime import ops
from .base import LintPass, ModuleUnit, PassContext, PassResult
from .registry import register_pass

__all__ = ["StaticFootprints", "FootprintAudit"]

STATIC_FOOTPRINTS_FACT = "repro.lint.static-footprints"


@register_pass
class StaticFootprints(LintPass):
    pass_id = "StaticFootprints"
    title = "publish inferred per-automaton register footprints"
    produces_fact_ids = (STATIC_FOOTPRINTS_FACT,)

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        result.facts[STATIC_FOOTPRINTS_FACT] = {
            f"{unit.name}.{ir.view.name}": ir.footprint.as_fact()
            for unit, ir in ctx.automata()
        }
        return result


@register_pass
class FootprintAudit(LintPass):
    pass_id = "FootprintAudit"
    title = "op-log footprints match the declarations POR trusts"
    evidence_required = ("ast", "battery")

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        units = {unit.name: unit for unit in ctx.units}
        for run in ctx.battery or ():
            self._audit_run(run, units, result)
        return result

    def _audit_run(
        self,
        run: Any,
        units: dict[str, ModuleUnit],
        result: PassResult,
    ) -> None:
        trace = run.result.trace
        if trace is None:
            return
        file = f"<battery:{run.label}>"
        shadow: dict[str, Any] = {}
        seen_pids: set[str] = set()
        for event in trace.events:
            op = event.op
            pid = event.pid
            first = pid.name not in seen_pids
            seen_pids.add(pid.name)
            mandated = (
                first
                and pid.is_computation
                and isinstance(op, ops.Write)
                and op.register == input_register(pid.index)
            )
            self._shadow_step(file, event, shadow, result)
            if not mandated:
                self._coverage_step(file, event, run, units, result)
        return None

    # -- direction 1: shadow replay against op_footprint ---------------

    def _shadow_step(
        self,
        file: str,
        event: Any,
        shadow: dict[str, Any],
        result: PassResult,
    ) -> None:
        op = event.op
        # Late-bound so tests can seed a lying declaration and watch
        # the audit catch it.
        prints = independence.op_footprint(op)
        if prints is None:
            # Universal steps (QueryFD, Decide) are dependent on
            # everything; POR never commutes them, so there is nothing
            # to audit.  Anything else with a None footprint would be
            # merely conservative, and ops.footprint has no such case.
            return
        reads, read_prefixes, writes = prints
        mismatch: str | None = None
        if isinstance(op, ops.Write):
            if op.register not in writes:
                mismatch = (
                    f"Write({op.register!r}) footprint omits its "
                    f"target register (declares writes={writes!r})"
                )
            else:
                shadow[op.register] = op.value
        elif isinstance(op, ops.Read):
            if op.register not in reads:
                mismatch = (
                    f"Read({op.register!r}) footprint omits its "
                    f"source register (declares reads={reads!r})"
                )
            elif event.result != shadow.get(op.register):
                mismatch = (
                    f"Read({op.register!r}) returned "
                    f"{event.result!r} but the footprint-declared "
                    f"effects predict {shadow.get(op.register)!r}"
                )
        elif isinstance(op, ops.Snapshot):
            if op.prefix not in read_prefixes:
                mismatch = (
                    f"Snapshot({op.prefix!r}) footprint omits its "
                    "prefix (declares read_prefixes="
                    f"{read_prefixes!r})"
                )
            else:
                expected = {
                    name: value
                    for name, value in shadow.items()
                    if name.startswith(op.prefix)
                }
                if dict(event.result) != expected:
                    mismatch = (
                        f"Snapshot({op.prefix!r}) returned "
                        f"{event.result!r} but the footprint-declared "
                        f"effects predict {expected!r}"
                    )
        elif isinstance(op, ops.CompareAndSwap):
            held = shadow.get(op.register)
            if op.register not in reads or op.register not in writes:
                mismatch = (
                    f"CompareAndSwap({op.register!r}) footprint must "
                    "declare the register both read and written "
                    f"(declares reads={reads!r}, writes={writes!r})"
                )
            elif event.result != held:
                mismatch = (
                    f"CompareAndSwap({op.register!r}) returned "
                    f"{event.result!r} but the footprint-declared "
                    f"effects predict {held!r}"
                )
            elif held == op.expected:
                shadow[op.register] = op.new
        if mismatch is not None:
            result.findings.append(
                self.finding(
                    file=file,
                    line=event.time,
                    kind=event.pid.kind.value,
                    message=(
                        f"POR soundness: t={event.time} "
                        f"{event.pid.name}: {mismatch}; the "
                        "independence relation would commute steps "
                        "it must not"
                    ),
                )
            )
        return None

    # -- direction 2: dynamic coverage of closed static footprints -----

    def _coverage_step(
        self,
        file: str,
        event: Any,
        run: Any,
        units: dict[str, ModuleUnit],
        result: PassResult,
    ) -> None:
        located = run.automaton_of.get(event.pid.name)
        if located is None:
            return  # null automaton or out-of-scope pid
        module_name, automaton = located
        unit = units.get(module_name)
        ir = unit.irs.get(automaton) if unit is not None else None
        if ir is None:
            result.findings.append(
                self.finding(
                    file=file,
                    line=event.time,
                    kind=event.pid.kind.value,
                    message=(
                        f"battery maps {event.pid.name} to unknown "
                        f"automaton {module_name}.{automaton}"
                    ),
                )
            )
            return
        footprint = ir.footprint
        if not footprint.closed:
            return
        op = event.op
        uncovered: str | None = None
        if isinstance(op, ops.Write):
            if not footprint.covers_write(op.register):
                uncovered = f"writes {op.register!r}"
        elif isinstance(op, ops.Read):
            if not footprint.covers_read(op.register):
                uncovered = f"reads {op.register!r}"
        elif isinstance(op, ops.Snapshot):
            if not footprint.covers_snapshot(op.prefix):
                uncovered = f"snapshots {op.prefix!r}"
        elif isinstance(op, ops.CompareAndSwap):
            if not (
                footprint.covers_read(op.register)
                and footprint.covers_write(op.register)
            ):
                uncovered = f"compare-and-swaps {op.register!r}"
        elif isinstance(op, ops.QueryFD):
            if not footprint.queries:
                uncovered = "queries the failure detector"
        elif isinstance(op, ops.Decide):
            if not footprint.decides:
                uncovered = "decides"
        if uncovered is not None:
            result.findings.append(
                self.finding(
                    file=file,
                    line=event.time,
                    kind=event.pid.kind.value,
                    message=(
                        f"t={event.time} {event.pid.name} "
                        f"({module_name}.{automaton}) {uncovered}, "
                        "which its closed static footprint does not "
                        "cover — static inference or the automaton "
                        "declaration is wrong"
                    ),
                )
            )
        return None
