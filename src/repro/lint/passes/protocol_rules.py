"""The five original AST protocol rules, as registry passes.

Each adapter wraps one :class:`repro.lint.static_rules.Rule` so the
legacy rules participate in the pass registry (enable/disable, SARIF
metadata, report ordering) without changing their logic or rule ids.
"""

from __future__ import annotations

from typing import ClassVar

from ..static_rules import (
    BoundedLoops,
    CNoQuery,
    DecideOnce,
    NoCASInFaithful,
    RegisterNaming,
    Rule,
)
from .base import LintPass, PassContext, PassResult
from .registry import register_pass

__all__ = [
    "CNoQueryPass",
    "DecideOncePass",
    "NoCASInFaithfulPass",
    "BoundedLoopsPass",
    "RegisterNamingPass",
]


class _RuleAdapter(LintPass):
    """Run one legacy AST rule over every extracted automaton."""

    rule_class: ClassVar[type[Rule]]

    def run(self, ctx: PassContext) -> PassResult:
        rule = self.rule_class()
        result = PassResult()
        for unit in ctx.units:
            for view in unit.views:
                result.findings.extend(rule.check(view, unit.schema))
        return result


@register_pass
class CNoQueryPass(_RuleAdapter):
    pass_id = "CNoQuery"
    title = "C-processes never consult the failure detector"
    rule_class = CNoQuery


@register_pass
class DecideOncePass(_RuleAdapter):
    pass_id = "DecideOnce"
    title = "every C-automaton decides exactly once, in tail position"
    rule_class = DecideOnce


@register_pass
class NoCASInFaithfulPass(_RuleAdapter):
    pass_id = "NoCASInFaithful"
    title = "paper-faithful modules never yield CompareAndSwap"
    rule_class = NoCASInFaithful


@register_pass
class BoundedLoopsPass(_RuleAdapter):
    pass_id = "BoundedLoops"
    title = "C-process spin loops observe shared state"
    rule_class = BoundedLoops


@register_pass
class RegisterNamingPass(_RuleAdapter):
    pass_id = "RegisterNaming"
    title = "register names stay inside the declared families"
    rule_class = RegisterNaming
