"""Register ownership discipline: single-writer and write-once.

The paper's algorithms (and the Theorem 9 simulation built on them)
assume *single-writer* register families: ``fam/<i>`` is written only
by process ``i``.  A schema opts a family in via
``RegisterSchema.single_writer``; this pass then demands that every
statically-visible write into the family interpolates the writer's own
index — ``f"{PREFIX}{me}"`` where ``me`` aliases ``ctx.pid.index`` — so
no process can scribble over another's register.

``RegisterSchema.write_once`` additionally demands that each process
writes a matching register at most once per run: structurally, no
write node may sit in a CFG cycle (it could re-execute), and no write
node may reach another write to the same family (a sequential double
write).  The ``s_helper`` module's ``V`` register is the canonical
client: helping is sound there *because* each S-process publishes at
most one value.
"""

from __future__ import annotations

import ast
from typing import Any

from ...runtime import ops
from ..ir.cfg import CFG, CFGNode, YieldStep
from ..ir.dataflow import nontrivial_sccs, reachable
from ..protocol import resolve_expression
from ..schema import ModuleSchema
from .base import AutomatonIR, LintPass, PassContext, PassResult
from .registry import register_pass

__all__ = ["SingleWriter", "WriteOnce"]

_WRITE_OPS = (ops.Write, ops.CompareAndSwap)


def _own_index_aliases(cfg: CFG) -> set[str]:
    """Local names bound to ``<anything>.pid.index`` in the automaton —
    the conventional ``me = ctx.pid.index``."""
    aliases: set[str] = set()
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if not isinstance(stmt, ast.Assign):
            continue
        if not _is_pid_index(stmt.value):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _is_pid_index(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == "index"
        and isinstance(expr.value, ast.Attribute)
        and expr.value.attr == "pid"
    )


def _is_own_indexed(
    operand: ast.expr,
    aliases: set[str],
    namespace: dict[str, Any],
) -> bool:
    """Does the register operand's first *dynamic* component interpolate
    the process's own index?  Leading pieces that resolve to constant
    strings (the family prefix, e.g. ``f"{PREFIX}{me}"``) are skipped —
    they are part of the register text, not the index."""
    if not isinstance(operand, ast.JoinedStr):
        return False
    for piece in operand.values:
        if isinstance(piece, ast.Constant):
            continue
        if isinstance(piece, ast.FormattedValue):
            value = piece.value
            if isinstance(
                resolve_expression(value, namespace), str
            ):
                continue  # statically-resolved prefix piece
            if isinstance(value, ast.Name) and value.id in aliases:
                return True
            return _is_pid_index(value)
    return False


def _family_writes(
    ir: AutomatonIR, families: tuple[str, ...]
) -> list[tuple[CFGNode, YieldStep, str]]:
    """(node, yield, matched family) for every statically-resolved
    write into one of ``families``."""
    matches = []
    for node in ir.cfg.stmt_nodes():
        for y in node.yields:
            if y.is_from or y.op not in _WRITE_OPS:
                continue
            if y.register is None:
                continue
            text = y.register.text
            for family in families:
                if text.startswith(family) or (
                    not y.register.exact and family.startswith(text)
                ):
                    matches.append((node, y, family))
                    break
    return matches


@register_pass
class SingleWriter(LintPass):
    pass_id = "SingleWriter"
    title = "declared single-writer families are written own-index only"

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        for unit, ir in ctx.automata():
            families = unit.schema.registers.single_writer
            if not families:
                continue
            writes = _family_writes(ir, families)
            if not writes:
                continue
            aliases = _own_index_aliases(ir.cfg)
            namespace = dict(vars(unit.module)) if unit.module else {}
            for node, y, family in writes:
                if y.operand is not None and _is_own_indexed(
                    y.operand, aliases, namespace
                ):
                    continue
                shown = y.register.text if y.register else "?"
                result.findings.append(
                    self.finding(
                        file=unit.file,
                        line=y.line,
                        kind=ir.view.kind,
                        message=(
                            f"{ir.view.name}: write to {shown!r} in "
                            f"single-writer family {family!r} does not "
                            "interpolate the process's own index "
                            "(`ctx.pid.index`); another process's "
                            "register could be overwritten"
                        ),
                    )
                )
        return result


@register_pass
class WriteOnce(LintPass):
    pass_id = "WriteOnce"
    title = "declared write-once registers are written at most once"

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        for unit, ir in ctx.automata():
            families = unit.schema.registers.write_once
            if not families:
                continue
            writes = _family_writes(ir, families)
            if not writes:
                continue
            self._check(unit.file, unit.schema, ir, writes, result)
        return result

    def _check(
        self,
        file: str,
        schema: ModuleSchema,
        ir: AutomatonIR,
        writes: list[tuple[CFGNode, YieldStep, str]],
        result: PassResult,
    ) -> None:
        cfg = ir.cfg
        looped = frozenset().union(*nontrivial_sccs(cfg) or [frozenset()])
        for node, y, family in writes:
            if node.index in looped:
                result.findings.append(
                    self.finding(
                        file=file,
                        line=y.line,
                        kind=ir.view.kind,
                        message=(
                            f"{ir.view.name}: write to write-once "
                            f"family {family!r} sits in a cycle and "
                            "may execute more than once"
                        ),
                    )
                )
        # Sequential double writes: one write node reaches another
        # write to the same family.
        by_family: dict[str, list[tuple[CFGNode, YieldStep]]] = {}
        for node, y, family in writes:
            by_family.setdefault(family, []).append((node, y))
        for family, group in by_family.items():
            for node, y in group:
                downstream = reachable(cfg, node.succs)
                for other, other_y in group:
                    if other is node:
                        continue
                    if other.index in downstream:
                        result.findings.append(
                            self.finding(
                                file=file,
                                line=other_y.line,
                                kind=ir.view.kind,
                                message=(
                                    f"{ir.view.name}: second write to "
                                    f"write-once family {family!r} on "
                                    "the same path (first write at "
                                    f"line {y.line})"
                                ),
                            )
                        )
        return None
