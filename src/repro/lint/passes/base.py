"""Declarative lint passes: the analysis units they see and the
contract they implement.

A pass is a small class in the style of a fact-oracle detector: it
declares an id, the evidence kinds it needs, and the fact ids it
produces, then implements ``run(context) -> PassResult``.  The runner
builds one :class:`PassContext` (parsed modules, per-automaton IR, and
— under ``--strict`` — the traced battery runs), resolves the enabled
passes from the registry, and executes them in order.  Passes never
import each other; anything one pass wants to hand to another travels
as a *fact* keyed by a declared fact id.

Evidence kinds:

``"ast"``
    The parsed modules with their extracted automata and IR.  Always
    available.
``"battery"``
    Traced reference runs of the bundled algorithms inside their
    declared concurrency envelopes (:mod:`repro.lint.battery`).  Only
    available under ``--strict`` — passes requiring it are skipped (not
    failed) otherwise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from types import ModuleType
from typing import TYPE_CHECKING, Any, ClassVar

from ..findings import Finding
from ..ir.cfg import CFG
from ..ir.footprint import StaticFootprint
from ..protocol import AutomatonView
from ..schema import ModuleSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..battery import BatteryRun

__all__ = [
    "AutomatonIR",
    "ModuleUnit",
    "PassContext",
    "PassResult",
    "LintPass",
]


@dataclass
class AutomatonIR:
    """IR bundle for one declared automaton."""

    view: AutomatonView
    cfg: CFG
    footprint: StaticFootprint


@dataclass
class ModuleUnit:
    """One algorithm module with everything the passes inspect."""

    name: str
    module: ModuleType
    schema: ModuleSchema
    file: str
    tree: ast.Module
    views: list[AutomatonView]
    irs: dict[str, AutomatonIR]  #: keyed by the view's dotted name


@dataclass
class PassContext:
    """Evidence shared by every pass in one lint invocation."""

    units: list[ModuleUnit]
    strict: bool = False
    battery: tuple["BatteryRun", ...] | None = None
    #: facts produced by earlier passes, keyed by declared fact id
    facts: dict[str, Any] = field(default_factory=dict)

    def automata(self) -> list[tuple[ModuleUnit, AutomatonIR]]:
        return [
            (unit, unit.irs[view.name])
            for unit in self.units
            for view in unit.views
        ]


@dataclass
class PassResult:
    """Findings and facts one pass produced."""

    findings: list[Finding] = field(default_factory=list)
    facts: dict[str, Any] = field(default_factory=dict)


class LintPass:
    """Base class for declarative lint passes.

    Subclasses set the class attributes and implement :meth:`run`.
    ``pass_id`` doubles as the rule id of the findings the pass emits,
    unless the pass reports under several rule ids — then it lists them
    in ``rule_ids`` (used for reporting and SARIF rule metadata).
    """

    pass_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    evidence_required: ClassVar[tuple[str, ...]] = ("ast",)
    produces_fact_ids: ClassVar[tuple[str, ...]] = ()
    default_severity: ClassVar[str] = "error"

    #: rule ids this pass may emit findings under (defaults to pass_id)
    rule_ids: ClassVar[tuple[str, ...]] = ()

    @classmethod
    def reported_rules(cls) -> tuple[str, ...]:
        return cls.rule_ids or (cls.pass_id,)

    def run(
        self, ctx: PassContext
    ) -> PassResult:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(
        self,
        *,
        file: str,
        line: int,
        kind: str,
        message: str,
        rule: str | None = None,
        severity: str | None = None,
    ) -> Finding:
        return Finding(
            rule=rule or self.pass_id,
            file=file,
            line=line,
            process_kind=kind,
            message=message,
            severity=severity or self.default_severity,
        )
