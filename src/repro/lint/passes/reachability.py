"""Reachability-of-decide: the wait-freedom obligation, on the CFG.

The paper's C-processes must decide in finitely many of their own steps
regardless of scheduling.  ``DecideOnce`` checks the *count* (exactly
one decide, in tail position); this pass checks the *paths*:

1. **No trap regions** — from every reachable yielding node, a
   ``Decide`` (or a dynamic yield that may forward one, or termination)
   must be reachable.  A loop with no decide and no exit is a region
   the process can enter and never fulfil its obligation in.
2. **Every terminating path decides** — a path that falls off the end
   of the generator without passing a ``Decide`` halts the process
   undecided (``raise`` is exempt: defensive unreachable-path guards).
3. **No blind cycles** — a cycle that yields but never observes shared
   state (read/snapshot/CAS), never delegates, and never yields
   dynamically cannot terminate in response to other processes'
   progress.  This generalizes ``BoundedLoops`` to arbitrary CFG
   cycles, with loop-variant heuristics: cycles through a ``for``
   header (bounded iterator) or a ``while`` header with a non-constant
   test (a local loop variant) get the benefit of the doubt.

Automata declared ``non_deciding`` are exempt from 1 and 2 (their
decision surfaces elsewhere by design) but not from 3.
"""

from __future__ import annotations

from ...runtime import ops
from ..ir.cfg import CFG, CFGNode
from ..ir.dataflow import nontrivial_sccs, reachable, reaches_any
from .base import AutomatonIR, LintPass, PassContext, PassResult
from .registry import register_pass

__all__ = ["ReachDecide"]

_OBSERVING = (ops.Read, ops.Snapshot, ops.CompareAndSwap, ops.QueryFD)


def _may_decide(node: CFGNode) -> bool:
    """Can executing this node discharge the decide obligation?"""
    if node.raises:
        return True  # defensive halt on an impossible path
    return any(
        y.op is ops.Decide or y.dynamic for y in node.yields
    )


def _all_paths_decide(cfg: CFG, live: set[int]) -> bool:
    """Greatest-fixpoint AND-over-successors: does every path from the
    entry that reaches the exit pass a deciding node first?  Paths that
    loop forever are vacuously fine here (the trap check owns them)."""
    ok = {index: True for index in live}
    ok[cfg.exit] = False
    changed = True
    while changed:
        changed = False
        for index in live:
            if index == cfg.exit:
                continue
            node = cfg.nodes[index]
            if _may_decide(node):
                continue
            value = all(
                ok.get(succ, True) for succ in node.succs
            ) if node.succs else True
            if value != ok[index]:
                ok[index] = value
                changed = True
    return ok.get(cfg.entry, True)


@register_pass
class ReachDecide(LintPass):
    pass_id = "ReachDecide"
    title = "every C-process path reaches a decide (or halts)"

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        for unit, ir in ctx.automata():
            if ir.view.kind != "C":
                continue
            non_deciding = ir.view.name in unit.schema.non_deciding
            if not non_deciding:
                self._check_traps(unit.file, ir, result)
                self._check_terminating_paths(unit.file, ir, result)
            self._check_blind_cycles(unit.file, ir, result)
        return result

    # -- 1: trap regions ----------------------------------------------

    def _check_traps(
        self, file: str, ir: AutomatonIR, result: PassResult
    ) -> None:
        cfg = ir.cfg
        live = reachable(cfg, [cfg.entry])
        targets = [cfg.exit] + [
            node.index
            for node in cfg.stmt_nodes()
            if _may_decide(node)
        ]
        rescued = reaches_any(cfg, targets)
        trapped = sorted(
            index
            for index in live
            if index not in rescued and cfg.nodes[index].yields
        )
        if trapped:
            node = cfg.nodes[trapped[0]]
            result.findings.append(
                self.finding(
                    file=file,
                    line=node.line,
                    kind="C",
                    message=(
                        f"{ir.view.name}: reachable yielding code from "
                        "which no Decide or termination is reachable — "
                        "the process can enter this region and never "
                        "fulfil its decide obligation"
                    ),
                )
            )

    # -- 2: terminating paths -----------------------------------------

    def _check_terminating_paths(
        self, file: str, ir: AutomatonIR, result: PassResult
    ) -> None:
        cfg = ir.cfg
        live = reachable(cfg, [cfg.entry])
        if cfg.exit not in live:
            return  # nothing terminates; the trap check covers it
        if not _all_paths_decide(cfg, live):
            result.findings.append(
                self.finding(
                    file=file,
                    line=ir.view.line,
                    kind="C",
                    message=(
                        f"{ir.view.name}: some execution path returns "
                        "without yielding Decide — the process would "
                        "halt undecided"
                    ),
                )
            )

    # -- 3: blind cycles ----------------------------------------------

    def _check_blind_cycles(
        self, file: str, ir: AutomatonIR, result: PassResult
    ) -> None:
        cfg = ir.cfg
        live = reachable(cfg, [cfg.entry])
        for component in nontrivial_sccs(cfg):
            if not component & live:
                continue
            nodes = [cfg.nodes[index] for index in sorted(component)]
            steps = [y for node in nodes for y in node.yields]
            if not steps:
                continue  # pure local computation
            if any(
                y.is_from or y.dynamic or y.op in _OBSERVING
                for y in steps
            ):
                continue
            if any(
                node.loop_kind == "for"
                or (
                    node.loop_kind == "while"
                    and not node.test_const_true
                )
                for node in nodes
            ):
                continue  # loop-variant heuristic: bounded iteration
            line = min(node.line for node in nodes)
            result.findings.append(
                self.finding(
                    file=file,
                    line=line,
                    kind="C",
                    message=(
                        f"{ir.view.name}: cycle yields steps but never "
                        "observes shared state or advice; it cannot "
                        "terminate in response to other processes' "
                        "progress (wait-freedom violation)"
                    ),
                )
            )
        return None
