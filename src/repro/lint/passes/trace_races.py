"""The historical strict-mode trace race analysis, as a battery pass.

Runs :func:`repro.lint.trace_rules.analyze_trace` over every battery
entry marked ``race_check`` — the reference runs executed inside their
declared concurrency envelopes, which must therefore be free of
``LostUpdate`` and ``SnapshotRace`` hazards.  (The same algorithms
*outside* their envelopes do race; the test suite pins that down.)
"""

from __future__ import annotations

from ..findings import Finding
from ..trace_rules import analyze_trace
from .base import LintPass, PassContext, PassResult
from .registry import register_pass

__all__ = ["TraceRaces"]


@register_pass
class TraceRaces(LintPass):
    pass_id = "TraceRaces"
    title = "reference runs are race-free inside their envelopes"
    evidence_required = ("ast", "battery")
    rule_ids = ("LostUpdate", "SnapshotRace")

    def run(self, ctx: PassContext) -> PassResult:
        result = PassResult()
        for run in ctx.battery or ():
            if not run.race_check or run.result.trace is None:
                continue
            for finding in analyze_trace(run.result.trace):
                result.findings.append(
                    Finding(
                        rule=finding.rule,
                        file=f"<trace:{run.label}>",
                        line=finding.line,
                        process_kind=finding.process_kind,
                        message=finding.message,
                    )
                )
        return result
