"""Declarative lint passes over the automaton IR.

Importing this package registers the built-in passes in their default
execution order: the five legacy AST protocol rules first (stable
report ordering for existing consumers), then the semantic CFG passes,
then the strict-mode battery passes.  Third parties add their own with
:func:`~repro.lint.passes.registry.register_pass`.
"""

from __future__ import annotations

from .base import (
    AutomatonIR,
    LintPass,
    ModuleUnit,
    PassContext,
    PassResult,
)
from .registry import (
    all_passes,
    pass_by_id,
    register_pass,
    resolve_passes,
)

# Import order is registration order is default execution order.
from . import protocol_rules  # noqa: E402,F401  (legacy AST rules)
from . import reachability  # noqa: E402,F401
from . import ownership  # noqa: E402,F401
from . import query_discipline  # noqa: E402,F401
from . import footprints  # noqa: E402,F401
from . import trace_races  # noqa: E402,F401

__all__ = [
    "AutomatonIR",
    "LintPass",
    "ModuleUnit",
    "PassContext",
    "PassResult",
    "all_passes",
    "pass_by_id",
    "register_pass",
    "resolve_passes",
]
