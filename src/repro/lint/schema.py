"""Lint schemas: what each algorithm module declares about itself.

The static linter cannot guess which generator functions are C-process
automata, which are S-process automata, and which register families a
module owns — so every module in :mod:`repro.algorithms` declares a
:class:`ModuleSchema` (the registry lives in
``repro/algorithms/__init__.py`` as ``LINT_SCHEMAS``).  The linter then
*verifies* the declared code against the EFD step model; a function the
schema does not name is not an automaton and is skipped.

Names may be dotted to reach nested definitions: ``"Outer.inner"``
addresses the ``inner`` function (or method) defined inside ``Outer``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RegisterSchema:
    """Register names a module is allowed to touch.

    Attributes:
        prefixes: register-family prefixes (e.g. ``"ksetc/ann/"``); a
            name matches if it starts with a declared prefix, and a
            snapshot prefix matches if it refines a declared prefix.
        exact: fully-spelled single-register names (e.g. ``"shelper/V"``).
        single_writer: families (prefixes or exact names) under the
            paper's single-writer discipline: every write must target
            the writer's *own* register, ``fam/<own index>``.  Checked
            by the ``SingleWriter`` pass.
        write_once: families each process may write at most once per
            run (no write inside a cycle, no two writes on one path).
            Checked by the ``WriteOnce`` pass.
    """

    prefixes: tuple[str, ...] = ()
    exact: tuple[str, ...] = ()
    single_writer: tuple[str, ...] = ()
    write_once: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.prefixes and not self.exact

    def allows(self, name: str, *, is_prefix: bool = False) -> bool:
        """Does ``name`` (a register name, or a family prefix when
        ``is_prefix``) fall inside the declared families?"""
        if name in self.exact:
            return True
        for prefix in self.prefixes:
            if name.startswith(prefix):
                return True
            if is_prefix and prefix.startswith(name):
                # Snapshotting a coarser prefix that covers a declared
                # family is reading registers the schema owns.
                return True
        return False


@dataclass(frozen=True)
class ModuleSchema:
    """Lint declaration for one algorithm module.

    Attributes:
        c_automata: generator functions (or factories of generators)
            implementing C-process automata.
        s_automata: same, for S-process automata.
        subroutines: kind-neutral generator subroutines (composed with
            ``yield from``); checked under C-process rules because a
            C-process may call them.
        non_deciding: C-automata exempt from the must-decide half of
            ``DecideOnce`` — reduction/simulation drivers whose decision
            surfaces elsewhere (they still must not yield after a
            ``Decide``).
        registers: the register families the module owns.
        faithful: paper-faithful modules must never yield
            ``CompareAndSwap``; set ``False`` only for documented
            substitutions (see DESIGN.md).
        cas_allowlist: functions allowed to yield ``CompareAndSwap``
            despite ``faithful`` — each must be justified in
            ``docs/static_analysis.md``.
        notes: one-line rationale shown in ``lint --verbose`` style
            output and documentation.
    """

    c_automata: tuple[str, ...] = ()
    s_automata: tuple[str, ...] = ()
    subroutines: tuple[str, ...] = ()
    non_deciding: tuple[str, ...] = ()
    registers: RegisterSchema = field(default_factory=RegisterSchema)
    faithful: bool = True
    cas_allowlist: tuple[str, ...] = ()
    notes: str = ""

    @property
    def checked_functions(self) -> tuple[str, ...]:
        return self.c_automata + self.s_automata + self.subroutines

    def kind_of(self, name: str) -> str:
        if name in self.c_automata:
            return "C"
        if name in self.s_automata:
            return "S"
        return "-"
