"""Lint orchestration: run every rule over every algorithm module.

The static pass walks :data:`repro.algorithms.__all__`, pairs each
module with its declared :class:`~repro.lint.schema.ModuleSchema` from
:data:`repro.algorithms.LINT_SCHEMAS`, and applies the five protocol
rules.  A module without a schema (or a schema without a module) is
itself a finding — the registry must stay complete for the lint gate to
mean anything.

The strict pass additionally executes a small battery of traced runs
*inside their declared concurrency envelopes* and requires them to be
race-free under :func:`~repro.lint.trace_rules.analyze_trace`.  (Outside
the envelope the same algorithms do exhibit hazards; the test suite
demonstrates the detector firing on exactly those runs.)
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path

from .findings import Finding, LintReport
from .protocol import extract_automata
from .static_rules import ALL_RULES
from .trace_rules import analyze_trace

#: Rule ids of the static pass, in reporting order.
STATIC_RULE_IDS = tuple(rule.rule_id for rule in ALL_RULES)
#: Rule ids of the dynamic (strict) pass.
DYNAMIC_RULE_IDS = ("LostUpdate", "SnapshotRace")


def lint_module(module, schema) -> list[Finding]:
    """Apply the five static rules to one imported algorithm module."""
    file = getattr(module, "__file__", None) or "<module>"
    source = Path(file).read_text()
    tree = ast.parse(source)
    views = extract_automata(
        tree,
        schema,
        module=module,
        file=file,
        module_name=module.__name__,
    )
    findings: list[Finding] = []
    for rule_class in ALL_RULES:
        rule = rule_class()
        for view in views:
            findings.extend(rule.check(view, schema))
    return findings


def lint_algorithms(*, strict: bool = False) -> LintReport:
    """Lint every module of :mod:`repro.algorithms`; optionally run the
    strict dynamic battery."""
    from .. import algorithms

    schemas = dict(algorithms.LINT_SCHEMAS)
    report = LintReport(
        modules_checked=tuple(algorithms.__all__),
        rules_run=STATIC_RULE_IDS
        + (DYNAMIC_RULE_IDS if strict else ()),
    )
    for name in algorithms.__all__:
        schema = schemas.pop(name, None)
        module = importlib.import_module(f"repro.algorithms.{name}")
        if schema is None:
            report.findings.append(
                Finding(
                    rule="Schema",
                    file=getattr(module, "__file__", "<module>"),
                    line=1,
                    process_kind="-",
                    message=f"module {name!r} has no entry in "
                    "repro.algorithms.LINT_SCHEMAS",
                )
            )
            continue
        report.extend(lint_module(module, schema))
    for name in schemas:
        report.findings.append(
            Finding(
                rule="Schema",
                file="<registry>",
                line=1,
                process_kind="-",
                message=f"LINT_SCHEMAS names unknown module {name!r}",
            )
        )
    if strict:
        for label, trace in _strict_battery():
            for finding in analyze_trace(trace):
                report.findings.append(
                    Finding(
                        rule=finding.rule,
                        file=f"<trace:{label}>",
                        line=finding.line,
                        process_kind=finding.process_kind,
                        message=finding.message,
                    )
                )
    return report


def _strict_battery():
    """Traced reference runs that must be hazard-free: each algorithm is
    executed inside the concurrency envelope it is specified for."""
    from ..algorithms.kset_concurrent import kset_concurrent_factories
    from ..algorithms.one_concurrent import one_concurrent_factories
    from ..algorithms.s_helper import helper_c_factory, helper_s_factory
    from ..core.system import System
    from ..runtime import SeededRandomScheduler, execute, k_concurrent
    from ..tasks import ConsensusTask

    task = ConsensusTask(3)
    system = System(
        inputs=(0, 1, 1), c_factories=one_concurrent_factories(task)
    )
    result = execute(
        system,
        k_concurrent(SeededRandomScheduler(7), 1),
        trace=True,
        max_steps=50_000,
    )
    yield "one_concurrent@1", result.trace

    system = System(
        inputs=(3, 4, 5),
        c_factories=kset_concurrent_factories(3, 2),
    )
    result = execute(
        system,
        k_concurrent(SeededRandomScheduler(11), 1),
        trace=True,
        max_steps=50_000,
    )
    yield "kset_concurrent@1", result.trace

    system = System(
        inputs=(6, 7, 8),
        c_factories=[helper_c_factory] * 3,
        s_factories=[helper_s_factory] * 3,
    )
    result = execute(
        system,
        SeededRandomScheduler(13),
        trace=True,
        max_steps=50_000,
    )
    yield "s_helper", result.trace
