"""Lint orchestration: compile IR, resolve passes, run them in order.

The runner walks :data:`repro.algorithms.__all__`, pairs each module
with its declared :class:`~repro.lint.schema.ModuleSchema` from
:data:`repro.algorithms.LINT_SCHEMAS`, compiles every declared
automaton into CFG IR with a static register footprint
(:mod:`repro.lint.ir`), and hands the resulting
:class:`~repro.lint.passes.PassContext` to the registered passes in
order.  A module without a schema (or a schema without a module) is
itself a finding — the registry must stay complete for the lint gate
to mean anything.

Evidence gating: passes declaring ``"battery"`` evidence only run
under ``--strict``; the traced battery
(:func:`repro.lint.battery.battery_runs`) is executed once, lazily,
the first time a pass needs it.  Passes requiring unavailable
evidence are *skipped*, not failed, and do not appear in
``rules_run``/``passes_run``.
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path
from types import ModuleType

from .findings import Finding, LintReport
from .ir import build_cfg, infer_footprint
from .passes import (
    AutomatonIR,
    ModuleUnit,
    PassContext,
    resolve_passes,
)
from .protocol import extract_automata
from .schema import ModuleSchema
from .static_rules import ALL_RULES

#: Rule ids of the original five AST protocol rules, in order.
STATIC_RULE_IDS = tuple(rule.rule_id for rule in ALL_RULES)
#: Rule ids of the semantic CFG passes (always-on, AST evidence).
SEMANTIC_RULE_IDS = (
    "ReachDecide",
    "SingleWriter",
    "WriteOnce",
    "QueryBeforeUse",
    "StaleAdvice",
    "StaticFootprints",
)
#: Rule ids that require the strict battery.
DYNAMIC_RULE_IDS = ("FootprintAudit", "LostUpdate", "SnapshotRace")


def lint_module(module: ModuleType, schema: ModuleSchema) -> list[Finding]:
    """Apply the five legacy AST rules to one imported algorithm module.

    Kept as the lightweight single-module entry point; the full pass
    pipeline (IR, semantic passes, battery) runs via
    :func:`lint_algorithms`.
    """
    unit = _build_unit(module.__name__.rsplit(".", 1)[-1], module, schema)
    findings: list[Finding] = []
    for rule_class in ALL_RULES:
        rule = rule_class()
        for view in unit.views:
            findings.extend(rule.check(view, schema))
    return findings


def _build_unit(
    name: str, module: ModuleType, schema: ModuleSchema
) -> ModuleUnit:
    file = getattr(module, "__file__", None) or "<module>"
    source = Path(file).read_text()
    tree = ast.parse(source)
    namespace = dict(vars(module))
    views = extract_automata(
        tree,
        schema,
        namespace=namespace,
        file=file,
        module_name=module.__name__,
    )
    irs = {
        view.name: AutomatonIR(
            view=view,
            cfg=build_cfg(view.node, namespace, name=view.name),
            footprint=infer_footprint(view),
        )
        for view in views
    }
    return ModuleUnit(
        name=name,
        module=module,
        schema=schema,
        file=file,
        tree=tree,
        views=views,
        irs=irs,
    )


def build_units() -> tuple[list[ModuleUnit], list[Finding]]:
    """Compile every algorithm module; schema drift becomes findings."""
    from .. import algorithms

    schemas = dict(algorithms.LINT_SCHEMAS)
    units: list[ModuleUnit] = []
    findings: list[Finding] = []
    for name in algorithms.__all__:
        schema = schemas.pop(name, None)
        module = importlib.import_module(f"repro.algorithms.{name}")
        if schema is None:
            findings.append(
                Finding(
                    rule="Schema",
                    file=getattr(module, "__file__", "<module>"),
                    line=1,
                    process_kind="-",
                    message=f"module {name!r} has no entry in "
                    "repro.algorithms.LINT_SCHEMAS",
                )
            )
            continue
        units.append(_build_unit(name, module, schema))
    for name in schemas:
        findings.append(
            Finding(
                rule="Schema",
                file="<registry>",
                line=1,
                process_kind="-",
                message=f"LINT_SCHEMAS names unknown module {name!r}",
            )
        )
    return units, findings


def lint_algorithms(
    *,
    strict: bool = False,
    enable: tuple[str, ...] | None = None,
    disable: tuple[str, ...] | None = None,
    baseline: frozenset[str] | None = None,
) -> LintReport:
    """Lint every module of :mod:`repro.algorithms`.

    Args:
        strict: also execute the traced battery, unlocking the
            battery-evidence passes (footprint audit, trace races).
        enable: restrict the run to exactly these pass ids.
        disable: drop these pass ids from the (restricted) set.
        baseline: finding ids to suppress
            (:func:`repro.lint.baseline.load_baseline`).
    """
    from .. import algorithms

    units, schema_findings = build_units()
    passes = resolve_passes(enable=enable, disable=disable)
    ctx = PassContext(units=units, strict=strict)
    report = LintReport(
        modules_checked=tuple(algorithms.__all__),
        findings=schema_findings,
    )
    rules_run: list[str] = []
    passes_run: list[str] = []
    for lint_pass in passes:
        if "battery" in lint_pass.evidence_required:
            if not strict:
                continue  # skipped: evidence unavailable
            if ctx.battery is None:
                from .battery import battery_runs

                ctx.battery = battery_runs()
        result = lint_pass.run(ctx)
        passes_run.append(lint_pass.pass_id)
        rules_run.extend(lint_pass.reported_rules())
        report.findings.extend(result.findings)
        ctx.facts.update(result.facts)
        report.facts.update(result.facts)
    report.rules_run = tuple(rules_run)
    report.passes_run = tuple(passes_run)
    if baseline:
        from .baseline import apply_baseline

        apply_baseline(report, baseline)
    return report.finalize()
