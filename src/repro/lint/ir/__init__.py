"""Per-automaton dataflow IR for the semantic lint passes.

The IR compiles each schema-declared automaton generator into a
statement-level control-flow graph (:mod:`.cfg`) whose nodes carry the
classified yields and register def/use facts of their statement, runs
worklist fixpoint analyses over it (:mod:`.dataflow`), and aggregates a
static register footprint per automaton (:mod:`.footprint`).  The
semantic passes in :mod:`repro.lint.passes` are thin clients of this
layer.
"""

from .cfg import CFG, CFGNode, YieldStep, build_cfg
from .dataflow import (
    forward_must,
    nontrivial_sccs,
    reachable,
    reaches_any,
)
from .footprint import StaticFootprint, infer_footprint

__all__ = [
    "CFG",
    "CFGNode",
    "YieldStep",
    "build_cfg",
    "reachable",
    "reaches_any",
    "nontrivial_sccs",
    "forward_must",
    "StaticFootprint",
    "infer_footprint",
]
