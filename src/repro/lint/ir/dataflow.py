"""Worklist fixpoint analyses over the automaton CFG.

Three shapes cover every semantic pass:

* plain **reachability** (forward from the entry, or backward from a
  target set) for the decide-reachability obligations;
* **strongly connected components** (iterative Tarjan) for loop/cycle
  reasoning — a node can repeat if and only if it sits in a nontrivial
  SCC;
* a generic **forward must-analysis** (intersection over predecessors)
  for "queried/defined on every path" facts.

All analyses are intraprocedural: ``yield from`` delegation is a single
opaque step at this level, and the passes account for it explicitly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from .cfg import CFG, CFGNode

__all__ = [
    "reachable",
    "reaches_any",
    "nontrivial_sccs",
    "forward_must",
]


def reachable(
    cfg: CFG, starts: Iterable[int], *, forward: bool = True
) -> set[int]:
    """Node indices reachable from ``starts`` following successor edges
    (or predecessor edges when ``forward`` is ``False``)."""
    seen: set[int] = set()
    stack = [index for index in starts]
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        node = cfg.nodes[index]
        stack.extend(node.succs if forward else node.preds)
    return seen


def reaches_any(cfg: CFG, targets: Iterable[int]) -> set[int]:
    """Node indices from which at least one of ``targets`` is reachable
    (the targets themselves included)."""
    return reachable(cfg, targets, forward=False)


def nontrivial_sccs(cfg: CFG) -> list[frozenset[int]]:
    """Strongly connected components that can actually repeat: more
    than one node, or a single node with a self-edge."""
    index_of: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = 0
    result: list[frozenset[int]] = []

    for root in range(len(cfg.nodes)):
        if root in index_of:
            continue
        # Iterative Tarjan: (node, iterator position) frames.
        frames: list[tuple[int, int]] = [(root, 0)]
        while frames:
            node, pos = frames.pop()
            if pos == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succs = cfg.nodes[node].succs
            advanced = False
            for offset in range(pos, len(succs)):
                succ = succs[offset]
                if succ not in index_of:
                    frames.append((node, offset + 1))
                    frames.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1 or node in cfg.nodes[node].succs:
                    result.append(frozenset(component))
            if frames:
                parent = frames[-1][0]
                low[parent] = min(low[parent], low[node])
    return result


def forward_must(
    cfg: CFG, gen: Callable[[CFGNode], frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Facts guaranteed generated on *every* path from the entry to
    just before each node.

    ``gen(node)`` is the fact set a node generates (facts are never
    killed — sufficient for must-defined/must-queried).  Unreachable
    nodes keep the vacuous full set.
    """
    universe = frozenset().union(
        *(gen(node) for node in cfg.nodes)
    )
    before: dict[int, frozenset[str]] = {
        node.index: universe for node in cfg.nodes
    }
    before[cfg.entry] = frozenset()
    worklist: deque[int] = deque([cfg.entry])
    while worklist:
        index = worklist.popleft()
        node = cfg.nodes[index]
        out = before[index] | gen(node)
        for succ in node.succs:
            narrowed = before[succ] & out
            if narrowed != before[succ]:
                before[succ] = narrowed
                worklist.append(succ)
    return before
