"""Static register-footprint inference per automaton.

Aggregates the registers an automaton can statically be shown to read
and write, in the same ``(reads, read_prefixes, writes)`` vocabulary
the sleep-set POR's independence relation uses
(:func:`repro.runtime.ops.footprint` via
:mod:`repro.checker.independence`).  An automaton whose yields are all
resolved is *closed*: its dynamic op-log footprint must be covered by
the static sets, and the strict-mode audit pass
(:class:`repro.lint.passes.footprints.FootprintAudit`) checks exactly
that.  Any dynamic yield, unresolved register operand, or ``yield
from`` delegation makes the footprint *open* — the audit then skips the
coverage check for that automaton rather than guess.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...runtime import ops
from ..protocol import AutomatonView

__all__ = ["StaticFootprint", "infer_footprint"]


@dataclass(frozen=True)
class StaticFootprint:
    """Statically inferred register footprint of one automaton."""

    #: exact register names read (``Read``/``CompareAndSwap``)
    reads: frozenset[str]
    #: register-name prefixes read (``Snapshot`` families and reads
    #: whose operand resolved only to a leading prefix)
    read_prefixes: frozenset[str]
    #: exact register names written (``Write``/``CompareAndSwap``)
    writes: frozenset[str]
    #: prefixes written (operand resolved only to a leading prefix)
    write_prefixes: frozenset[str]
    #: yields ``QueryFD`` somewhere
    queries: bool
    #: yields ``Decide`` somewhere
    decides: bool
    #: plain yields whose op or register could not be resolved
    unresolved: int
    #: ``yield from`` delegations (footprint hidden in the subroutine)
    delegated: int

    @property
    def closed(self) -> bool:
        """Every step's registers are statically accounted for."""
        return self.unresolved == 0 and self.delegated == 0

    # -- coverage queries (dynamic op vs static sets) ------------------

    def covers_read(self, register: str) -> bool:
        return register in self.reads or any(
            register.startswith(prefix) for prefix in self.read_prefixes
        )

    def covers_snapshot(self, prefix: str) -> bool:
        return any(
            prefix.startswith(declared)
            for declared in self.read_prefixes
        )

    def covers_write(self, register: str) -> bool:
        return register in self.writes or any(
            register.startswith(prefix)
            for prefix in self.write_prefixes
        )

    def as_fact(self) -> dict[str, object]:
        """JSON-ready summary for the ``StaticFootprints`` fact pass."""
        return {
            "reads": sorted(self.reads),
            "read_prefixes": sorted(self.read_prefixes),
            "writes": sorted(self.writes),
            "write_prefixes": sorted(self.write_prefixes),
            "queries": self.queries,
            "decides": self.decides,
            "closed": self.closed,
        }


def infer_footprint(view: AutomatonView) -> StaticFootprint:
    """Aggregate the static footprint of one extracted automaton."""
    reads: set[str] = set()
    read_prefixes: set[str] = set()
    writes: set[str] = set()
    write_prefixes: set[str] = set()
    queries = False
    decides = False
    unresolved = 0
    delegated = 0
    for y in view.yields:
        if y.is_from:
            delegated += 1
            continue
        if y.op is None:
            unresolved += 1
            continue
        if y.op is ops.QueryFD:
            queries = True
            continue
        if y.op is ops.Decide:
            decides = True
            continue
        if y.op is ops.Nop:
            continue
        register = y.register
        if y.op is ops.Snapshot:
            # A snapshot operand is a family prefix by definition, so
            # even an exactly-resolved operand lands in read_prefixes.
            if register is None:
                unresolved += 1
            else:
                read_prefixes.add(register.text)
            continue
        if register is None:
            unresolved += 1
            continue
        if y.op is ops.Read:
            (reads if register.exact else read_prefixes).add(
                register.text
            )
        elif y.op is ops.Write:
            (writes if register.exact else write_prefixes).add(
                register.text
            )
        elif y.op is ops.CompareAndSwap:
            (reads if register.exact else read_prefixes).add(
                register.text
            )
            (writes if register.exact else write_prefixes).add(
                register.text
            )
    return StaticFootprint(
        reads=frozenset(reads),
        read_prefixes=frozenset(read_prefixes),
        writes=frozenset(writes),
        write_prefixes=frozenset(write_prefixes),
        queries=queries,
        decides=decides,
        unresolved=unresolved,
        delegated=delegated,
    )
